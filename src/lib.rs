//! # diknn-repro
//!
//! A from-scratch Rust reproduction of **"DIKNN: An Itinerary-based KNN
//! Query Processing Algorithm for Mobile Sensor Networks"** (Wu, Chuang,
//! Chen & Chen, ICDE 2007).
//!
//! This facade crate re-exports the workspace so applications can depend on
//! one crate:
//!
//! * [`geom`] — 2D geometry (points, sectors, polylines).
//! * [`sim`] — the deterministic discrete-event wireless network simulator
//!   (radio, CSMA-style MAC, energy meters, beacons/neighbour tables).
//! * [`mobility`] — analytic mobility models (random waypoint, traces) and
//!   placements (uniform, clustered).
//! * [`routing`] — GPSR geographic routing (greedy + perimeter mode).
//! * [`rtree`] — an R-tree spatial index.
//! * [`core`] — the DIKNN protocol itself: KNNB boundary estimation,
//!   concurrent itineraries, rendezvous adjustment, mobility assurance.
//! * [`baselines`] — the competitor protocols of the paper's evaluation:
//!   KPT (+KNNB), Peer-tree, naive flooding.
//! * [`workloads`] — scenarios, query workloads, ground-truth accuracy
//!   oracle, and the multi-run experiment driver.
//!
//! See `examples/quickstart.rs` for the 60-second tour and DESIGN.md /
//! EXPERIMENTS.md for the paper-reproduction map.
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub use diknn_baselines as baselines;
pub use diknn_core as core;
pub use diknn_geom as geom;
pub use diknn_mobility as mobility;
pub use diknn_routing as routing;
pub use diknn_rtree as rtree;
pub use diknn_sim as sim;
pub use diknn_workloads as workloads;

/// The most commonly used items, for `use diknn_repro::prelude::*`.
pub mod prelude {
    pub use diknn_baselines::{Flood, FloodConfig, Kpt, KptConfig, PeerTree, PeerTreeConfig};
    pub use diknn_core::{Diknn, DiknnConfig, KnnProtocol, QueryOutcome, QueryRequest};
    pub use diknn_geom::{Point, Rect};
    pub use diknn_sim::{NodeId, SharedMobility, SimConfig, Simulator};
    pub use diknn_workloads::{
        Experiment, GroundTruth, PlacementKind, ProtocolKind, ScenarioConfig, WorkloadConfig,
    };
}
