//! Head-to-head comparison of all four protocols on one scenario — a
//! miniature of the paper's evaluation (and of the `fig8`/`fig9` bench
//! binaries), runnable in a few seconds.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use diknn_repro::baselines::CentralizedConfig;
use diknn_repro::prelude::*;

fn main() {
    let scenario = ScenarioConfig {
        duration: 60.0,
        ..ScenarioConfig::default() // 200 nodes, 115×115 m², µmax = 10 m/s
    };
    let workload = WorkloadConfig {
        k: 40,
        last_at: 40.0,
        ..WorkloadConfig::default()
    };
    let runs = 2;

    println!(
        "protocol comparison: k = {}, {} nodes, µmax = {} m/s, {} runs\n",
        workload.k, scenario.nodes, scenario.max_speed, runs
    );
    println!(
        "{:<10} {:>9} {:>10} {:>9} {:>9} {:>11}",
        "protocol", "latency", "energy", "pre-acc", "post-acc", "completion"
    );
    for protocol in [
        ProtocolKind::Diknn(DiknnConfig::default()),
        ProtocolKind::Kpt(KptConfig::default()),
        ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ProtocolKind::Flood(FloodConfig::default()),
        ProtocolKind::Centralized(CentralizedConfig::default()),
    ] {
        let name = protocol.name();
        let agg = Experiment::new(protocol, scenario.clone(), workload).run(runs, 99);
        println!(
            "{name:<10} {:>8.2}s {:>9.2}J {:>8.0}% {:>8.0}% {:>10.0}%",
            agg.latency_s.mean,
            agg.energy_j.mean,
            agg.pre_accuracy.mean * 100.0,
            agg.post_accuracy.mean * 100.0,
            agg.completion_rate.mean * 100.0,
        );
    }
    println!(
        "\nExpected shape (paper §5 + Figure 1 taxonomy): DIKNN has the \
         lowest latency and the\nhighest accuracy; KPT pays tree-maintenance \
         latency; Peer-tree pays its clusterhead\nhierarchy; the naive flood \
         burns energy on independent per-node routes; the\ncentralized index \
         answers instantly but pays for every node's periodic report and\n\
         congests around the base station."
    );
}
