//! Fleet dispatch: the Intelligent-Transportation-Systems use case from the
//! paper's introduction.
//!
//! A dispatcher node asks "which k taxis are nearest to this pickup
//! point?" while the whole fleet drives at urban speeds. High mobility is
//! where infrastructure-based indexing breaks down and DIKNN's
//! infrastructure-free design pays off — this example runs the same
//! dispatch workload at increasing speeds and shows DIKNN's accuracy
//! staying flat while the Peer-tree index decays.
//!
//! ```sh
//! cargo run --release --example fleet_dispatch
//! ```

use diknn_repro::prelude::*;

fn main() {
    let workload = WorkloadConfig {
        k: 10,
        mean_interval: 5.0,
        last_at: 40.0,
        ..WorkloadConfig::default()
    };

    println!("fleet dispatch: 10 nearest taxis, city speeds 5 → 30 m/s\n");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "speed (m/s)", "DIKNN acc", "DIKNN lat", "PeerTree acc", "PeerTree lat"
    );
    for speed in [5.0, 15.0, 30.0] {
        let scenario = ScenarioConfig {
            max_speed: speed,
            duration: 60.0,
            ..ScenarioConfig::default()
        };
        let diknn = Experiment::new(
            ProtocolKind::Diknn(DiknnConfig::default()),
            scenario.clone(),
            workload,
        )
        .run(2, 7);
        let pt = Experiment::new(
            ProtocolKind::PeerTree(PeerTreeConfig::default()),
            scenario,
            workload,
        )
        .run(2, 7);
        println!(
            "{speed:<12} {:>11.0}% {:>11.2}s {:>13.0}% {:>13.2}s",
            diknn.post_accuracy.mean * 100.0,
            diknn.latency_s.mean,
            pt.post_accuracy.mean * 100.0,
            pt.latency_s.mean,
        );
    }
    println!(
        "\nThe centralized-index alternative pays for every taxi movement; \
         DIKNN only pays when a dispatch query actually runs."
    );
}
