//! Region census: itinerary-based *window* queries — the infrastructure-
//! free primitive ([31]) DIKNN generalises. "Which sensors are inside this
//! rectangle right now?"
//!
//! ```sh
//! cargo run --release --example region_census
//! ```

use diknn_repro::core::{WindowQuery, WindowRequest};
use diknn_repro::prelude::*;
use diknn_repro::workloads::GroundTruth;

fn main() {
    let scenario = ScenarioConfig {
        duration: 40.0,
        max_speed: 5.0,
        ..ScenarioConfig::default()
    };
    let seed = 7;
    let plans = scenario.build(seed);
    let oracle = GroundTruth::new(plans.clone(), scenario.nodes);

    let regions = [
        Rect::new(20.0, 20.0, 60.0, 55.0),
        Rect::new(65.0, 30.0, 105.0, 95.0),
        Rect::new(10.0, 70.0, 50.0, 105.0),
    ];
    let requests: Vec<WindowRequest> = regions
        .iter()
        .enumerate()
        .map(|(i, &window)| WindowRequest {
            at: 2.0 + 8.0 * i as f64,
            sink: NodeId(0),
            window,
        })
        .collect();

    let mut sim = Simulator::new(
        scenario.sim_config(),
        plans,
        WindowQuery::new(requests),
        seed,
    );
    sim.warm_neighbor_tables();
    sim.run();

    println!("region census over a 200-node network (µmax = 5 m/s)\n");
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>9}",
        "region", "truth", "found", "recall", "latency"
    );
    for o in sim.protocol().outcomes() {
        let t = o
            .completed_at
            .map(|t| t.as_secs_f64())
            .unwrap_or(scenario.duration);
        let truth: Vec<usize> = oracle
            .positions_at(t)
            .iter()
            .enumerate()
            .filter(|(_, p)| o.window.contains(**p))
            .map(|(i, _)| i)
            .collect();
        let hits = o
            .members
            .iter()
            .filter(|c| truth.contains(&c.id.index()))
            .count();
        let recall = if truth.is_empty() {
            1.0
        } else {
            hits as f64 / truth.len() as f64
        };
        println!(
            "{:<26} {:>8} {:>8} {:>7.0}% {:>8.2}s",
            format!(
                "({:.0},{:.0})-({:.0},{:.0})",
                o.window.min_x, o.window.min_y, o.window.max_x, o.window.max_y
            ),
            truth.len(),
            o.members.len(),
            recall * 100.0,
            o.completed_at
                .map(|t| (t - o.issued_at).as_secs_f64())
                .unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nenergy: {:.2} J total; the comb sweep costs area/width metres of \
         itinerary per query",
        sim.ctx().total_protocol_energy_j()
    );
}
