//! Wildlife tracking: the paper's Figure-7 motivating scenario.
//!
//! A ranger station (the sink) periodically asks "which k collared animals
//! are nearest to the watering hole right now?" over a herd-structured
//! (spatially irregular) population. This is the workload DIKNN's
//! rendezvous-based boundary adjustment was designed for: herd density
//! breaks KNNB's uniformity assumption, and gaps between herds create
//! itinerary voids the traversal must route around.
//!
//! ```sh
//! cargo run --release --example wildlife_tracking
//! ```

use diknn_repro::mobility::GroupConfig;
use diknn_repro::prelude::*;
use diknn_repro::workloads::{GroundTruth, HerdSetup};

fn main() {
    let field = Rect::new(0.0, 0.0, 200.0, 200.0);
    let scenario = ScenarioConfig {
        nodes: 400,
        field,
        max_speed: 0.0,
        placement: PlacementKind::Uniform, // overridden by the herd setup
        herds: Some(HerdSetup {
            herds: 5,
            group: GroupConfig {
                field,
                leader_speed: 2.0, // grazing speed
                spread: 16.0,
                ..GroupConfig::default()
            },
            background_fraction: 0.3,
        }),
        duration: 60.0,
        infrastructure: Vec::new(),
    };
    let seed = 2026;
    let plans = scenario.build(seed);
    let oracle = GroundTruth::new(plans.clone(), scenario.nodes);

    // The ranger station: the best-connected animal carries the uplink.
    let positions = oracle.positions_at(0.0);
    let sink = (0..positions.len())
        .max_by_key(|&i| {
            positions
                .iter()
                .filter(|p| p.dist(positions[i]) <= 20.0)
                .count()
        })
        .expect("non-empty herd");

    // The watering hole sits where the animals actually are: the centre of
    // the densest neighbourhood at mission start.
    let watering_hole = {
        let densest = (0..positions.len())
            .max_by_key(|&i| {
                positions
                    .iter()
                    .filter(|p| p.dist(positions[i]) <= 20.0)
                    .count()
            })
            .expect("non-empty population");
        positions[densest]
    };
    let requests: Vec<QueryRequest> = (0..5)
        .map(|i| QueryRequest {
            at: 3.0 + 10.0 * i as f64,
            sink: NodeId(sink as u32),
            q: watering_hole,
            k: 40,
        })
        .collect();

    let protocol = Diknn::new(DiknnConfig::default(), requests);
    let mut sim = Simulator::new(scenario.sim_config(), plans, protocol, seed);
    sim.warm_neighbor_tables();
    sim.run();

    println!("wildlife tracking: 5 queries for the 40 animals nearest the watering hole\n");
    println!(
        "{:>5} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "query", "R_knnb(m)", "R_final(m)", "latency", "pre-acc", "post-acc"
    );
    let mut voids = 0usize;
    for o in sim.protocol().outcomes() {
        let (lat, pre, post) = match o.completed_at {
            Some(done) => (
                format!("{:.2}s", o.latency().unwrap()),
                oracle.accuracy(&o.answer, o.q, o.k, o.issued_at.as_secs_f64()),
                oracle.accuracy(&o.answer, o.q, o.k, done.as_secs_f64()),
            ),
            None => ("-".into(), 0.0, 0.0),
        };
        println!(
            "{:>5} {:>10.1} {:>10.1} {:>9} {:>8.0}% {:>8.0}%",
            o.qid,
            o.boundary_radius,
            o.final_radius,
            lat,
            pre * 100.0,
            post * 100.0
        );
    }
    // Count void detours observed in the traversal trace.
    let mut last = std::collections::BTreeMap::new();
    for hop in &sim.protocol().token_trace {
        let prev = last
            .insert((hop.qid, hop.sector), hop.frontier)
            .unwrap_or(0.0);
        if hop.frontier - prev > 24.0 {
            voids += 1;
        }
    }
    println!("\nitinerary void bypasses across all queries: {voids}");
    println!(
        "energy over the whole mission: {:.2} J across {} animals",
        sim.ctx().total_protocol_energy_j(),
        scenario.nodes
    );
}
