//! Quickstart: issue one KNN query over a 200-node mobile sensor network
//! and check the answer against exact ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use diknn_repro::prelude::*;
use diknn_repro::workloads;

fn main() {
    // 1. A network scenario: the paper's defaults — 200 nodes in a
    //    115×115 m² field, random-waypoint mobility at up to 10 m/s.
    let scenario = ScenarioConfig {
        duration: 30.0,
        ..ScenarioConfig::default()
    };
    let seed = 42;
    let plans = scenario.build(seed);

    // Keep a handle on the same mobility plans for ground truth.
    let oracle = workloads::GroundTruth::new(plans.clone(), scenario.nodes);

    // 2. One query: node 0 asks for the 10 sensors nearest to the field
    //    centre, 2 simulated seconds into the run.
    let q = Point::new(57.0, 57.0);
    let request = QueryRequest {
        at: 2.0,
        sink: NodeId(0),
        q,
        k: 10,
    };

    // 3. Run DIKNN over the event-driven simulator.
    let protocol = Diknn::new(DiknnConfig::default(), vec![request]);
    let mut sim = Simulator::new(scenario.sim_config(), plans, protocol, seed);
    sim.warm_neighbor_tables();
    sim.run();

    // 4. Inspect the outcome.
    let outcome = &sim.protocol().outcomes()[0];
    let latency = outcome.latency().expect("query should complete");
    println!("query: 10 nearest neighbours of ({:.0}, {:.0})", q.x, q.y);
    println!("  KNNB boundary radius : {:.1} m", outcome.boundary_radius);
    println!("  final boundary radius: {:.1} m", outcome.final_radius);
    println!("  routing hops to home : {}", outcome.routing_hops);
    println!(
        "  sectors returned     : {}/{}",
        outcome.parts_returned, outcome.parts_expected
    );
    println!("  nodes explored       : {}", outcome.explored_nodes);
    println!("  latency              : {latency:.3} s");
    println!(
        "  energy (all nodes)   : {:.3} J",
        sim.ctx().total_protocol_energy_j()
    );
    println!("  answer               : {:?}", outcome.answer);

    // 5. Score against exact ground truth at both valid times (§3.1).
    let t_issue = outcome.issued_at.as_secs_f64();
    let t_done = outcome.completed_at.unwrap().as_secs_f64();
    println!(
        "  pre-accuracy  (T = issue time) : {:.0}%",
        100.0 * oracle.accuracy(&outcome.answer, q, outcome.k, t_issue)
    );
    println!(
        "  post-accuracy (T = result time): {:.0}%",
        100.0 * oracle.accuracy(&outcome.answer, q, outcome.k, t_done)
    );
}
