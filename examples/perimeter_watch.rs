//! Perimeter watch: continuous KNN monitoring (the standing-interest
//! counterpart to the paper's snapshot queries).
//!
//! A command post keeps a standing interest in the 12 sensors nearest to a
//! protected asset, re-evaluated every 6 seconds with the infrastructure-
//! free DIKNN rounds of [`ContinuousKnn`]. The per-round deltas show how
//! fast the guard set rotates under mobility.
//!
//! ```sh
//! cargo run --release --example perimeter_watch
//! ```

use diknn_repro::core::{ContinuousKnn, MonitorRequest};
use diknn_repro::prelude::*;

fn main() {
    let scenario = ScenarioConfig {
        max_speed: 8.0,
        duration: 60.0,
        ..ScenarioConfig::default()
    };
    let seed = 31;
    let plans = scenario.build(seed);

    let asset = Point::new(70.0, 45.0);
    let monitor = MonitorRequest {
        start_at: 2.0,
        period: 6.0,
        rounds: 8,
        sink: NodeId(0),
        q: asset,
        k: 12,
    };
    let mut sim = Simulator::new(
        scenario.sim_config(),
        plans,
        ContinuousKnn::new(DiknnConfig::default(), vec![monitor]),
        seed,
    );
    sim.warm_neighbor_tables();
    sim.run();

    println!(
        "perimeter watch: 12 nearest sensors to ({:.0},{:.0}), re-evaluated every 6 s\n",
        asset.x, asset.y
    );
    println!(
        "{:>5} {:>10} {:>8} {:>8}",
        "round", "completed", "joined", "left"
    );
    let energy = sim.ctx().total_protocol_energy_j();
    let proto = sim.protocol_mut();
    for d in proto.deltas().to_vec() {
        println!(
            "{:>5} {:>10} {:>8} {:>8}",
            d.round,
            d.completed_at
                .map(|t| format!("{:.1}s", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            d.joined.len(),
            d.left.len()
        );
    }
    println!(
        "\nmean churn per round: {:.0}% of the guard set",
        proto.mean_churn() * 100.0
    );
    println!("energy for the whole watch: {energy:.2} J");
}
