//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) API subset the workspace uses: a seedable
//! deterministic generator ([`rngs::SmallRng`], xoshiro256++ seeded through
//! SplitMix64) plus the [`Rng`] extension methods `gen_range` and `gen`.
//!
//! It is **not** bit-compatible with upstream `rand 0.8`: same-seed runs of
//! this workspace are reproducible against *this* implementation, which is
//! the property the simulator actually needs. There is deliberately no
//! `thread_rng`/`from_entropy`: every generator must be explicitly seeded,
//! which is also enforced by `cargo xtask lint`.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (explicit-seed subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for snapshot/restore of a
        /// mid-stream generator.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a captured [`SmallRng::state`]. The
        /// all-zero state is a fixed point of xoshiro256++ and is mapped to
        /// the same non-degenerate state `seed_from_u64` would use.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types [`Rng::gen`] can produce (stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's method: unbiased and branch-light.
    let mut x = rng.next_u64();
    let mut m = (x as u128).wrapping_mul(bound as u128);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128).wrapping_mul(bound as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // Floating rounding can land exactly on `end`; fall back to
                // `start`, which is always inside a non-empty half-open range.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing generator extension methods (the `rand::Rng` subset in use).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let s = rng.gen_range(-4i32..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let w: f64 = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn int_range_not_obviously_biased() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero fixed point is rejected.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>(), 0);
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = SmallRng::seed_from_u64(10);
        assert_eq!(rng.gen_range(5u32..=5), 5);
    }
}
