//! Offline stand-in for the `criterion` crate.
//!
//! Provides enough of the Criterion API for this workspace's benches to
//! compile and run without crates.io access: benchmark groups, `Bencher`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros. It
//! performs a simple calibrated timing loop and prints median per-iteration
//! time — adequate for relative comparisons, with none of upstream's
//! statistical analysis, plots, or saved baselines.
//!
//! This is intentionally the only place in the workspace allowed to read
//! the wall clock (benchmarks measure real time); library crates are barred
//! from `Instant::now` by `cargo xtask lint` and clippy `disallowed-methods`.

#![forbid(unsafe_code)]
// The one sanctioned wall-clock user (see module docs): benchmarks measure
// real time by definition. lint: wall-clock-ok
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Measures one benchmark target by running its closure repeatedly.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call, in ns.
    result_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one sample takes ≥ ~200 µs.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        self.result_ns = samples[samples.len() / 2];
    }
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = function_name.into();
        let _ = write!(label, "/{parameter}");
        BenchmarkId { label }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchId>,
        mut f: R,
    ) -> &mut Self {
        let label = id.into().0;
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &label, b.result_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        let label = id.into().0;
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            result_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &label, b.result_ns);
        self
    }

    pub fn finish(&mut self) {}
}

/// Either a string or a [`BenchmarkId`] names a benchmark.
#[derive(Debug)]
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.label)
    }
}

fn report(group: &str, label: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{group}/{label:<40} median {value:>10.3} {unit}/iter");
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: R) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report("bench", name, b.result_ns);
        self
    }

    /// Upstream parses CLI args (filters, `--bench`); this stand-in ignores
    /// them and runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a benchmark group function (both upstream syntaxes).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
