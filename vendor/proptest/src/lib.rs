//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range/tuple/`prop_map`/`vec`/`any` strategies, and the
//! `prop_assert!` family. Differences from upstream, by design:
//!
//! * **Deterministic**: case generation is seeded from the test's name, so
//!   every run explores the same cases. There is no failure persistence
//!   file because there is no run-to-run randomness to persist.
//! * **No shrinking**: a failing case reports its inputs via the panic
//!   message of the assertion that fired (all call sites here use messages
//!   or rely on the case's seed being reproducible).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (`ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case (carried by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Drives one `proptest!`-generated test: owns the RNG and the case count.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    rng: SmallRng,
}

impl TestRunner {
    /// Seed from the test name so each property explores a fixed, distinct
    /// case sequence on every run.
    pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            cases: config.cases,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn cases(&self) -> u32 {
        self.cases
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A value generator (`proptest::strategy::Strategy` subset).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// `any::<T>()` support (`Arbitrary` subset).
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut SmallRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut SmallRng) -> u32 {
        rng.next_u32()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy returned by [`prelude::any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// `prop::collection::vec(element, size)`: a vector whose length is
        /// drawn from `size` (a range or an exact count).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Vector length specification: `0..20`, `2..=8`, or an exact `15`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Output of [`prop::collection::vec`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut rand::rngs::SmallRng) -> Vec<S::Value> {
        let len = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub mod prelude {
    pub use super::prop;
    pub use super::{AnyStrategy, ProptestConfig, Strategy, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `any::<T>()`: uniform values of `T`.
    pub fn any<T: super::ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {} at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed at {}:{}: {:?} != {:?}: {}",
                file!(),
                line!(),
                a,
                b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed at {}:{}: both {:?}",
                file!(),
                line!(),
                a
            )));
        }
    }};
}

/// Generate `#[test]` functions that run a property over many seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}
