//! Self-test of the determinism lint: seeded-violation fixtures must be
//! caught, and the real workspace must pass clean.
//!
//! This is the guarantee behind trusting a green `cargo xtask lint`: the
//! fixtures prove the pass actually fires on each rule, so silence on the
//! real tree means absence of violations, not absence of checking.

use std::collections::BTreeMap;
use std::path::Path;

use xtask::lint::{check_budgets, lint_workspace, scan_source};

const BAD_SIM_STATE: &str = include_str!("fixtures/bad_sim_state.rs");
const BAD_ENTROPY: &str = include_str!("fixtures/bad_entropy.rs");
const BAD_UNWRAP: &str = include_str!("fixtures/bad_unwrap_budget.rs");
const BAD_THREAD: &str = include_str!("fixtures/bad_thread.rs");

fn rule_counts(path: &str, crate_name: &str, src: &str) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for v in scan_source(path, crate_name, src).violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

#[test]
fn fixture_hash_container_in_sim_code_is_caught() {
    let counts = rule_counts(
        "crates/diknn-sim/src/bad_sim_state.rs",
        "diknn-sim",
        BAD_SIM_STATE,
    );
    // One `use` line naming both containers, two struct fields.
    assert_eq!(counts.get("hash-container"), Some(&3), "{counts:?}");
    assert_eq!(counts.get("wall-clock"), Some(&1), "{counts:?}");
}

#[test]
fn fixture_thread_rng_and_float_eq_are_caught() {
    let counts = rule_counts(
        "crates/diknn-core/src/bad_entropy.rs",
        "diknn-core",
        BAD_ENTROPY,
    );
    assert_eq!(counts.get("ambient-randomness"), Some(&1), "{counts:?}");
    assert_eq!(counts.get("float-eq"), Some(&1), "{counts:?}");
}

#[test]
fn fixture_over_budget_unwraps_are_caught() {
    let report = scan_source(
        "crates/diknn-mobility/src/bad_unwrap_budget.rs",
        "diknn-mobility",
        BAD_UNWRAP,
    );
    assert_eq!(report.unwrap_count, 5);
    let counts = BTreeMap::from([("diknn-mobility".to_string(), report.unwrap_count)]);
    // Against its real budget the fixture must overrun.
    let budgets = BTreeMap::from([("diknn-mobility".to_string(), 0u32)]);
    let violations = check_budgets(&counts, &budgets);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, "unwrap-budget");
}

#[test]
fn fixture_raw_threads_are_caught_outside_the_executor() {
    let counts = rule_counts(
        "crates/diknn-bench/src/bad_thread.rs",
        "diknn-bench",
        BAD_THREAD,
    );
    // spawn + scope + Builder.
    assert_eq!(counts.get("raw-thread"), Some(&3), "{counts:?}");
    // The identical source inside the sanctioned executor module is clean.
    let counts = rule_counts(
        "crates/diknn-workloads/src/parallel.rs",
        "diknn-workloads",
        BAD_THREAD,
    );
    assert_eq!(counts.get("raw-thread"), None, "{counts:?}");
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("lint pass runs");
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
