//! Self-test of the static-analysis pass: every rule family must fire on
//! its seeded-violation fixture, stay silent on the fixture's clean twin,
//! and the real workspace must pass at zero violations.
//!
//! This is the guarantee behind trusting a green `cargo xtask lint`: the
//! fixtures prove each family actually detects its bug class (including
//! the non-vacuity check that deletes a real replayer match arm), so
//! silence on the real tree means absence of violations, not absence of
//! checking.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use xtask::index::{FileKind, SourceFile, WorkspaceIndex};
use xtask::lint::{lint_workspace, TRACE_CONFORMANCE};
use xtask::report::{violations_from_json, LintReport, Violation};
use xtask::rules::{conformance, determinism, float_order, hot_path, panic_budget, rng_custody};

const BAD_SIM_STATE: &str = include_str!("../fixtures/determinism/bad_sim_state.rs");
const BAD_ENTROPY: &str = include_str!("../fixtures/determinism/bad_entropy.rs");
const BAD_THREAD: &str = include_str!("../fixtures/determinism/bad_thread.rs");
const BAD_SHARD_WORKER: &str = include_str!("../fixtures/determinism/bad_shard_worker.rs");
const GOOD_CLEAN: &str = include_str!("../fixtures/determinism/good_clean.rs");
const BAD_FLOAT_ORDER: &str = include_str!("../fixtures/float_order/bad_partial_cmp.rs");
const GOOD_FLOAT_ORDER: &str = include_str!("../fixtures/float_order/good_total_cmp.rs");
const BAD_RNG: &str = include_str!("../fixtures/rng_custody/bad_ambient_stream.rs");
const GOOD_RNG: &str = include_str!("../fixtures/rng_custody/good_borrowed_stream.rs");
const BAD_HOT: &str = include_str!("../fixtures/hot_path/bad_alloc_in_region.rs");
const GOOD_HOT: &str = include_str!("../fixtures/hot_path/good_scratch_buffers.rs");
const BAD_PANIC: &str = include_str!("../fixtures/panic_budget/bad_panic_sites.rs");
const CONF_DEF: &str = include_str!("../fixtures/conformance/trace_def.rs");
const CONF_EMIT_ALL: &str = include_str!("../fixtures/conformance/emit_all.rs");
const CONF_EMIT_PARTIAL: &str = include_str!("../fixtures/conformance/emit_partial.rs");
const CONF_REPLAY_ALL: &str = include_str!("../fixtures/conformance/replay_all.rs");
const CONF_REPLAY_WILDCARD: &str = include_str!("../fixtures/conformance/replay_wildcard.rs");

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives under the workspace root")
        .to_path_buf()
}

fn parse(rel: &str, crate_name: &str, src: &str) -> SourceFile {
    SourceFile::parse(rel, crate_name, FileKind::Lib, src)
}

fn rule_counts(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts.entry(v.rule).or_insert(0) += 1;
    }
    counts
}

// ---- determinism family (ported rules) ---------------------------------

#[test]
fn fixture_hash_container_and_wall_clock_are_caught() {
    let f = parse(
        "crates/diknn-sim/src/bad_sim_state.rs",
        "diknn-sim",
        BAD_SIM_STATE,
    );
    let counts = rule_counts(&determinism::scan(&f));
    // Two idents on the `use` line plus two struct fields.
    assert_eq!(counts.get("hash-container"), Some(&4), "{counts:?}");
    assert_eq!(counts.get("wall-clock"), Some(&1), "{counts:?}");
}

#[test]
fn fixture_thread_rng_and_float_eq_are_caught() {
    let f = parse(
        "crates/diknn-core/src/bad_entropy.rs",
        "diknn-core",
        BAD_ENTROPY,
    );
    let counts = rule_counts(&determinism::scan(&f));
    assert_eq!(counts.get("ambient-randomness"), Some(&1), "{counts:?}");
    // `radius != 0.0` — a float literal next to the operator. (The rule is
    // token-local, so ident-vs-ident `dist == radius` is left to review.)
    assert_eq!(counts.get("float-eq"), Some(&1), "{counts:?}");
}

#[test]
fn fixture_raw_threads_are_caught() {
    let f = parse(
        "crates/diknn-bench/src/bad_thread.rs",
        "diknn-bench",
        BAD_THREAD,
    );
    let counts = rule_counts(&determinism::scan(&f));
    // spawn, scope, and Builder.
    assert_eq!(counts.get("raw-thread"), Some(&3), "{counts:?}");
}

#[test]
fn fixture_shard_worker_outside_sanctioned_module_is_caught() {
    // A shard-worker pool (the sharded engine's threaded executor shape)
    // planted outside `crates/diknn-workloads/src/parallel.rs` must fail
    // the raw-thread rule — in the engine crate and in any other crate.
    for (rel, krate) in [
        ("crates/diknn-sim/src/shard_pool.rs", "diknn-sim"),
        ("crates/diknn-bench/src/shard_pool.rs", "diknn-bench"),
    ] {
        let f = parse(rel, krate, BAD_SHARD_WORKER);
        let counts = rule_counts(&determinism::scan(&f));
        // `thread::Builder` in `new` and `thread::scope` in
        // `compute_batch`; the `.spawn(...)` calls are method calls on the
        // builder/scope and are reached only through those two roots.
        assert_eq!(counts.get("raw-thread"), Some(&2), "{rel}: {counts:?}");
    }
}

#[test]
fn fixture_shard_worker_in_sanctioned_module_is_allowed() {
    // The identical pool at the sanctioned path is the one legal home for
    // shard workers; the rule must stay silent there.
    let f = parse(
        determinism::SANCTIONED_THREAD_MODULE,
        "diknn-workloads",
        BAD_SHARD_WORKER,
    );
    let v: Vec<_> = determinism::scan(&f)
        .into_iter()
        .filter(|v| v.rule == "raw-thread")
        .collect();
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn fixture_clean_determinism_twin_is_silent() {
    let f = parse(
        "crates/diknn-sim/src/good_clean.rs",
        "diknn-sim",
        GOOD_CLEAN,
    );
    let v = determinism::scan(&f);
    assert!(v.is_empty(), "{v:?}");
}

// ---- float-order family ------------------------------------------------

#[test]
fn fixture_partial_cmp_comparators_are_caught() {
    let f = parse(
        "crates/diknn-core/src/bad.rs",
        "diknn-core",
        BAD_FLOAT_ORDER,
    );
    let v = float_order::scan(&f);
    // sort_by, min_by, binary_search_by, and the float-keyed sort_by_key.
    assert_eq!(v.len(), 4, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "float-order"));
}

#[test]
fn fixture_total_cmp_twin_is_silent() {
    let f = parse(
        "crates/diknn-core/src/good.rs",
        "diknn-core",
        GOOD_FLOAT_ORDER,
    );
    let v = float_order::scan(&f);
    assert!(v.is_empty(), "{v:?}");
}

// ---- rng-custody family ------------------------------------------------

#[test]
fn fixture_ambient_rng_stream_is_caught() {
    let f = parse("crates/diknn-routing/src/bad.rs", "diknn-routing", BAD_RNG);
    let v = rng_custody::scan(&f);
    // seed_from_u64, the `fn rng` accessor, and from_seed.
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "rng-custody"));
}

#[test]
fn fixture_borrowed_stream_twin_is_silent() {
    let f = parse(
        "crates/diknn-routing/src/good.rs",
        "diknn-routing",
        GOOD_RNG,
    );
    let v = rng_custody::scan(&f);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn sanctioned_files_may_seed() {
    let seeding = "pub fn mk(seed: u64) -> SmallRng { SmallRng::seed_from_u64(seed) }\n";
    for rel in rng_custody::SANCTIONED_RNG_FILES {
        let f = parse(rel, "diknn-sim", seeding);
        assert!(rng_custody::scan(&f).is_empty(), "{rel} is sanctioned");
    }
}

// ---- hot-path family ---------------------------------------------------

#[test]
fn fixture_hot_region_allocations_are_caught() {
    let f = parse("crates/diknn-sim/src/bad.rs", "diknn-sim", BAD_HOT);
    let v = hot_path::scan(&f);
    // Box::new, .clone(), vec!, .collect(), format!.
    assert_eq!(v.len(), 5, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "hot-path"));
}

#[test]
fn fixture_scratch_buffer_twin_is_silent() {
    let f = parse("crates/diknn-sim/src/good.rs", "diknn-sim", GOOD_HOT);
    let v = hot_path::scan(&f);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn engine_and_grid_actually_carry_hot_fences() {
    // The family is vacuous on a file with no fences; the real hot paths
    // must stay annotated or the rule silently stops guarding them.
    let root = workspace_root();
    for rel in [
        "crates/diknn-sim/src/engine.rs",
        "crates/diknn-sim/src/grid.rs",
        "crates/diknn-sim/src/queue.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let f = parse(rel, "diknn-sim", &src);
        let (regions, errors) = f.hot_regions();
        assert!(errors.is_empty(), "{rel}: {errors:?}");
        assert!(
            !regions.is_empty(),
            "{rel} lost its `// lint: hot-path` fences"
        );
    }
}

// ---- panic-budget family -----------------------------------------------

#[test]
fn fixture_panic_sites_are_counted_and_ratcheted() {
    let idx = WorkspaceIndex::from_files(vec![parse(
        "crates/diknn-mobility/src/bad.rs",
        "diknn-mobility",
        BAD_PANIC,
    )]);
    let counts = panic_budget::count(&idx);
    // Two unwraps + two expects in parse_all, one unwrap in first.
    assert_eq!(counts.get("diknn-mobility"), Some(&5), "{counts:?}");

    let exact = BTreeMap::from([("diknn-mobility".to_string(), 5u32)]);
    assert!(panic_budget::check(&counts, &exact).is_empty());
    let lower = BTreeMap::from([("diknn-mobility".to_string(), 4u32)]);
    assert_eq!(panic_budget::check(&counts, &lower).len(), 1, "regression");
    let higher = BTreeMap::from([("diknn-mobility".to_string(), 6u32)]);
    assert_eq!(
        panic_budget::check(&counts, &higher).len(),
        1,
        "stale baseline"
    );
}

// ---- trace-conformance family ------------------------------------------

fn conf_cfg() -> conformance::ConformanceConfig<'static> {
    conformance::ConformanceConfig {
        enums: &["ProbeEvent"],
        def_file: "crates/diknn-sim/src/trace.rs",
        emit_crates: &["diknn-sim"],
        replayer: "crates/diknn-workloads/src/invariants.rs",
    }
}

fn conf_idx(emit: &str, replay: &str) -> WorkspaceIndex {
    WorkspaceIndex::from_sources(&[
        (
            "crates/diknn-sim/src/trace.rs",
            "diknn-sim",
            FileKind::Lib,
            CONF_DEF,
        ),
        (
            "crates/diknn-sim/src/engine.rs",
            "diknn-sim",
            FileKind::Lib,
            emit,
        ),
        (
            "crates/diknn-workloads/src/invariants.rs",
            "diknn-workloads",
            FileKind::Lib,
            replay,
        ),
    ])
}

#[test]
fn fixture_coupled_trace_schema_is_clean() {
    let v = conformance::check(&conf_idx(CONF_EMIT_ALL, CONF_REPLAY_ALL), &conf_cfg());
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn fixture_unemitted_variant_is_caught() {
    let v = conformance::check(&conf_idx(CONF_EMIT_PARTIAL, CONF_REPLAY_ALL), &conf_cfg());
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].message.contains("ProbeEvent::Lost"),
        "{}",
        v[0].message
    );
    assert!(v[0].message.contains("no emit site"));
}

#[test]
fn fixture_catch_all_replayer_is_caught() {
    let v = conformance::check(&conf_idx(CONF_EMIT_ALL, CONF_REPLAY_WILDCARD), &conf_cfg());
    assert!(
        v.iter().any(|v| v.message.contains("catch-all")),
        "the `_` arm itself must be flagged: {v:?}"
    );
    for variant in ["Pong", "Lost"] {
        assert!(
            v.iter()
                .any(|v| v.message.contains(variant) && v.message.contains("no explicit match arm")),
            "{variant} hides behind the wildcard: {v:?}"
        );
    }
}

/// Non-vacuity against the *real* tree: delete one `ProtoEvent` arm from
/// the real replayer and the conformance family must fail loudly. Emit
/// evidence is synthesized from the real enum definition so the test
/// isolates replay coverage.
#[test]
fn deleting_a_real_replayer_arm_fails_loudly() {
    let root = workspace_root();
    let def_src = std::fs::read_to_string(root.join(TRACE_CONFORMANCE.def_file)).unwrap();
    let replay_src = std::fs::read_to_string(root.join(TRACE_CONFORMANCE.replayer)).unwrap();
    assert!(
        replay_src.contains("ProtoEvent::SinkMerge"),
        "the replayer no longer names SinkMerge; update this test's target arm"
    );

    // One synthetic emitter naming every variant keeps emit-site checks out
    // of the way (`has_path` only needs the `Enum::Variant` token pair).
    let def = parse(TRACE_CONFORMANCE.def_file, "diknn-sim", &def_src);
    let idx_for_variants = WorkspaceIndex::from_files(vec![def]);
    let mut emit = String::from("fn emit_evidence() {\n");
    for &enum_name in TRACE_CONFORMANCE.enums {
        for d in &idx_for_variants.enums[enum_name] {
            for (variant, _) in &d.variants {
                emit.push_str(&format!("    let _ = {enum_name}::{variant};\n"));
            }
        }
    }
    emit.push_str("}\n");

    let build = |replay: &str| {
        WorkspaceIndex::from_sources(&[
            (
                TRACE_CONFORMANCE.def_file,
                "diknn-sim",
                FileKind::Lib,
                &def_src,
            ),
            (
                "crates/diknn-sim/src/engine.rs",
                "diknn-sim",
                FileKind::Lib,
                &emit,
            ),
            (
                TRACE_CONFORMANCE.replayer,
                "diknn-workloads",
                FileKind::Lib,
                replay,
            ),
        ])
    };

    let intact = conformance::check(&build(&replay_src), &TRACE_CONFORMANCE);
    assert!(
        intact.is_empty(),
        "real replayer should be fully covered: {intact:?}"
    );

    let mutated = replay_src.replace("ProtoEvent::SinkMerge", "ProtoEvent::SinkMergeGone");
    let broken = conformance::check(&build(&mutated), &TRACE_CONFORMANCE);
    assert!(
        broken
            .iter()
            .any(|v| v.message.contains("ProtoEvent::SinkMerge")
                && v.message.contains("no explicit match arm")),
        "deleting the SinkMerge arm must be caught: {broken:?}"
    );
}

// ---- report round-trip and whole-workspace pass ------------------------

#[test]
fn report_survives_a_json_round_trip() {
    let f = parse(
        "crates/diknn-core/src/bad.rs",
        "diknn-core",
        BAD_FLOAT_ORDER,
    );
    let report = LintReport {
        violations: float_order::scan(&f),
        panic_counts: BTreeMap::from([("diknn-core".to_string(), 2u32)]),
        baseline: BTreeMap::from([("diknn-core".to_string(), 2u32)]),
        files_scanned: 1,
        dead_exports: Vec::new(),
    };
    let parsed = violations_from_json(&report.to_json()).unwrap();
    assert_eq!(parsed.len(), report.violations.len());
    for (got, want) in parsed.iter().zip(&report.violations) {
        assert_eq!(got.0, want.rule);
        assert_eq!(got.1, want.file);
        assert_eq!(got.2, want.line);
        assert_eq!(got.3, want.message);
    }
}

#[test]
fn real_workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("lint pass runs");
    assert!(
        report.violations.is_empty(),
        "the committed tree must lint clean:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 100, "index lost most of the tree?");
}
