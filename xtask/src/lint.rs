//! The lint orchestrator: builds the workspace index once, runs every rule
//! family over it, and aggregates a [`LintReport`].
//!
//! Per-file families (ported determinism rules, `float-order`,
//! `rng-custody`, `hot-path`) scan each library file's token stream;
//! workspace families (`trace-conformance`, `panic-budget`) consume the
//! symbol tables. `strict-header` stays a raw-text check because it also
//! covers the vendored stand-ins and xtask itself, which are deliberately
//! outside the index.
//!
//! Rule catalogue and policy live in DESIGN.md §11 "Static analysis
//! architecture".

use std::fs;
use std::path::Path;

use crate::index::WorkspaceIndex;
use crate::report::{LintReport, Violation};
use crate::rules::{conformance, determinism, float_order, hot_path, panic_budget, rng_custody};

pub use crate::report::{DeadExport, LintReport as Report};
pub use crate::rules::panic_budget::parse_baseline;

/// The trace-conformance wiring for this workspace: both flight-recorder
/// enums, emitted by the simulator/protocol crates, replayed by the
/// invariant checker. (`EventKind` in the engine is the *queue* enum — it
/// never reaches a trace, so it is not conformance-checked.)
pub const TRACE_CONFORMANCE: conformance::ConformanceConfig<'static> =
    conformance::ConformanceConfig {
        enums: &["ProtoEvent", "TraceKind"],
        def_file: "crates/diknn-sim/src/trace.rs",
        emit_crates: &["diknn-sim", "diknn-core"],
        replayer: "crates/diknn-workloads/src/invariants.rs",
    };

/// Run every rule family over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let baseline_text = fs::read_to_string(root.join("xtask/lint_baseline.toml"))
        .map_err(|e| format!("reading xtask/lint_baseline.toml: {e}"))?;
    let baseline = parse_baseline(&baseline_text)?;
    let idx = WorkspaceIndex::build(root)?;
    lint_index(&idx, baseline, root)
}

/// Rule aggregation over a prebuilt index (fixture tests inject synthetic
/// workspaces here).
pub fn lint_index(
    idx: &WorkspaceIndex,
    baseline: std::collections::BTreeMap<String, u32>,
    root: &Path,
) -> Result<LintReport, String> {
    let mut violations = Vec::new();
    for f in idx.lib_files() {
        violations.extend(determinism::scan(f));
        violations.extend(float_order::scan(f));
        violations.extend(rng_custody::scan(f));
        violations.extend(hot_path::scan(f));
    }
    violations.extend(conformance::check(idx, &TRACE_CONFORMANCE));
    let panic_counts = panic_budget::count(idx);
    violations.extend(panic_budget::check(&panic_counts, &baseline));

    let mut files_scanned = idx.files.len();
    for rel in strict_header_roots(root)? {
        let content =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        violations.extend(check_strict_header(&rel, &content));
        files_scanned += 1;
    }

    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(LintReport {
        violations,
        panic_counts,
        baseline,
        files_scanned,
        dead_exports: idx.dead_exports(),
    })
}

/// Crate roots that must carry the strict header: every workspace crate,
/// the vendored stand-ins, and xtask itself.
fn strict_header_roots(root: &Path) -> Result<Vec<String>, String> {
    let mut roots: Vec<String> = vec![
        "src/lib.rs".into(),
        "xtask/src/lib.rs".into(),
        "xtask/src/main.rs".into(),
    ];
    for dir in ["crates", "vendor"] {
        let dir_path = root.join(dir);
        if !dir_path.is_dir() {
            continue;
        }
        let mut entries: Vec<_> = fs::read_dir(&dir_path)
            .map_err(|e| format!("reading {dir}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let name = entry
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            let lib = format!("{dir}/{name}/src/lib.rs");
            if root.join(&lib).is_file() {
                roots.push(lib);
            }
        }
    }
    Ok(roots)
}

/// The crate root must forbid unsafe code.
pub fn check_strict_header(rel_path: &str, content: &str) -> Option<Violation> {
    if content.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Violation {
            file: rel_path.to_string(),
            line: 0,
            rule: "strict-header",
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        })
    }
}

/// Write `results/LINT_REPORT.json`; returns the path written.
pub fn write_report(root: &Path, report: &LintReport) -> Result<String, String> {
    let dir = root.join("results");
    fs::create_dir_all(&dir).map_err(|e| format!("creating results/: {e}"))?;
    let path = dir.join("LINT_REPORT.json");
    fs::write(&path, report.to_json()).map_err(|e| format!("writing LINT_REPORT.json: {e}"))?;
    Ok("results/LINT_REPORT.json".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_header_check() {
        assert!(check_strict_header("src/lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        assert!(check_strict_header("src/lib.rs", "// nothing\n").is_some());
    }
}
