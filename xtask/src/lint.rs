//! The determinism lint: a line-level scanner over workspace sources.
//!
//! `syn` cannot be vendored in this offline environment, so the pass works
//! on lines with a small amount of state (comment stripping, `#[cfg(test)]`
//! region tracking). That is enough for the token-shaped invariants it
//! enforces; the scanner errs on the side of flagging, and every rule that
//! can have legitimate exceptions honours an explicit exemption comment so
//! intent is visible at the use site.
//!
//! Rules (see DESIGN.md "Determinism & static analysis"):
//!
//! 1. `hash-container` — no `HashMap`/`HashSet` in non-test library code of
//!    the simulation-state crates (`diknn-sim`, `diknn-core`,
//!    `diknn-routing`, `diknn-baselines`). Iteration order of hash
//!    containers is randomized per process and silently breaks same-seed
//!    reproducibility. Use `BTreeMap`/`BTreeSet`, or prove the container is
//!    never iterated and annotate the line `// lint: order-independent`.
//! 2. `wall-clock` — no `Instant::now`/`SystemTime` in library code of any
//!    `diknn-*` crate: simulated time must come from the event clock.
//!    Exemption: `// lint: wall-clock-ok`.
//! 3. `ambient-randomness` — no `thread_rng`/`from_entropy`/`rand::random`
//!    anywhere in `diknn-*` sources, tests included: all randomness must
//!    flow from an explicitly seeded generator. No exemption.
//! 4. `float-eq` — no bare `==`/`!=` against a float literal in protocol
//!    decision code (`diknn-core`, `diknn-routing`): exact float equality
//!    in a branch is almost always a latent tie-break bug. Exemption:
//!    `// lint: float-eq-ok`.
//! 5. `unwrap-budget` — `.unwrap()`/`.expect(` occurrences in non-test
//!    library code are counted per crate and checked against
//!    `xtask/lint-budgets.toml`; new unwraps fail loudly until the budget
//!    is consciously raised in review.
//! 6. `strict-header` — every workspace crate root must carry
//!    `#![forbid(unsafe_code)]`.
//! 7. `raw-thread` — no `thread::spawn`/`thread::scope`/`thread::Builder`
//!    in library code outside the sanctioned executor module
//!    (`crates/diknn-workloads/src/parallel.rs`): ad-hoc threads are how
//!    nondeterministic collection order sneaks in. All parallelism funnels
//!    through `ParallelSweep`, whose index-ordered collection keeps sweeps
//!    bit-identical to sequential runs. No exemption.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// Crates whose library code may not use hash containers (rule 1).
const ORDERED_STATE_CRATES: &[&str] = &[
    "diknn-sim",
    "diknn-core",
    "diknn-routing",
    "diknn-baselines",
];

/// Crates whose library code may not compare floats with `==`/`!=` (rule 4).
const FLOAT_EQ_CRATES: &[&str] = &["diknn-core", "diknn-routing"];

/// The one module allowed to touch `std::thread` (rule 7): the sanctioned
/// deterministic executor everything else must go through.
const SANCTIONED_THREAD_MODULE: &str = "crates/diknn-workloads/src/parallel.rs";

/// One finding of the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for whole-file findings.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Full result of a workspace pass.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Non-test `.unwrap()`/`.expect(` occurrences per crate.
    pub unwrap_counts: BTreeMap<String, u32>,
    pub budgets: BTreeMap<String, u32>,
    pub files_scanned: usize,
}

/// Per-file scan result, aggregated by [`lint_workspace`].
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub unwrap_count: u32,
}

/// Run every rule over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let budgets = parse_budgets(
        &fs::read_to_string(root.join("xtask/lint-budgets.toml"))
            .map_err(|e| format!("reading xtask/lint-budgets.toml: {e}"))?,
    )?;

    let mut report = LintReport {
        budgets,
        ..LintReport::default()
    };

    // Library sources: crates/<name>/src/** plus the root package's src/**.
    let mut lib_files: Vec<(String, String)> = Vec::new(); // (rel path, crate name)
    let crates_dir = root.join("crates");
    for entry in read_dir_sorted(&crates_dir)? {
        let crate_name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs_files(&src, root, &mut lib_files, &crate_name)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs_files(&root_src, root, &mut lib_files, "diknn-repro")?;
    }

    for (rel, crate_name) in &lib_files {
        let content =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let file_report = scan_source(rel, crate_name, &content);
        report.violations.extend(file_report.violations);
        *report.unwrap_counts.entry(crate_name.clone()).or_insert(0) += file_report.unwrap_count;
        report.files_scanned += 1;
    }

    report
        .violations
        .extend(check_budgets(&report.unwrap_counts, &report.budgets));

    // Strict headers on every crate root in the workspace (vendored
    // stand-ins and xtask included).
    let mut roots: Vec<String> = vec![
        "src/lib.rs".into(),
        "xtask/src/lib.rs".into(),
        "xtask/src/main.rs".into(),
    ];
    for dir in ["crates", "vendor"] {
        for entry in read_dir_sorted(&root.join(dir))? {
            let name = entry
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            let lib = format!("{dir}/{name}/src/lib.rs");
            if root.join(&lib).is_file() {
                roots.push(lib);
            }
        }
    }
    for rel in roots {
        let content =
            fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        report
            .violations
            .extend(check_strict_header(&rel, &content));
        report.files_scanned += 1;
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs_files(
    dir: &Path,
    root: &Path,
    out: &mut Vec<(String, String)>,
    crate_name: &str,
) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, root, out, crate_name)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, crate_name.to_string()));
        }
    }
    Ok(())
}

/// Parse the minimal `name = count` budget format (full TOML is not needed
/// and cannot be vendored offline).
pub fn parse_budgets(text: &str) -> Result<BTreeMap<String, u32>, String> {
    let mut budgets = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('[') {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint-budgets.toml line {}: expected `crate = N`", i + 1))?;
        let count: u32 = value
            .trim()
            .parse()
            .map_err(|_| format!("lint-budgets.toml line {}: bad count {value:?}", i + 1))?;
        budgets.insert(name.trim().trim_matches('"').to_string(), count);
    }
    Ok(budgets)
}

/// Compare measured unwrap counts against budgets (rule 5).
pub fn check_budgets(
    counts: &BTreeMap<String, u32>,
    budgets: &BTreeMap<String, u32>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (krate, &count) in counts {
        let budget = budgets.get(krate).copied().unwrap_or(0);
        if count > budget {
            violations.push(Violation {
                file: format!("crates/{krate}"),
                line: 0,
                rule: "unwrap-budget",
                message: format!(
                    "{count} unwrap()/expect() calls in non-test library code, budget is \
                     {budget}; return a Result or raise the budget in xtask/lint-budgets.toml \
                     with a justification"
                ),
            });
        }
    }
    violations
}

/// Rule 6: the crate root must forbid unsafe code.
pub fn check_strict_header(rel_path: &str, content: &str) -> Option<Violation> {
    if content.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Violation {
            file: rel_path.to_string(),
            line: 0,
            rule: "strict-header",
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        })
    }
}

/// Scan one library source file with rules 1–5.
///
/// `rel_path` is workspace-relative (used in messages and for scoping);
/// `crate_name` decides which crate-scoped rules apply.
pub fn scan_source(rel_path: &str, crate_name: &str, content: &str) -> FileReport {
    let mut report = FileReport::default();
    let ordered_scope = ORDERED_STATE_CRATES.contains(&crate_name);
    let float_scope = FLOAT_EQ_CRATES.contains(&crate_name);

    let mut in_test_region = false;
    let mut test_depth: i32 = 0;
    let mut pending_cfg_test = false;
    let mut prev_line_exemptions: Vec<&str> = Vec::new();

    for (idx, raw) in content.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw.trim();

        // ---- test-region tracking -----------------------------------
        if in_test_region {
            test_depth += brace_delta(trimmed);
            if test_depth <= 0 {
                in_test_region = false;
            }
            continue;
        }
        if pending_cfg_test {
            if trimmed.contains('{') {
                pending_cfg_test = false;
                in_test_region = true;
                test_depth = brace_delta(trimmed);
                if test_depth <= 0 {
                    in_test_region = false;
                }
            } else if trimmed.ends_with(';') {
                // `mod tests;` — out-of-line test module, nothing to skip.
                pending_cfg_test = false;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(any(test") {
            pending_cfg_test = true;
            continue;
        }

        // Exemptions may sit on the flagged line or the line above it.
        let exemptions = line_exemptions(trimmed);
        let exempt = |tag: &str| exemptions.contains(&tag) || prev_line_exemptions.contains(&tag);
        let code = code_portion(trimmed);

        // ---- rule 1: hash containers --------------------------------
        if ordered_scope
            && (code.contains("HashMap") || code.contains("HashSet"))
            && !exempt("order-independent")
        {
            report.violations.push(Violation {
                file: rel_path.to_string(),
                line: lineno,
                rule: "hash-container",
                message: "HashMap/HashSet iteration order is randomized per process; use \
                          BTreeMap/BTreeSet, or prove the container is never iterated and \
                          annotate `// lint: order-independent`"
                    .into(),
            });
        }

        // ---- rule 2: wall clock -------------------------------------
        if (code.contains("Instant::now") || code.contains("SystemTime"))
            && !exempt("wall-clock-ok")
        {
            report.violations.push(Violation {
                file: rel_path.to_string(),
                line: lineno,
                rule: "wall-clock",
                message: "wall-clock time breaks same-seed reproducibility; use the \
                          simulated clock (`Ctx::now`) or annotate `// lint: wall-clock-ok`"
                    .into(),
            });
        }

        // ---- rule 3: ambient randomness (no exemption) --------------
        for needle in ["thread_rng", "from_entropy", "rand::random"] {
            if code.contains(needle) {
                report.violations.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "ambient-randomness",
                    message: format!(
                        "`{needle}` draws from process entropy; all randomness must flow \
                         from an explicitly seeded generator (no exemption)"
                    ),
                });
            }
        }

        // ---- rule 4: bare float equality ----------------------------
        if float_scope && !exempt("float-eq-ok") {
            if let Some(col) = find_float_eq(code) {
                report.violations.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "float-eq",
                    message: format!(
                        "bare float `==`/`!=` (column {col}) in protocol decision code; \
                         compare against an epsilon or annotate `// lint: float-eq-ok`"
                    ),
                });
            }
        }

        // ---- rule 7: raw threads (no exemption) ---------------------
        if rel_path != SANCTIONED_THREAD_MODULE {
            for needle in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if code.contains(needle) {
                    report.violations.push(Violation {
                        file: rel_path.to_string(),
                        line: lineno,
                        rule: "raw-thread",
                        message: format!(
                            "`{needle}` outside the sanctioned executor; route all \
                             parallelism through `diknn_workloads::ParallelSweep` \
                             ({SANCTIONED_THREAD_MODULE}), whose index-ordered collection \
                             keeps results bit-identical to sequential (no exemption)"
                        ),
                    });
                }
            }
        }

        // ---- rule 5: unwrap counting --------------------------------
        report.unwrap_count +=
            count_occurrences(code, ".unwrap()") + count_occurrences(code, ".expect(");

        prev_line_exemptions = exemptions;
    }
    report
}

/// `// lint: a, b` exemption tags on a line.
fn line_exemptions(line: &str) -> Vec<&str> {
    let Some(pos) = line.find("lint:") else {
        return Vec::new();
    };
    // Only honour the marker inside a comment.
    if !line[..pos].contains("//") {
        return Vec::new();
    }
    line[pos + "lint:".len()..]
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

/// The part of a line before any `//` comment (string-literal `//` is rare
/// enough in this codebase that the heuristic is acceptable for a linter
/// that errs toward under-flagging comments, not code).
fn code_portion(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Net `{`/`}` difference of a line (brace-counting for test regions).
fn brace_delta(line: &str) -> i32 {
    let code = code_portion(line);
    let mut delta = 0;
    for c in code.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

fn count_occurrences(hay: &str, needle: &str) -> u32 {
    let mut count = 0;
    let mut rest = hay;
    while let Some(pos) = rest.find(needle) {
        count += 1;
        rest = &rest[pos + needle.len()..];
    }
    count
}

/// Find a `==`/`!=` whose left or right operand ends/starts with a float
/// literal (`1.0`, `.5`, `0.`). Returns the byte column of the operator.
fn find_float_eq(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(op) {
            let at = start + pos;
            start = at + op.len();
            // Skip `<=`, `>=`, `!==`-like contexts and pattern arrows.
            if op == "==" && at > 0 && matches!(bytes[at - 1], b'<' | b'>' | b'!' | b'=') {
                continue;
            }
            if code[at + op.len()..].starts_with('=') {
                continue;
            }
            let left = code[..at].trim_end();
            let right = code[at + op.len()..].trim_start();
            if ends_with_float_literal(left) || starts_with_float_literal(right) {
                return Some(at + 1);
            }
        }
    }
    None
}

fn ends_with_float_literal(s: &str) -> bool {
    // Take the trailing token of identifier-ish/numeric characters.
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    is_float_literal(&tail)
}

fn starts_with_float_literal(s: &str) -> bool {
    let head: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
        .collect();
    is_float_literal(&head)
}

/// `1.0`, `0.5f64`, `.25` — digits with a dot; method calls like
/// `x.dist` or paths like `std.mem` do not qualify.
fn is_float_literal(token: &str) -> bool {
    let t = token
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    if !t.contains('.') {
        return false;
    }
    !t.is_empty()
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(report: &FileReport) -> Vec<&'static str> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_hash_containers_in_sim_scope_only() {
        let src = "use std::collections::HashMap;\n";
        let in_scope = scan_source("crates/diknn-sim/src/engine.rs", "diknn-sim", src);
        assert_eq!(rules(&in_scope), vec!["hash-container"]);
        let out_of_scope = scan_source("crates/diknn-geom/src/lib.rs", "diknn-geom", src);
        assert!(out_of_scope.violations.is_empty());
    }

    #[test]
    fn order_independent_exemption_suppresses_hash_rule() {
        let same_line = "    map: HashMap<u64, Tx>, // lint: order-independent\n";
        let r = scan_source("crates/diknn-sim/src/x.rs", "diknn-sim", same_line);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        let line_above = "// lint: order-independent\n    map: HashMap<u64, Tx>,\n";
        let r = scan_source("crates/diknn-sim/src/x.rs", "diknn-sim", line_above);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn flags_wall_clock_and_ambient_randomness() {
        let src = "let t = std::time::Instant::now();\nlet mut rng = rand::thread_rng();\n";
        let r = scan_source("crates/diknn-geom/src/lib.rs", "diknn-geom", src);
        assert_eq!(rules(&r), vec!["wall-clock", "ambient-randomness"]);
    }

    #[test]
    fn ambient_randomness_has_no_exemption() {
        let src = "let x = thread_rng(); // lint: order-independent, wall-clock-ok\n";
        let r = scan_source("crates/diknn-core/src/a.rs", "diknn-core", src);
        assert_eq!(rules(&r), vec!["ambient-randomness"]);
    }

    #[test]
    fn flags_raw_threads_outside_the_sanctioned_executor() {
        let src = "let h = std::thread::spawn(|| work());\n";
        let r = scan_source("crates/diknn-bench/src/lib.rs", "diknn-bench", src);
        assert_eq!(rules(&r), vec!["raw-thread"]);
        // The executor module itself is the one sanctioned call site.
        let r = scan_source(
            "crates/diknn-workloads/src/parallel.rs",
            "diknn-workloads",
            src,
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // No exemption comment silences the rule.
        let r = scan_source(
            "crates/diknn-sim/src/x.rs",
            "diknn-sim",
            "std::thread::scope(|s| {}); // lint: wall-clock-ok, order-independent\n",
        );
        assert_eq!(rules(&r), vec!["raw-thread"]);
        // Non-spawning thread APIs (sleep, available_parallelism) are fine.
        let r = scan_source(
            "crates/diknn-sim/src/x.rs",
            "diknn-sim",
            "std::thread::sleep(d);\nlet n = std::thread::available_parallelism();\n",
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn flags_bare_float_equality_in_protocol_scope() {
        let src = "if dist == 0.0 {\n";
        let r = scan_source("crates/diknn-core/src/protocol.rs", "diknn-core", src);
        assert_eq!(rules(&r), vec!["float-eq"]);
        // Same comparison in a non-decision crate is fine.
        let r = scan_source("crates/diknn-geom/src/rect.rs", "diknn-geom", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn float_eq_ignores_epsilon_comparisons_and_integers() {
        for ok in [
            "if (a - b).abs() < 1e-9 {\n",
            "if n == 0 {\n",
            "if x <= 1.0 {\n",
            "if x >= 0.5 {\n",
            "let eq = idx != 3;\n",
        ] {
            let r = scan_source("crates/diknn-core/src/a.rs", "diknn-core", ok);
            assert!(r.violations.is_empty(), "falsely flagged {ok:?}");
        }
        let r = scan_source(
            "crates/diknn-core/src/a.rs",
            "diknn-core",
            "if d == 0.0 { /* exact */ } // lint: float-eq-ok\n",
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn counts_unwraps_outside_tests_only() {
        let src = "\
fn f() { x.unwrap(); y.expect(\"reason\"); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { z.unwrap(); }
}
fn g() { w.unwrap(); }
";
        let r = scan_source("crates/diknn-geom/src/lib.rs", "diknn-geom", src);
        assert_eq!(r.unwrap_count, 3);
    }

    #[test]
    fn budget_overrun_is_a_violation() {
        let counts = BTreeMap::from([("diknn-geom".to_string(), 5u32)]);
        let budgets = BTreeMap::from([("diknn-geom".to_string(), 4u32)]);
        let v = check_budgets(&counts, &budgets);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap-budget");
        let v = check_budgets(&counts, &BTreeMap::from([("diknn-geom".to_string(), 5u32)]));
        assert!(v.is_empty());
    }

    #[test]
    fn missing_budget_entry_means_zero() {
        let counts = BTreeMap::from([("diknn-new".to_string(), 1u32)]);
        let v = check_budgets(&counts, &BTreeMap::new());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn strict_header_check() {
        assert!(check_strict_header("src/lib.rs", "#![forbid(unsafe_code)]\n").is_none());
        assert!(check_strict_header("src/lib.rs", "// nothing\n").is_some());
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// a HashMap would be wrong here\nlet x = 1; // Instant::now() is banned\n";
        let r = scan_source("crates/diknn-sim/src/a.rs", "diknn-sim", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn budget_parser_round_trips() {
        let budgets =
            parse_budgets("# comment\ndiknn-sim = 3\n\"diknn-core\" = 0 # trailing\n").unwrap();
        assert_eq!(budgets.get("diknn-sim"), Some(&3));
        assert_eq!(budgets.get("diknn-core"), Some(&0));
        assert!(parse_budgets("diknn-sim = many").is_err());
    }
}
