//! Library half of the `xtask` automation crate: exposes the lint pass so
//! integration tests can drive it against fixture sources.

#![forbid(unsafe_code)]

pub mod lint;
