//! Library half of the `xtask` automation crate: the static-analysis pass
//! (`cargo xtask lint`), exposed so integration tests can drive the lexer,
//! index, and rule families against fixture sources.

#![forbid(unsafe_code)]

pub mod index;
pub mod lexer;
pub mod lint;
pub mod report;
pub mod rules;
