//! A small self-contained Rust lexer for the static-analysis pass.
//!
//! `syn` cannot be vendored in this offline environment, so the analyzer
//! works on a real token stream produced here instead of raw lines. The
//! lexer handles everything that made the old line scanner blind or
//! jumpy: string literals (including raw strings with arbitrary `#`
//! fences and byte strings), char literals vs. lifetimes, nested block
//! comments, numeric literals with suffixes, and multi-character
//! punctuation. Comments are *kept* as tokens — exemption markers and
//! hot-path region fences live in comments, so rules need to see them —
//! but every rule distinguishes code tokens from comment tokens by kind,
//! never by substring matching.
//!
//! The lexer is intentionally lossy where the rules don't care: it does
//! not validate literals, resolve keywords, or attach spans beyond the
//! 1-based line number. It must, however, never misclassify code as a
//! comment or string (or vice versa) on any input `rustc` accepts, since
//! that is exactly the failure mode that lets violations hide.

use std::fmt;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `SmallRng`, `r#match` → `match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Punctuation; multi-character operators are one token (`::`, `=>`,
    /// `==`, `!=`, `<=`, `>=`, `->`, `..`, …).
    Punct,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal (with optional exponent/suffix).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); text is
    /// the raw source slice, quotes included.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `// …` comment (doc comments included); text excludes the newline.
    LineComment,
    /// `/* … */` comment (nesting handled); may span lines.
    BlockComment,
}

impl TokKind {
    /// Whether this token is code (participates in program semantics).
    pub fn is_code(self) -> bool {
        !matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One lexed token: kind, source text, 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}:{}", self.line, self.kind, self.text)
    }
}

/// Multi-character operators, longest first (greedy matching).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "=>", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lex `src` into a token stream. Never fails: unexpected bytes become
/// single-character punct tokens, unterminated literals run to EOF — a
/// linter must keep scanning whatever it is fed.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run(src)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokKind, start: usize, line: usize, text_src: &str) {
        self.out.push(Tok {
            kind,
            text: text_src[start..self.pos].to_string(),
            line,
        });
    }

    fn run(mut self, text: &str) -> Vec<Tok> {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            let start = self.pos;
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokKind::LineComment, start, line, text);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump();
                            self.bump();
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                    }
                    self.push(TokKind::BlockComment, start, line, text);
                }
                b'"' => {
                    self.string_body();
                    self.push(TokKind::Str, start, line, text);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    // Handled inside; token pushed there via return flag.
                    self.push(TokKind::Str, start, line, text);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump(); // b
                    self.char_body();
                    self.push(TokKind::Char, start, line, text);
                }
                b'\'' => {
                    // Lifetime or char literal.
                    if self.is_lifetime() {
                        self.bump(); // '
                        while is_ident_char(self.peek(0)) {
                            self.bump();
                        }
                        self.push(TokKind::Lifetime, start, line, text);
                    } else {
                        self.char_body();
                        self.push(TokKind::Char, start, line, text);
                    }
                }
                b'0'..=b'9' => {
                    let kind = self.number_body();
                    self.push(kind, start, line, text);
                }
                c if is_ident_start(c) => {
                    // `r#ident` raw identifiers: strip the prefix so rules
                    // see the plain name.
                    if c == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                        self.bump();
                        self.bump();
                        let istart = self.pos;
                        while is_ident_char(self.peek(0)) {
                            self.bump();
                        }
                        self.out.push(Tok {
                            kind: TokKind::Ident,
                            text: text[istart..self.pos].to_string(),
                            line,
                        });
                    } else {
                        while is_ident_char(self.peek(0)) {
                            self.bump();
                        }
                        self.push(TokKind::Ident, start, line, text);
                    }
                }
                _ => {
                    // Punct: greedy multi-char match, else one byte (which
                    // also swallows any stray non-ASCII byte harmlessly).
                    let rest = &text[self.pos..];
                    let multi = PUNCTS.iter().find(|p| rest.starts_with(**p));
                    match multi {
                        Some(p) => {
                            for _ in 0..p.len() {
                                self.bump();
                            }
                        }
                        None => {
                            // Consume a full UTF-8 scalar so we never split
                            // a multi-byte character.
                            let ch_len = rest.chars().next().map_or(1, char::len_utf8);
                            for _ in 0..ch_len {
                                self.bump();
                            }
                        }
                    }
                    self.push(TokKind::Punct, start, line, text);
                }
            }
        }
        self.out
    }

    /// At a `'`: does a lifetime start here (vs. a char literal)?
    fn is_lifetime(&self) -> bool {
        // 'a where a… is an ident: lifetime unless the ident is a single
        // char followed by a closing quote ('x').
        if !is_ident_start(self.peek(1)) {
            return false; // '(' , '\n' etc: char literal
        }
        // Scan the ident; lifetime iff not terminated by '.
        let mut i = 1;
        while is_ident_char(self.peek(i)) {
            i += 1;
        }
        self.peek(i) != b'\''
    }

    /// Consume `'…'` (caller sits on the opening quote).
    fn char_body(&mut self) {
        self.bump(); // '
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump(); // escaped char
                         // \x7f, \u{…} tails: run to the closing quote.
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        } else if self.pos < self.src.len() {
            // One UTF-8 scalar.
            let rest = &self.src[self.pos..];
            let len = std::str::from_utf8(rest)
                .ok()
                .and_then(|s| s.chars().next())
                .map_or(1, char::len_utf8);
            for _ in 0..len {
                self.bump();
            }
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    /// Consume `"…"` with escapes (caller sits on the opening quote).
    fn string_body(&mut self) {
        self.bump(); // "
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    /// If the cursor sits on a raw / byte string prefix (`r"`, `r#"`,
    /// `b"`, `br#"` …), consume the whole literal and return true.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = 0;
        if self.peek(i) == b'b' {
            i += 1;
        }
        let raw = self.peek(i) == b'r';
        if raw {
            i += 1;
        }
        let mut fences = 0;
        while self.peek(i + fences) == b'#' {
            fences += 1;
        }
        if self.peek(i + fences) != b'"' || (!raw && (fences > 0 || self.peek(0) != b'b')) {
            return false; // not a string start (plain ident `r`/`b`…)
        }
        // Consume prefix + fences + opening quote.
        for _ in 0..(i + fences + 1) {
            self.bump();
        }
        if raw {
            // Raw: no escapes; ends at `"` followed by `fences` hashes.
            while self.pos < self.src.len() {
                if self.peek(0) == b'"' {
                    let mut ok = true;
                    for f in 0..fences {
                        if self.peek(1 + f) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..(fences + 1) {
                            self.bump();
                        }
                        return true;
                    }
                }
                self.bump();
            }
        } else {
            // b"…": cooked escapes.
            while self.pos < self.src.len() {
                match self.peek(0) {
                    b'\\' => {
                        self.bump();
                        self.bump();
                    }
                    b'"' => {
                        self.bump();
                        return true;
                    }
                    _ => self.bump(),
                }
            }
        }
        true
    }

    /// Consume a numeric literal; returns Int or Float.
    fn number_body(&mut self) -> TokKind {
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            return TokKind::Int;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        let mut float = false;
        // `1.5`, `1.` — but not `1..2` (range) or `1.foo` (field/method).
        if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
            float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.bump();
            if matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Suffix (f64, u32, usize…). A float suffix forces Float.
        if is_ident_start(self.peek(0)) {
            let sfx_start = self.pos;
            while is_ident_char(self.peek(0)) {
                self.bump();
            }
            let sfx = &self.src[sfx_start..self.pos];
            if sfx == b"f32" || sfx == b"f64" {
                float = true;
            }
        }
        if float {
            TokKind::Float
        } else {
            TokKind::Int
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Convenience for rules: iterate code tokens only (comments skipped),
/// yielding `(index_in_full_stream, &Tok)`.
pub fn code_tokens(toks: &[Tok]) -> impl Iterator<Item = (usize, &Tok)> {
    toks.iter().enumerate().filter(|(_, t)| t.kind.is_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = foo::bar(1, 2.5);");
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(toks.contains(&(TokKind::Int, "1".into())));
        assert!(toks.contains(&(TokKind::Float, "2.5".into())));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = lex("code(); // HashMap in a comment\n/* Instant::now */ more();");
        let comment_texts: Vec<_> = toks
            .iter()
            .filter(|t| !t.kind.is_code())
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(comment_texts.len(), 2);
        assert!(comment_texts[0].contains("HashMap"));
        // No code token mentions HashMap or Instant.
        assert!(!toks
            .iter()
            .filter(|t| t.kind.is_code())
            .any(|t| t.text.contains("HashMap") || t.text.contains("Instant")));
    }

    #[test]
    fn strings_swallow_comment_markers_and_quotes() {
        let toks = kinds(r#"let s = "a // not a comment \" still"; x();"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("not a comment"));
        assert!(toks.contains(&(TokKind::Ident, "x".into())));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"has \"quotes\" and // slashes\"#; done();";
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1, "{toks:?}");
        assert!(toks.contains(&(TokKind::Ident, "done".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds("let a = b\"bytes\"; let c = b'x';");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.starts_with("b\"")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "b'x'"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ code();");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("still comment"));
        assert!(toks.iter().any(|t| t.text == "code"));
    }

    #[test]
    fn line_numbers_track_newlines_and_multiline_tokens() {
        let toks = lex("a\n\nb /* x\ny */ c\nd");
        let line_of = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 3);
        assert_eq!(line_of("c"), 4); // after the 2-line block comment
        assert_eq!(line_of("d"), 5);
    }

    #[test]
    fn numeric_edge_cases() {
        let toks = kinds("0xFF 1_000 1.0f64 2f32 1e-9 1..2 x.0 3.foo()");
        assert!(toks.contains(&(TokKind::Int, "0xFF".into())));
        assert!(toks.contains(&(TokKind::Int, "1_000".into())));
        assert!(toks.contains(&(TokKind::Float, "1.0f64".into())));
        assert!(toks.contains(&(TokKind::Float, "2f32".into())));
        assert!(toks.contains(&(TokKind::Float, "1e-9".into())));
        // Range stays two ints.
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Int, "2".into())));
        // Tuple access `.0` is punct + int, not a float.
        assert!(toks.contains(&(TokKind::Int, "0".into())));
        // `3.foo()` is int + dot + ident.
        assert!(toks.contains(&(TokKind::Int, "3".into())));
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
    }

    #[test]
    fn comparison_operators_are_single_tokens() {
        let toks = kinds("a == b != c <= d >= e = f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", ">=", "="]);
    }

    #[test]
    fn raw_identifiers_lose_the_prefix() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokKind::Ident, "match".into())));
    }

    #[test]
    fn unterminated_inputs_do_not_hang() {
        for src in ["\"open", "/* open", "r#\"open", "'"] {
            let _ = lex(src); // must terminate
        }
    }
}
