//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! The only command today is `lint`: a token-level static-analysis pass
//! over workspace sources (lexer + symbol index, see DESIGN.md §11)
//! enforcing the project invariants that clippy's `disallowed-types` /
//! `disallowed-methods` cannot express — scoped container bans, float
//! total-order in comparators, RNG stream custody, trace↔replayer
//! conformance, hot-path allocation fences, and the panic-budget ratchet.

#![forbid(unsafe_code)]

use xtask::lint;
use xtask::rules::panic_budget;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: cargo xtask lint [--verbose] [--json] [--update-baseline] [--dead-exports]

commands:
  lint    statically check workspace sources for determinism violations:
          hash containers in simulation state, wall-clock reads, ambient
          randomness, bare float equality, partial-order float comparators,
          RNG stream custody, trace/replayer conformance, hot-path
          allocations, panic-budget regressions, and strict headers

flags:
  --verbose           print per-crate panic counts and file totals
  --json              print the machine-readable report to stdout
  --update-baseline   rewrite xtask/lint_baseline.toml from measured counts
  --dead-exports      list pub items with zero cross-crate references

every run also writes results/LINT_REPORT.json";

fn run_lint(flags: &[String]) -> ExitCode {
    let mut verbose = false;
    let mut json = false;
    let mut update_baseline = false;
    let mut dead_exports = false;
    for flag in flags {
        match flag.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "--dead-exports" => dead_exports = true,
            other => {
                eprintln!("unknown lint flag: {other}");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let mut report = match lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if update_baseline {
        let rendered = panic_budget::render_baseline(&report.panic_counts);
        if let Err(e) = std::fs::write(root.join("xtask/lint_baseline.toml"), rendered) {
            eprintln!("xtask lint: writing lint_baseline.toml: {e}");
            return ExitCode::FAILURE;
        }
        println!("xtask lint: wrote xtask/lint_baseline.toml from measured counts");
        // The counts now ARE the baseline; drop ratchet findings.
        report.baseline = report.panic_counts.clone();
        report.violations.retain(|v| v.rule != "panic-budget");
    }

    match lint::write_report(&root, &report) {
        Ok(path) => {
            if verbose {
                println!("wrote {path}");
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    }

    if json {
        print!("{}", report.to_json());
    }
    if verbose {
        for (krate, count) in &report.panic_counts {
            let base = report.baseline.get(krate).copied().unwrap_or(0);
            println!("panic budget: {krate}: {count}/{base}");
        }
        println!("scanned {} files", report.files_scanned);
    }
    if dead_exports {
        if report.dead_exports.is_empty() {
            println!("dead exports: none");
        } else {
            println!("dead exports ({}):", report.dead_exports.len());
            for d in &report.dead_exports {
                let hint = if d.intra_crate_refs {
                    "used only inside its crate; consider pub(crate)"
                } else {
                    "no references anywhere; consider removing"
                };
                println!(
                    "  {}:{}: pub {} {} — {hint}",
                    d.file, d.line, d.kind, d.name
                );
            }
        }
    }

    if report.violations.is_empty() {
        if !json {
            println!(
                "xtask lint: OK ({} files, {} crates within panic budget)",
                report.files_scanned,
                report.panic_counts.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("{v}");
        }
        eprintln!(
            "xtask lint: {} violation(s). See DESIGN.md §11 \"Static analysis architecture\" \
             for the policy and how to add an exemption.",
            report.violations.len()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask crate lives one level under the workspace root")
        .to_path_buf()
}
