//! Workspace automation tasks, invoked as `cargo xtask <command>`.
//!
//! The only command today is `lint`: a static-analysis pass over workspace
//! sources enforcing the project invariants documented in DESIGN.md
//! ("Determinism & static analysis") that clippy's `disallowed-types` /
//! `disallowed-methods` cannot fully express — scoped container bans,
//! exemption comments, per-crate unwrap budgets, and strict-header checks.

#![forbid(unsafe_code)]

use xtask::lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(args.get(1).map(String::as_str)),
        Some(other) => {
            eprintln!("unknown xtask command: {other}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: cargo xtask lint [--verbose]

commands:
  lint    statically check workspace sources for determinism violations:
          hash containers in simulation state, wall-clock reads, ambient
          randomness, bare float equality in protocol code, unwrap budget
          overruns, and missing strict-lint headers";

fn run_lint(flag: Option<&str>) -> ExitCode {
    let verbose = matches!(flag, Some("--verbose" | "-v"));
    let root = workspace_root();
    match lint::lint_workspace(&root) {
        Ok(report) => {
            if verbose {
                for (krate, count) in &report.unwrap_counts {
                    let budget = report.budgets.get(krate).copied().unwrap_or(0);
                    println!("unwrap/expect budget: {krate}: {count}/{budget}");
                }
                println!("scanned {} files", report.files_scanned);
            }
            if report.violations.is_empty() {
                println!(
                    "xtask lint: OK ({} files, {} crates within unwrap budget)",
                    report.files_scanned,
                    report.unwrap_counts.len()
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    eprintln!("{v}");
                }
                eprintln!(
                    "xtask lint: {} violation(s). See DESIGN.md \"Determinism & static analysis\" \
                     for the policy and how to add an exemption.",
                    report.violations.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask crate lives one level under the workspace root")
        .to_path_buf()
}
