//! Workspace symbol index: one walk over every crate builds per-file token
//! streams plus the cross-file maps the rule families consume — enum →
//! variant tables, fn definitions and call sites, a `pub` item inventory
//! with cross-crate reference counts, `#[cfg(test)]` regions, hot-path
//! marker regions, and `// lint: …` exemption tags.
//!
//! The index deliberately stops short of type resolution: rules match
//! token shapes scoped by file/crate, which is the same contract the old
//! line scanner had, minus its blindness to strings, comments, and
//! multi-line constructs.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok, TokKind};
use crate::report::DeadExport;

/// How a file participates in analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`src/**`): every rule family runs on it.
    Lib,
    /// Auxiliary source (`tests/`, `benches/`, `examples/`): indexed for
    /// cross-crate reference counting only.
    Aux,
}

/// An unmatched hot-path fence: `(line, message)`.
pub type HotFenceError = (usize, String);

/// One lexed workspace source file.
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: String,
    pub crate_name: String,
    pub kind: FileKind,
    pub toks: Vec<Tok>,
    /// Per-token: inside a `#[cfg(test)]`-gated item.
    in_test: Vec<bool>,
    /// `// lint: a, b` exemption tags, by comment line.
    exemptions: BTreeMap<usize, Vec<String>>,
}

impl SourceFile {
    pub fn parse(rel: &str, crate_name: &str, kind: FileKind, src: &str) -> Self {
        let toks = lexer::lex(src);
        let in_test = mark_test_regions(&toks);
        let exemptions = collect_exemptions(&toks);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            toks,
            in_test,
            exemptions,
        }
    }

    /// The tokens rule families scan: code only, outside test regions.
    pub fn rule_toks(&self) -> Vec<&Tok> {
        self.toks
            .iter()
            .zip(&self.in_test)
            .filter(|(t, &test)| t.kind.is_code() && !test)
            .map(|(t, _)| t)
            .collect()
    }

    /// All code tokens, test regions included (reference indexing).
    pub fn code_toks(&self) -> impl Iterator<Item = &Tok> {
        self.toks.iter().filter(|t| t.kind.is_code())
    }

    /// Is `tag` exempted on `line` or the line above it?
    pub fn exempt(&self, line: usize, tag: &str) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.exemptions
                .get(l)
                .is_some_and(|tags| tags.iter().any(|t| t == tag))
        })
    }

    /// `// lint: hot-path` … `// lint: end-hot-path` line ranges, plus
    /// `(line, message)` errors for unmatched fences.
    pub fn hot_regions(&self) -> (Vec<(usize, usize)>, Vec<HotFenceError>) {
        let mut regions = Vec::new();
        let mut errors = Vec::new();
        let mut open: Option<usize> = None;
        for (&line, tags) in &self.exemptions {
            for tag in tags {
                match (tag.as_str(), open) {
                    ("end-hot-path", Some(start)) => {
                        regions.push((start, line));
                        open = None;
                    }
                    ("end-hot-path", None) => errors.push((
                        line,
                        "`// lint: end-hot-path` without a matching `// lint: hot-path`".into(),
                    )),
                    ("hot-path", None) => open = Some(line),
                    ("hot-path", Some(prev)) => errors.push((
                        line,
                        format!(
                            "hot-path region opened while the region from line {prev} is \
                             still open; add `// lint: end-hot-path` first"
                        ),
                    )),
                    _ => {}
                }
            }
        }
        if let Some(start) = open {
            errors.push((
                start,
                "hot-path region is never closed; add `// lint: end-hot-path`".into(),
            ));
        }
        (regions, errors)
    }
}

/// An enum definition found in library code.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub file: String,
    pub line: usize,
    /// `(variant name, line)` in declaration order.
    pub variants: Vec<(String, usize)>,
}

/// A `pub` item in library code (unrestricted visibility only —
/// `pub(crate)`/`pub(super)` items are not workspace exports).
#[derive(Debug, Clone)]
pub struct PubItem {
    pub crate_name: String,
    pub file: String,
    pub line: usize,
    pub kind: &'static str,
    pub name: String,
}

/// The full workspace index, built in one walk.
pub struct WorkspaceIndex {
    pub files: Vec<SourceFile>,
    /// Enum name → definitions (an enum name can repeat across crates).
    pub enums: BTreeMap<String, Vec<EnumDef>>,
    /// fn name → definition sites in library code.
    pub fn_defs: BTreeMap<String, Vec<(String, usize)>>,
    /// Callee name → call sites (`name(` anywhere in the workspace).
    pub calls: BTreeMap<String, Vec<(String, usize)>>,
    pub pub_items: Vec<PubItem>,
    /// Identifier → file index → occurrence count, over all code tokens.
    ident_refs: BTreeMap<String, BTreeMap<usize, u32>>,
}

impl WorkspaceIndex {
    /// Walk `crates/*/{src,tests,benches,examples}` and the root package,
    /// lex every file, and build the symbol tables.
    pub fn build(root: &Path) -> Result<Self, String> {
        let mut files = Vec::new();
        for krate in read_dir_sorted(&root.join("crates"))? {
            let name = krate
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            for (sub, kind) in [
                ("src", FileKind::Lib),
                ("tests", FileKind::Aux),
                ("benches", FileKind::Aux),
                ("examples", FileKind::Aux),
            ] {
                let dir = krate.join(sub);
                if dir.is_dir() {
                    load_rs_files(&dir, root, &name, kind, &mut files)?;
                }
            }
        }
        for (sub, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Aux),
            ("benches", FileKind::Aux),
            ("examples", FileKind::Aux),
        ] {
            let dir = root.join(sub);
            if dir.is_dir() {
                load_rs_files(&dir, root, "diknn-repro", kind, &mut files)?;
            }
        }
        Ok(Self::from_files(files))
    }

    /// Build an index from in-memory sources (fixture self-tests).
    pub fn from_sources(sources: &[(&str, &str, FileKind, &str)]) -> Self {
        Self::from_files(
            sources
                .iter()
                .map(|(rel, crate_name, kind, src)| SourceFile::parse(rel, crate_name, *kind, src))
                .collect(),
        )
    }

    pub fn from_files(files: Vec<SourceFile>) -> Self {
        let mut idx = WorkspaceIndex {
            files,
            enums: BTreeMap::new(),
            fn_defs: BTreeMap::new(),
            calls: BTreeMap::new(),
            pub_items: Vec::new(),
            ident_refs: BTreeMap::new(),
        };
        for fidx in 0..idx.files.len() {
            let f = &idx.files[fidx];
            let mut enums = Vec::new();
            let mut fn_defs = Vec::new();
            let mut pub_items = Vec::new();
            if f.kind == FileKind::Lib {
                let toks = f.rule_toks();
                enums = collect_enums(&toks, &f.rel);
                fn_defs = collect_fn_defs(&toks, &f.rel);
                pub_items = collect_pub_items(&toks, &f.rel, &f.crate_name);
            }
            let mut refs: Vec<(String, bool, usize)> = Vec::new(); // (ident, is_call, line)
            {
                let code: Vec<&Tok> = f.code_toks().collect();
                for (i, t) in code.iter().enumerate() {
                    if t.kind != TokKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
                        continue;
                    }
                    let is_call = code.get(i + 1).is_some_and(|n| n.text == "(")
                        && (i == 0 || code[i - 1].text != "fn");
                    refs.push((t.text.clone(), is_call, t.line));
                }
            }
            let rel = idx.files[fidx].rel.clone();
            for (name, is_call, line) in refs {
                *idx.ident_refs
                    .entry(name.clone())
                    .or_default()
                    .entry(fidx)
                    .or_insert(0) += 1;
                if is_call {
                    idx.calls.entry(name).or_default().push((rel.clone(), line));
                }
            }
            for e in enums {
                idx.enums.entry(e.0).or_default().push(e.1);
            }
            for (name, site) in fn_defs {
                idx.fn_defs.entry(name).or_default().push(site);
            }
            idx.pub_items.extend(pub_items);
        }
        idx
    }

    pub fn lib_files(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter().filter(|f| f.kind == FileKind::Lib)
    }

    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// `pub` items with zero references outside their defining crate.
    ///
    /// Conservative on the "alive" side: references from *any* test,
    /// bench, or example file count (integration tests consume the public
    /// API), and a comment/doc mention outside the defining crate also
    /// keeps an item alive.
    pub fn dead_exports(&self) -> Vec<DeadExport> {
        let mut out = Vec::new();
        for item in &self.pub_items {
            if item.kind == "reexport" {
                continue; // liveness belongs to the underlying item
            }
            let mut cross = 0u32;
            let mut intra = 0u32;
            if let Some(by_file) = self.ident_refs.get(&item.name) {
                for (&fidx, &count) in by_file {
                    let f = &self.files[fidx];
                    if f.crate_name == item.crate_name && f.kind == FileKind::Lib {
                        intra += count;
                    } else {
                        cross += count;
                    }
                }
            }
            intra = intra.saturating_sub(1); // the definition itself
            if cross > 0 {
                continue;
            }
            let mentioned = self.files.iter().any(|f| {
                !(f.crate_name == item.crate_name && f.kind == FileKind::Lib)
                    && f.toks
                        .iter()
                        .any(|t| !t.kind.is_code() && t.text.contains(&item.name))
            });
            if !mentioned {
                out.push(DeadExport {
                    crate_name: item.crate_name.clone(),
                    file: item.file.clone(),
                    line: item.line,
                    kind: item.kind,
                    name: item.name.clone(),
                    intra_crate_refs: intra > 0,
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

/// Keywords never indexed as references or call sites.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "else", "enum", "extern", "false", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while", "async", "await", "dyn",
];

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

fn load_rs_files(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            load_rs_files(&path, root, crate_name, kind, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
            out.push(SourceFile::parse(&rel, crate_name, kind, &src));
        }
    }
    Ok(())
}

/// Mark every token belonging to a `#[cfg(test)]`-gated item (the
/// attribute, the item, and its whole body). `cfg(any(test, …))` and
/// `cfg(all(test, …))` count; `cfg(not(test))` and `cfg_attr` do not.
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind.is_code())
        .map(|(i, _)| i)
        .collect();
    let txt = |ci: usize| toks[code[ci]].text.as_str();
    let mut ci = 0;
    while ci < code.len() {
        if !(txt(ci) == "#" && ci + 1 < code.len() && txt(ci + 1) == "[") {
            ci += 1;
            continue;
        }
        // Scan the attribute to its matching `]`, collecting identifiers.
        let mut depth = 0usize;
        let mut cj = ci + 1;
        let mut idents: Vec<&str> = Vec::new();
        while cj < code.len() {
            match txt(cj) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if toks[code[cj]].kind == TokKind::Ident {
                        idents.push(txt(cj));
                    }
                }
            }
            cj += 1;
        }
        let is_cfg_test =
            idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not");
        if !is_cfg_test || cj >= code.len() {
            ci = cj + 1;
            continue;
        }
        // The gated item runs to its body's closing `}`, or to a `;` at
        // top level before any brace opens (`mod tests;`, `use …;`).
        let mut ck = cj + 1;
        let mut brace = 0i32;
        let mut nest = 0i32; // parens + brackets, so `[u8; 4]` in a
                             // signature does not end the item early
        let mut end = code.len() - 1;
        while ck < code.len() {
            match txt(ck) {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end = ck;
                        break;
                    }
                }
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                ";" if brace == 0 && nest == 0 => {
                    end = ck;
                    break;
                }
                _ => {}
            }
            ck += 1;
        }
        for flag in in_test[code[ci]..=code[end]].iter_mut() {
            *flag = true;
        }
        ci = end + 1;
    }
    in_test
}

/// Gather `// lint: tag-a, tag-b (optional reason)` tags by line. A tag is
/// the first whitespace-separated word of each comma-separated chunk.
fn collect_exemptions(toks: &[Tok]) -> BTreeMap<usize, Vec<String>> {
    let mut map: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for t in toks {
        if t.kind.is_code() {
            continue;
        }
        let Some(pos) = t.text.find("lint:") else {
            continue;
        };
        for chunk in t.text[pos + "lint:".len()..].split(',') {
            if let Some(word) = chunk.split_whitespace().next() {
                let tag: String = word
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !tag.is_empty() {
                    map.entry(t.line).or_default().push(tag);
                }
            }
        }
    }
    map
}

/// Extract `enum Name { Variant, … }` tables from a rule-token stream.
fn collect_enums(toks: &[&Tok], rel: &str) -> Vec<(String, EnumDef)> {
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if !(toks[i].kind == TokKind::Ident
            && toks[i].text == "enum"
            && i + 1 < n
            && toks[i + 1].kind == TokKind::Ident)
        {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Find the body brace; generics use `<>` so the first `{` is it.
        let mut j = i + 2;
        while j < n && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= n || toks[j].text == ";" {
            i = j;
            continue;
        }
        // Inside the body a variant name is the first identifier at
        // nesting depth 1 after the opening brace or a depth-1 comma;
        // attribute brackets and variant payloads raise the depth.
        let mut variants = Vec::new();
        let mut depth = 1i32;
        let mut expect = true;
        j += 1;
        while j < n && depth > 0 {
            match toks[j].text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 1 => expect = true,
                _ => {
                    if expect && depth == 1 && toks[j].kind == TokKind::Ident {
                        variants.push((toks[j].text.clone(), toks[j].line));
                        expect = false;
                    }
                }
            }
            j += 1;
        }
        out.push((
            name,
            EnumDef {
                file: rel.to_string(),
                line,
                variants,
            },
        ));
        i = j;
    }
    out
}

/// `fn name` definition sites.
fn collect_fn_defs(toks: &[&Tok], rel: &str) -> Vec<(String, (String, usize))> {
    let mut out = Vec::new();
    for w in toks.windows(2) {
        if w[0].kind == TokKind::Ident && w[0].text == "fn" && w[1].kind == TokKind::Ident {
            out.push((w[1].text.clone(), (rel.to_string(), w[1].line)));
        }
    }
    out
}

const ITEM_KINDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "use",
];

/// Inventory `pub` items with unrestricted visibility.
fn collect_pub_items(toks: &[&Tok], rel: &str, crate_name: &str) -> Vec<PubItem> {
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "pub") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;
        if j < n && toks[j].text == "(" {
            // pub(crate) / pub(super) / pub(in …): not a workspace export.
            let mut d = 0i32;
            while j < n {
                match toks[j].text.as_str() {
                    "(" => d += 1,
                    ")" => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Skip fn qualifiers (`pub async unsafe extern "C" fn`, `pub const fn`).
        while j < n
            && (matches!(toks[j].text.as_str(), "async" | "unsafe" | "extern")
                || toks[j].kind == TokKind::Str)
        {
            j += 1;
        }
        if j + 1 < n && toks[j].text == "const" && toks[j + 1].text == "fn" {
            j += 1;
        }
        if j >= n {
            break;
        }
        let kw = toks[j].text.as_str();
        if !ITEM_KINDS.contains(&kw) {
            i = j + 1; // `pub field: T` and the like
            continue;
        }
        if kw == "use" {
            // Re-export: leaves are identifiers directly followed by a
            // separator (`,` `}` `;`); `x as y` exports the alias `y`.
            let mut k = j + 1;
            while k < n && toks[k].text != ";" {
                if toks[k].kind == TokKind::Ident
                    && !matches!(toks[k].text.as_str(), "self" | "crate" | "super" | "as")
                    && k + 1 < n
                    && matches!(toks[k + 1].text.as_str(), "," | "}" | ";")
                {
                    out.push(PubItem {
                        crate_name: crate_name.to_string(),
                        file: rel.to_string(),
                        line: toks[k].line,
                        kind: "reexport",
                        name: toks[k].text.clone(),
                    });
                }
                k += 1;
            }
            i = k;
            continue;
        }
        let kind: &'static str = match kw {
            "fn" => "fn",
            "struct" => "struct",
            "enum" => "enum",
            "trait" => "trait",
            "type" => "type",
            "const" => "const",
            "static" => "static",
            "mod" => "mod",
            _ => "union",
        };
        let mut k = j + 1;
        if kw == "static" && k < n && toks[k].text == "mut" {
            k += 1;
        }
        if k < n && toks[k].kind == TokKind::Ident {
            out.push(PubItem {
                crate_name: crate_name.to_string(),
                file: rel.to_string(),
                line,
                kind,
                name: toks[k].text.clone(),
            });
        }
        i = k + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/diknn-x/src/lib.rs", "diknn-x", FileKind::Lib, src)
    }

    #[test]
    fn test_regions_cover_attribute_and_body() {
        let f = file(
            "fn live() { a(); }\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { hidden(); }\n}\n\
             fn also_live() { b(); }\n",
        );
        let names: Vec<_> = f.rule_toks().iter().map(|t| t.text.clone()).collect();
        assert!(names.contains(&"live".to_string()));
        assert!(names.contains(&"also_live".to_string()));
        assert!(!names.contains(&"hidden".to_string()));
        assert!(!names.contains(&"tests".to_string()));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let f = file("#[cfg(not(test))]\nfn live() { a(); }\n");
        let names: Vec<_> = f.rule_toks().iter().map(|t| t.text.clone()).collect();
        assert!(names.contains(&"live".to_string()));
    }

    #[test]
    fn cfg_test_on_single_item_ends_at_semicolon() {
        let f = file("#[cfg(test)]\nuse std::fmt::Debug;\nfn live(x: [u8; 4]) { a(x); }\n");
        let names: Vec<_> = f.rule_toks().iter().map(|t| t.text.clone()).collect();
        assert!(!names.contains(&"Debug".to_string()));
        assert!(names.contains(&"live".to_string()));
    }

    #[test]
    fn exemption_tags_ignore_parenthetical_reasons() {
        let f = file("// lint: wall-clock-ok (host-side timing), order-independent\nlet x = 1;\n");
        assert!(f.exempt(1, "wall-clock-ok"));
        assert!(f.exempt(2, "wall-clock-ok")); // line above
        assert!(f.exempt(1, "order-independent"));
        assert!(!f.exempt(1, "float-eq-ok"));
        assert!(!f.exempt(3, "wall-clock-ok"));
    }

    #[test]
    fn hot_regions_pair_up_and_report_unmatched() {
        let f = file(
            "// lint: hot-path (dispatch loop)\nfn a() {}\n// lint: end-hot-path\n\
             // lint: hot-path\nfn b() {}\n",
        );
        let (regions, errors) = f.hot_regions();
        assert_eq!(regions, vec![(1, 3)]);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].0, 4);
    }

    #[test]
    fn enum_variants_are_extracted_with_payloads_and_attrs() {
        let f = file(
            "pub enum Kind {\n\
             /// doc\n    Plain,\n\
             #[allow(dead_code)]\n    Tuple(f64, u32),\n\
             Struct { a: u32, b: Vec<u8> },\n\
             Last = 4,\n}\n",
        );
        let idx = WorkspaceIndex::from_files(vec![f]);
        let def = &idx.enums["Kind"][0];
        let names: Vec<_> = def.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Plain", "Tuple", "Struct", "Last"]);
    }

    #[test]
    fn pub_items_and_reexports_are_inventoried() {
        let f = file(
            "pub fn api() {}\n\
             pub(crate) fn internal() {}\n\
             fn private() {}\n\
             pub struct S { pub field: u32 }\n\
             pub use other::{A, B as C};\n\
             pub const LIMIT: usize = 4;\n",
        );
        let idx = WorkspaceIndex::from_files(vec![f]);
        let names: Vec<_> = idx
            .pub_items
            .iter()
            .map(|p| (p.kind, p.name.as_str()))
            .collect();
        assert!(names.contains(&("fn", "api")));
        assert!(names.contains(&("struct", "S")));
        assert!(names.contains(&("const", "LIMIT")));
        assert!(names.contains(&("reexport", "A")));
        assert!(names.contains(&("reexport", "C")));
        assert!(!names
            .iter()
            .any(|(_, n)| *n == "internal" || *n == "private"));
        assert!(!names.iter().any(|(_, n)| *n == "field"));
        assert!(!names.iter().any(|(_, n)| *n == "B"));
    }

    #[test]
    fn dead_exports_respect_cross_crate_refs_and_comments() {
        let idx = WorkspaceIndex::from_sources(&[
            (
                "crates/diknn-a/src/lib.rs",
                "diknn-a",
                FileKind::Lib,
                "pub fn used_by_b() {}\npub fn used_in_a() {}\npub fn truly_dead() {}\n\
                 pub fn doc_mentioned() {}\nfn caller() { used_in_a(); }\n",
            ),
            (
                "crates/diknn-b/src/lib.rs",
                "diknn-b",
                FileKind::Lib,
                "fn g() { diknn_a::used_by_b(); }\n// see doc_mentioned for details\n",
            ),
        ]);
        let dead = idx.dead_exports();
        let names: Vec<_> = dead.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["used_in_a", "truly_dead"], "{dead:?}");
        assert!(dead[0].intra_crate_refs);
        assert!(!dead[1].intra_crate_refs);
    }

    #[test]
    fn fn_defs_and_call_sites_are_indexed() {
        let idx = WorkspaceIndex::from_sources(&[(
            "crates/diknn-a/src/lib.rs",
            "diknn-a",
            FileKind::Lib,
            "pub fn alpha() {}\nfn beta() { alpha(); alpha(); }\n",
        )]);
        assert_eq!(idx.fn_defs["alpha"].len(), 1);
        assert_eq!(idx.fn_defs["beta"].len(), 1);
        assert_eq!(idx.calls["alpha"].len(), 2);
        assert!(!idx.calls.contains_key("beta"));
    }
}
