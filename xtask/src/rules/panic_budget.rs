//! Rule family `panic-budget`: a per-crate ratchet on panicking sites.
//!
//! `xtask/lint_baseline.toml` commits the number of `unwrap` / `expect` /
//! `panic!` / `unreachable!` sites in each crate's non-test library code.
//! CI only lets the counts go *down*:
//!
//! - count > baseline → violation (a new panicking site snuck in; convert
//!   it to a `Result` or consciously raise the baseline in review);
//! - count < baseline → violation too (the baseline is stale; run
//!   `cargo xtask lint --update-baseline` so the win is locked in and
//!   cannot be silently spent by the next regression).
//!
//! This replaces the old `unwrap-budget` rule and its hand-maintained
//! `lint-budgets.toml`; the baseline is tool-written, never guessed.

use std::collections::BTreeMap;

use crate::index::WorkspaceIndex;
use crate::lexer::TokKind;
use crate::report::Violation;

/// Count panicking sites per crate over non-test library code.
pub fn count(idx: &WorkspaceIndex) -> BTreeMap<String, u32> {
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    for f in idx.lib_files() {
        let toks = f.rule_toks();
        let entry = counts.entry(f.crate_name.clone()).or_insert(0);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let nxt = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
            let prev_dot = i > 0 && toks[i - 1].text == ".";
            let hit = match t.text.as_str() {
                "unwrap" | "expect" => prev_dot && nxt(i + 1) == "(",
                "panic" | "unreachable" => nxt(i + 1) == "!",
                _ => false,
            };
            if hit {
                *entry += 1;
            }
        }
    }
    counts
}

/// Compare measured counts against the committed baseline.
pub fn check(counts: &BTreeMap<String, u32>, baseline: &BTreeMap<String, u32>) -> Vec<Violation> {
    let mut out = Vec::new();
    let crates: std::collections::BTreeSet<&String> =
        counts.keys().chain(baseline.keys()).collect();
    for krate in crates {
        let count = counts.get(krate).copied().unwrap_or(0);
        let base = baseline.get(krate).copied().unwrap_or(0);
        if count > base {
            out.push(Violation {
                file: format!("crates/{krate}"),
                line: 0,
                rule: "panic-budget",
                message: format!(
                    "{count} panicking sites (unwrap/expect/panic!/unreachable!) in non-test \
                     library code, baseline is {base}; return a Result instead, or raise the \
                     baseline in xtask/lint_baseline.toml with a justification"
                ),
            });
        } else if count < base {
            out.push(Violation {
                file: format!("crates/{krate}"),
                line: 0,
                rule: "panic-budget",
                message: format!(
                    "baseline {base} is stale ({count} measured): run \
                     `cargo xtask lint --update-baseline` to ratchet it down so the \
                     improvement cannot be silently spent later"
                ),
            });
        }
    }
    out
}

/// Render the baseline file for `--update-baseline`.
pub fn render_baseline(counts: &BTreeMap<String, u32>) -> String {
    let mut out = String::from(
        "# Per-crate panicking-site baseline (unwrap/expect/panic!/unreachable! in\n\
         # non-test library code), enforced by `cargo xtask lint` as a ratchet: CI\n\
         # fails if a count rises OR if it falls without this file being updated.\n\
         # Regenerate with `cargo xtask lint --update-baseline`; never edit upward\n\
         # without a review justification.\n",
    );
    for (krate, count) in counts {
        out.push_str(&format!("{krate} = {count}\n"));
    }
    out
}

/// Parse the minimal `name = count` baseline format (full TOML is not
/// needed and cannot be vendored offline).
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, u32>, String> {
    let mut baseline = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('[') {
            continue;
        }
        let (name, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint_baseline.toml line {}: expected `crate = N`", i + 1))?;
        let count: u32 = value
            .trim()
            .parse()
            .map_err(|_| format!("lint_baseline.toml line {}: bad count {value:?}", i + 1))?;
        baseline.insert(name.trim().trim_matches('"').to_string(), count);
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{FileKind, WorkspaceIndex};

    #[test]
    fn counts_cover_all_four_shapes_outside_tests() {
        let idx = WorkspaceIndex::from_sources(&[(
            "crates/diknn-x/src/lib.rs",
            "diknn-x",
            FileKind::Lib,
            "fn f() { a.unwrap(); b.expect(\"r\"); panic!(\"boom\"); unreachable!(); }\n\
             fn g() { c.unwrap_or(0); d.expect_err(\"r\"); }\n\
             #[cfg(test)]\nmod tests { fn t() { z.unwrap(); panic!(); } }\n",
        )]);
        assert_eq!(count(&idx).get("diknn-x"), Some(&4));
    }

    #[test]
    fn regression_and_stale_baseline_both_fail() {
        let counts = BTreeMap::from([("diknn-x".to_string(), 5u32)]);
        let over = check(&counts, &BTreeMap::from([("diknn-x".to_string(), 4u32)]));
        assert_eq!(over.len(), 1);
        assert!(over[0].message.contains("baseline is 4"));
        let stale = check(&counts, &BTreeMap::from([("diknn-x".to_string(), 7u32)]));
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale"));
        let exact = check(&counts, &BTreeMap::from([("diknn-x".to_string(), 5u32)]));
        assert!(exact.is_empty());
    }

    #[test]
    fn unknown_crates_on_either_side_are_caught() {
        let counts = BTreeMap::from([("diknn-new".to_string(), 1u32)]);
        let v = check(&counts, &BTreeMap::new());
        assert_eq!(v.len(), 1, "new crate with panics needs a baseline entry");
        let v = check(
            &BTreeMap::new(),
            &BTreeMap::from([("diknn-gone".to_string(), 2u32)]),
        );
        assert_eq!(v.len(), 1, "deleted crate leaves a stale entry");
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let counts = BTreeMap::from([
            ("diknn-core".to_string(), 4u32),
            ("diknn-sim".to_string(), 0u32),
        ]);
        let parsed = parse_baseline(&render_baseline(&counts)).unwrap();
        assert_eq!(parsed, counts);
        assert!(parse_baseline("diknn-sim = many").is_err());
    }
}
