//! Rule family `rng-custody`: RNG streams are minted only in sanctioned
//! modules.
//!
//! Determinism rests on there being a small, auditable set of RNG streams,
//! each derived from the run seed: the engine's event stream, the fault
//! injector's stream, and the workload/scenario seed plumbing. Any other
//! code constructing or re-seeding a generator creates an ambient stream
//! whose draw order silently couples unrelated subsystems — the
//! token-custody analogue of the paper's "one itinerary token per query".
//!
//! Two shapes are flagged outside the sanctioned files:
//! - construction/seeding calls: `seed_from_u64`, `from_seed`, `from_rng`,
//!   `from_os_rng` (any receiver — `SmallRng::`, `StdRng::`, UFCS);
//! - defining a `fn rng` accessor anywhere but the engine, so the one
//!   blessed accessor (`Ctx::rng`) cannot quietly gain siblings.
//!
//! Borrowing a stream is always fine: taking `&mut SmallRng` parameters or
//! calling the engine's `ctx.rng()` is how randomness is *supposed* to
//! flow. There is no exemption comment — sanctioning a new module is a
//! reviewed edit to the list below (see DESIGN.md §11).

use crate::index::SourceFile;
use crate::lexer::TokKind;
use crate::report::Violation;

/// Files allowed to construct or seed RNGs.
pub const SANCTIONED_RNG_FILES: &[&str] = &[
    "crates/diknn-sim/src/engine.rs",
    "crates/diknn-sim/src/faults.rs",
    "crates/diknn-workloads/src/workload.rs",
    "crates/diknn-workloads/src/scenario.rs",
];

/// The one file allowed to define an `fn rng` accessor.
pub const RNG_ACCESSOR_FILE: &str = "crates/diknn-sim/src/engine.rs";

const SEEDING_CALLS: &[&str] = &["seed_from_u64", "from_seed", "from_rng", "from_os_rng"];

pub fn scan(f: &SourceFile) -> Vec<Violation> {
    let sanctioned = SANCTIONED_RNG_FILES.contains(&f.rel.as_str());
    let toks = f.rule_toks();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if !sanctioned && SEEDING_CALLS.contains(&t.text.as_str()) {
            out.push(Violation {
                file: f.rel.clone(),
                line: t.line,
                rule: "rng-custody",
                message: format!(
                    "`{}` mints an RNG stream outside the sanctioned modules; take \
                     `&mut SmallRng` from the engine (`ctx.rng()`) or plumb a derived \
                     seed through the workload layer (sanctioned files are listed in \
                     xtask rng_custody.rs; extending the list is a reviewed change)",
                    t.text
                ),
            });
        }
        if f.rel != RNG_ACCESSOR_FILE
            && t.text == "fn"
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && n.text == "rng")
        {
            out.push(Violation {
                file: f.rel.clone(),
                line: t.line,
                rule: "rng-custody",
                message: format!(
                    "defines an `fn rng` accessor outside the engine; the only blessed \
                     stream accessor is `Ctx::rng` in {RNG_ACCESSOR_FILE} — pass \
                     `&mut SmallRng` down instead of wrapping a new source"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileKind;

    fn scan_src(rel: &str, src: &str) -> Vec<Violation> {
        scan(&SourceFile::parse(rel, "diknn-x", FileKind::Lib, src))
    }

    #[test]
    fn seeding_outside_sanctioned_files_is_flagged() {
        let src = "let mut r = SmallRng::seed_from_u64(7);\n";
        let v = scan_src("crates/diknn-routing/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rng-custody");
        for ok in SANCTIONED_RNG_FILES {
            assert!(scan_src(ok, src).is_empty(), "{ok} should be sanctioned");
        }
    }

    #[test]
    fn test_modules_may_seed_freely() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let r = SmallRng::seed_from_u64(1); }\n}\n";
        assert!(scan_src("crates/diknn-mobility/src/rwp.rs", src).is_empty());
    }

    #[test]
    fn borrowing_a_stream_is_fine() {
        let src = "fn jitter(rng: &mut SmallRng) -> u64 { draw(rng) }\nlet j = ctx.rng();\n";
        // `fn jitter(rng: …)` defines a *parameter* named rng, not `fn rng`.
        assert!(scan_src("crates/diknn-core/src/protocol.rs", src).is_empty());
    }

    #[test]
    fn rng_accessor_definitions_are_engine_only() {
        let src = "pub fn rng(&mut self) -> &mut SmallRng { &mut self.rng }\n";
        assert!(scan_src(RNG_ACCESSOR_FILE, src).is_empty());
        let v = scan_src("crates/diknn-workloads/src/runner.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
