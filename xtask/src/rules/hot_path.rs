//! Rule family `hot-path`: no allocation or cloning inside marked hot
//! regions.
//!
//! ROADMAP item 3 (hot-path overhaul) only stays won if the event loop,
//! MAC delivery, and `SpatialGrid` query paths stay allocation-free. Code
//! between `// lint: hot-path` and `// lint: end-hot-path` fences may not
//! use `Box::new`, `.clone()`, `vec!`, `.collect(` / `.collect::<`, or
//! `format!` — each of those is a per-event heap visit that belongs in
//! setup code or a reused scratch buffer.
//!
//! Unmatched fences are themselves violations (a region that silently
//! never closes would swallow the whole file; one that never opens checks
//! nothing). Escape hatch for a proven-cold branch inside a region:
//! `// lint: hot-path-ok` on the line or the line above.

use crate::index::SourceFile;
use crate::lexer::TokKind;
use crate::report::Violation;

pub fn scan(f: &SourceFile) -> Vec<Violation> {
    let (regions, errors) = f.hot_regions();
    let mut out: Vec<Violation> = errors
        .into_iter()
        .map(|(line, message)| Violation {
            file: f.rel.clone(),
            line,
            rule: "hot-path",
            message,
        })
        .collect();
    if regions.is_empty() {
        return out;
    }
    let toks = f.rule_toks();
    let n = toks.len();
    let in_region = |line: usize| regions.iter().any(|&(s, e)| s <= line && line <= e);
    for i in 0..n {
        let t = toks[i];
        if t.kind != TokKind::Ident || !in_region(t.line) {
            continue;
        }
        let nxt = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
        let prev_dot = i > 0 && toks[i - 1].text == ".";
        let found: Option<&str> = match t.text.as_str() {
            "Box" if nxt(i + 1) == "::" && nxt(i + 2) == "new" => Some("Box::new"),
            "clone" if prev_dot && nxt(i + 1) == "(" => Some(".clone()"),
            "collect" if prev_dot && matches!(nxt(i + 1), "(" | "::") => Some(".collect()"),
            "vec" if nxt(i + 1) == "!" => Some("vec!"),
            "format" if nxt(i + 1) == "!" => Some("format!"),
            _ => None,
        };
        if let Some(what) = found {
            if !f.exempt(t.line, "hot-path-ok") {
                out.push(Violation {
                    file: f.rel.clone(),
                    line: t.line,
                    rule: "hot-path",
                    message: format!(
                        "`{what}` inside a `// lint: hot-path` region: this path runs per \
                         event — hoist the allocation into a reused scratch buffer, or \
                         annotate a proven-cold branch with `// lint: hot-path-ok`"
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileKind;

    fn scan_src(src: &str) -> Vec<Violation> {
        scan(&SourceFile::parse(
            "crates/diknn-sim/src/engine.rs",
            "diknn-sim",
            FileKind::Lib,
            src,
        ))
    }

    #[test]
    fn allocations_inside_the_region_are_flagged() {
        let src = "\
// lint: hot-path (dispatch loop)
fn hot(&mut self) {
    let b = Box::new(ev);
    let c = self.buf.clone();
    let v = vec![1, 2];
    let s: Vec<u32> = it.collect();
    let m = format!(\"{q}\");
}
// lint: end-hot-path
";
        let v = scan_src(src);
        let kinds: Vec<_> = v
            .iter()
            .map(|v| v.message.split('`').nth(1).unwrap().to_string())
            .collect();
        assert_eq!(
            kinds,
            vec!["Box::new", ".clone()", "vec!", ".collect()", "format!"],
            "{v:?}"
        );
    }

    #[test]
    fn same_code_outside_the_region_is_fine() {
        let src = "fn cold() { let v = vec![1]; let c = x.clone(); }\n";
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn clone_without_call_is_a_path_not_a_call() {
        // `Clone` bounds and `#[derive(Clone)]`-ish tokens are not calls.
        let src = "// lint: hot-path\nfn hot<T: Clone>(x: T) { let c = Clone::clone(&x); }\n// lint: end-hot-path\n";
        // `Clone::clone(` is not `.clone()`: UFCS form is deliberate enough
        // to leave to review; the lint targets the habitual method call.
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn exemption_covers_proven_cold_branches() {
        let src = "\
// lint: hot-path
fn hot(&mut self) {
    if self.crashed {
        // lint: hot-path-ok (crash teardown, at most once per node)
        let msg = format!(\"node {id} down\");
        self.log(msg);
    }
}
// lint: end-hot-path
";
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn unmatched_fences_are_violations() {
        let v = scan_src("// lint: hot-path\nfn f() {}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("never closed"));
        let v = scan_src("fn f() {}\n// lint: end-hot-path\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("without a matching"));
    }

    #[test]
    fn collect_turbofish_is_flagged() {
        let src = "// lint: hot-path\nfn hot() { let v = it.collect::<Vec<_>>(); }\n// lint: end-hot-path\n";
        assert_eq!(scan_src(src).len(), 1);
    }
}
