//! Rule family `trace-conformance`: the flight-recorder event enums, their
//! emitters, and the replay checker must stay coupled.
//!
//! For every variant of each conformance enum (`ProtoEvent`, `TraceKind`):
//!
//! 1. ≥1 emit site in the emitter crates (`diknn-sim`, `diknn-core`) —
//!    a variant nobody constructs is a dead schema entry;
//! 2. ≥1 explicit match arm in the replayer
//!    (`diknn-workloads/src/invariants.rs`) — a variant the replayer never
//!    names can bypass the invariant checker silently;
//! 3. no catch-all `_` arm in any replayer `match` whose patterns name a
//!    conformance enum — a `_` arm is exactly the hole through which a new
//!    event would slip past rule 2 unnoticed.
//!
//! The check runs on the symbol index, so self-tests can feed synthetic
//! workspaces (including a real `invariants.rs` with an arm deleted, which
//! must fail loudly — the non-vacuity criterion).

use crate::index::WorkspaceIndex;
use crate::lexer::{Tok, TokKind};
use crate::report::Violation;

/// What couples where. The production wiring lives in `lint.rs`; tests
/// substitute fixture paths.
pub struct ConformanceConfig<'a> {
    /// Enum names whose variants are conformance-checked.
    pub enums: &'a [&'a str],
    /// File defining those enums (excluded from emit-site counting — the
    /// `Display` impl there pattern-matches every variant by necessity).
    pub def_file: &'a str,
    /// Crates whose library code counts as emit sites.
    pub emit_crates: &'a [&'a str],
    /// The replay checker whose match arms must cover every variant.
    pub replayer: &'a str,
}

pub fn check(idx: &WorkspaceIndex, cfg: &ConformanceConfig) -> Vec<Violation> {
    let mut out = Vec::new();

    let replayer = idx.file(cfg.replayer);
    if replayer.is_none() {
        out.push(Violation {
            file: cfg.replayer.to_string(),
            line: 0,
            rule: "trace-conformance",
            message: "replayer file not found in the workspace index".into(),
        });
    }
    let arm_patterns: Vec<Vec<Vec<String>>> = replayer
        .map(|f| {
            let toks = f.rule_toks();
            matches_in(&toks)
        })
        .unwrap_or_default();

    for &enum_name in cfg.enums {
        let Some(defs) = idx.enums.get(enum_name) else {
            out.push(Violation {
                file: cfg.def_file.to_string(),
                line: 0,
                rule: "trace-conformance",
                message: format!("conformance enum `{enum_name}` not found in the workspace"),
            });
            continue;
        };
        let Some(def) = defs.iter().find(|d| d.file == cfg.def_file) else {
            out.push(Violation {
                file: cfg.def_file.to_string(),
                line: 0,
                rule: "trace-conformance",
                message: format!("conformance enum `{enum_name}` is not defined in this file"),
            });
            continue;
        };

        // Catch-all arms in matches that name this enum.
        for arms in &arm_patterns {
            let names_enum = arms
                .iter()
                .any(|pat| pat.windows(2).any(|w| w[0] == enum_name && w[1] == "::"));
            if !names_enum {
                continue;
            }
            for pat in arms {
                if top_level_wildcard(pat) {
                    out.push(Violation {
                        file: cfg.replayer.to_string(),
                        line: 0,
                        rule: "trace-conformance",
                        message: format!(
                            "catch-all `_` arm in a `match` over `{enum_name}`: every \
                             variant must be named explicitly so a new event cannot \
                             bypass the replay checker"
                        ),
                    });
                }
            }
        }

        for (variant, vline) in &def.variants {
            // Emit sites: `Enum::Variant` token pairs in emitter crates.
            let emitted = idx
                .files
                .iter()
                .filter(|f| {
                    f.kind == crate::index::FileKind::Lib
                        && cfg.emit_crates.contains(&f.crate_name.as_str())
                        && f.rel != cfg.def_file
                })
                .any(|f| has_path(&f.rule_toks(), enum_name, variant));
            if !emitted {
                out.push(Violation {
                    file: cfg.def_file.to_string(),
                    line: *vline,
                    rule: "trace-conformance",
                    message: format!(
                        "`{enum_name}::{variant}` has no emit site in {:?}; either wire \
                         the event up or delete the variant",
                        cfg.emit_crates
                    ),
                });
            }
            // Replay coverage: some match arm names the variant.
            let replayed = arm_patterns.iter().flatten().any(|pat| {
                pat.windows(3)
                    .any(|w| w[0] == enum_name && w[1] == "::" && w[2] == *variant)
            });
            if !replayed {
                out.push(Violation {
                    file: cfg.replayer.to_string(),
                    line: 0,
                    rule: "trace-conformance",
                    message: format!(
                        "`{enum_name}::{variant}` (defined at {}:{vline}) has no explicit \
                         match arm in the replayer; add one (an empty arm documents \
                         'intentionally not checked')",
                        cfg.def_file
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out
}

fn has_path(toks: &[&Tok], enum_name: &str, variant: &str) -> bool {
    toks.windows(3).any(|w| {
        w[0].kind == TokKind::Ident
            && w[0].text == enum_name
            && w[1].text == "::"
            && w[2].text == variant
    })
}

/// Every `match` in the stream, as a list of arms, each arm a list of
/// pattern-token texts (the tokens before its `=>`, guard included).
fn matches_in(toks: &[&Tok]) -> Vec<Vec<Vec<String>>> {
    let n = toks.len();
    let mut out = Vec::new();
    for i in 0..n {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "match") {
            continue;
        }
        // Body brace: first `{` at zero paren/bracket depth after the
        // scrutinee (struct literals are not legal in scrutinee position).
        let mut depth = 0i32;
        let mut j = i + 1;
        let body = loop {
            if j >= n {
                break None;
            }
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break Some(j),
                ";" if depth == 0 => break None, // `match` used as an ident
                _ => {}
            }
            j += 1;
        };
        let Some(body) = body else { continue };
        out.push(parse_arms(toks, body, n));
    }
    out
}

/// Parse the arms of the match whose body `{` is at `open`.
fn parse_arms(toks: &[&Tok], open: usize, n: usize) -> Vec<Vec<String>> {
    let mut arms = Vec::new();
    let mut j = open + 1;
    let mut depth = 1i32; // brace depth of the match body
    while j < n && depth > 0 {
        // Collect pattern tokens until `=>` at this match's arm level.
        let mut pat = Vec::new();
        let mut pdepth = 0i32;
        while j < n {
            let t = toks[j].text.as_str();
            match t {
                "(" | "[" | "{" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                "}" if pdepth == 0 => {
                    // End of the match body before another arm.
                    return arms;
                }
                "}" => pdepth -= 1,
                "=>" if pdepth == 0 => break,
                _ => {}
            }
            if t != "=>" {
                pat.push(toks[j].text.clone());
            }
            j += 1;
        }
        if j >= n {
            return arms;
        }
        arms.push(pat);
        j += 1; // past `=>`
                // Skip the arm body: a block runs to its matching brace; an
                // expression runs to a `,` at arm level or the body's `}`.
        if j < n && toks[j].text == "{" {
            let mut bd = 0i32;
            while j < n {
                match toks[j].text.as_str() {
                    "{" => bd += 1,
                    "}" => {
                        bd -= 1;
                        if bd == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < n && toks[j].text == "," {
                j += 1;
            }
        } else {
            let mut ed = 0i32;
            while j < n {
                match toks[j].text.as_str() {
                    "(" | "[" | "{" => ed += 1,
                    ")" | "]" => ed -= 1,
                    "}" if ed == 0 => break, // body `}` — outer loop sees it
                    "}" => ed -= 1,
                    "," if ed == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if j < n && toks[j].text == "}" {
            depth -= 1;
            j += 1;
        }
    }
    arms
}

/// Does the pattern have a bare `_` top-level alternative (before any
/// guard)? `Some(_)` and `Kind::X { y: _, .. }` do not count; `_` and
/// `_ | Kind::X` and `_ if cond` do.
fn top_level_wildcard(pat: &[String]) -> bool {
    let mut depth = 0i32;
    let mut alt: Vec<&str> = Vec::new();
    let mut alts: Vec<Vec<&str>> = Vec::new();
    for t in pat {
        match t.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => {
                alts.push(std::mem::take(&mut alt));
                continue;
            }
            "if" if depth == 0 => break, // guard: alternatives end here
            _ => {}
        }
        alt.push(t);
    }
    alts.push(alt);
    alts.iter().any(|a| a.len() == 1 && a[0] == "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{FileKind, WorkspaceIndex};

    const DEF: &str = "pub enum Ev { A, B(u32), C { x: u64 } }\n";

    fn cfg() -> ConformanceConfig<'static> {
        ConformanceConfig {
            enums: &["Ev"],
            def_file: "crates/diknn-sim/src/trace.rs",
            emit_crates: &["diknn-sim", "diknn-core"],
            replayer: "crates/diknn-workloads/src/invariants.rs",
        }
    }

    fn idx(emit: &str, replay: &str) -> WorkspaceIndex {
        WorkspaceIndex::from_sources(&[
            (
                "crates/diknn-sim/src/trace.rs",
                "diknn-sim",
                FileKind::Lib,
                DEF,
            ),
            (
                "crates/diknn-sim/src/engine.rs",
                "diknn-sim",
                FileKind::Lib,
                emit,
            ),
            (
                "crates/diknn-workloads/src/invariants.rs",
                "diknn-workloads",
                FileKind::Lib,
                replay,
            ),
        ])
    }

    const EMIT_ALL: &str = "fn e() { r(Ev::A); r(Ev::B(1)); r(Ev::C { x: 2 }); }\n";
    const REPLAY_ALL: &str = "fn c(e: &Ev) {\n    match e {\n        Ev::A => {}\n        Ev::B(n) => { use_it(n); }\n        Ev::C { x } | Ev::A => {}\n    }\n}\n";

    #[test]
    fn fully_coupled_workspace_is_clean() {
        let v = check(&idx(EMIT_ALL, REPLAY_ALL), &cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_emit_site_is_flagged() {
        let v = check(
            &idx("fn e() { r(Ev::A); r(Ev::B(1)); }\n", REPLAY_ALL),
            &cfg(),
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Ev::C"), "{}", v[0].message);
        assert!(v[0].message.contains("no emit site"));
    }

    #[test]
    fn missing_match_arm_is_flagged() {
        let replay = "fn c(e: &Ev) {\n    match e {\n        Ev::A => {}\n        Ev::B(n) => { use_it(n); }\n    }\n}\n";
        let v = check(&idx(EMIT_ALL, replay), &cfg());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Ev::C"));
        assert!(v[0].message.contains("no explicit match arm"));
    }

    #[test]
    fn catch_all_arm_is_flagged() {
        let replay =
            "fn c(e: &Ev) {\n    match e {\n        Ev::A => {}\n        _ => {}\n    }\n}\n";
        let v = check(&idx(EMIT_ALL, replay), &cfg());
        // `_` itself, plus B and C lacking explicit arms.
        assert!(v.iter().any(|v| v.message.contains("catch-all")), "{v:?}");
    }

    #[test]
    fn nested_wildcards_inside_patterns_are_fine() {
        let replay = "fn c(e: &Ev) {\n    match e {\n        Ev::A => {}\n        Ev::B(_) => {}\n        Ev::C { x: _ } => {}\n    }\n}\n";
        let v = check(&idx(EMIT_ALL, replay), &cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wildcards_in_unrelated_matches_are_ignored() {
        let replay = "fn c(e: &Ev, n: u32) {\n    match n { 0 => a(), _ => b() }\n    match e {\n        Ev::A | Ev::B(_) | Ev::C { .. } => {}\n    }\n}\n";
        let v = check(&idx(EMIT_ALL, replay), &cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn guards_do_not_hide_wildcards() {
        let replay = "fn c(e: &Ev) {\n    match e {\n        Ev::A => {}\n        _ if always() => {}\n        Ev::B(_) => {}\n        Ev::C { .. } => {}\n    }\n}\n";
        let v = check(&idx(EMIT_ALL, replay), &cfg());
        assert!(v.iter().any(|v| v.message.contains("catch-all")), "{v:?}");
    }
}
