//! The lint rule families. Each module exposes a scan over the token
//! streams/symbol tables built by [`crate::index`]; the orchestrator in
//! [`crate::lint`] wires them together and aggregates violations.

pub mod conformance;
pub mod determinism;
pub mod float_order;
pub mod hot_path;
pub mod panic_budget;
pub mod rng_custody;
