//! Rule family `float-order`: float comparators must use a total order.
//!
//! `partial_cmp(..).unwrap()`/`.expect(..)` inside a sort/search/extremum
//! comparator panics on NaN and, worse, documents an ordering that is not
//! total — the exact bug class `f64::total_cmp` exists to close. The rule
//! flags, inside the argument span of `sort_by` / `sort_unstable_by` /
//! `binary_search_by` / `max_by` / `min_by` (and their `select_nth` kin),
//! any `partial_cmp` combined with `unwrap` or `expect`.
//!
//! The `*_by_key` variants are also covered: a key expression containing a
//! float literal or an `f32`/`f64` cast has no total order either — use
//! the `*_by` form with `total_cmp`.
//!
//! Exemption: `// lint: float-order-ok` on the call line (or above it),
//! for comparators proven NaN-free by construction where `partial_cmp`
//! feeds something other than the ordering itself.

use crate::index::SourceFile;
use crate::lexer::{Tok, TokKind};
use crate::report::Violation;

const COMPARATOR_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
    "select_nth_unstable_by",
];

const KEY_METHODS: &[&str] = &[
    "sort_by_key",
    "sort_unstable_by_key",
    "binary_search_by_key",
    "max_by_key",
    "min_by_key",
    "select_nth_unstable_by_key",
];

pub fn scan(f: &SourceFile) -> Vec<Violation> {
    let toks = f.rule_toks();
    let n = toks.len();
    let mut out = Vec::new();
    for i in 0..n {
        let t = toks[i];
        if t.kind != TokKind::Ident
            || i == 0
            || toks[i - 1].text != "."
            || i + 1 >= n
            || toks[i + 1].text != "("
        {
            continue;
        }
        let comparator = COMPARATOR_METHODS.contains(&t.text.as_str());
        let key = KEY_METHODS.contains(&t.text.as_str());
        if !comparator && !key {
            continue;
        }
        if f.exempt(t.line, "float-order-ok") {
            continue;
        }
        let span = &toks[i + 1..close_paren(&toks, i + 1)];
        let has = |text: &str| {
            span.iter()
                .any(|s| s.kind == TokKind::Ident && s.text == text)
        };
        if comparator && has("partial_cmp") && (has("unwrap") || has("expect")) {
            out.push(Violation {
                file: f.rel.clone(),
                line: t.line,
                rule: "float-order",
                message: format!(
                    "`partial_cmp` + `unwrap`/`expect` inside `{}` is a partial order \
                     propped up by a panic; use `f64::total_cmp` (identical ordering for \
                     finite floats, total over NaN/±0.0)",
                    t.text
                ),
            });
        }
        let float_key = span.iter().any(|s| {
            s.kind == TokKind::Float
                || (s.kind == TokKind::Ident && matches!(s.text.as_str(), "f32" | "f64"))
        });
        if key && float_key {
            out.push(Violation {
                file: f.rel.clone(),
                line: t.line,
                rule: "float-order",
                message: format!(
                    "float-valued key in `{}`: floats are not `Ord`; use the `*_by` form \
                     with `f64::total_cmp` on the key",
                    t.text
                ),
            });
        }
    }
    out
}

/// Index one past the `)` matching the `(` at `open`. Parens balance
/// through nested brackets/braces in valid code, so paren depth suffices.
fn close_paren(toks: &[&Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileKind;

    fn scan_src(src: &str) -> Vec<Violation> {
        scan(&SourceFile::parse(
            "crates/diknn-routing/src/lib.rs",
            "diknn-routing",
            FileKind::Lib,
            src,
        ))
    }

    #[test]
    fn partial_cmp_expect_in_sort_by_is_flagged() {
        let src = "xs.sort_by(|a, b| a.d.partial_cmp(&b.d).expect(\"finite\"));\n";
        let v = scan_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "float-order");
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "xs.sort_by(|a, b| a.d.total_cmp(&b.d));\n\
                   let best = it.min_by(|a, b| a.1.total_cmp(&b.1));\n";
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn unwrap_or_fallback_is_clean() {
        // A NaN-tolerant fallback is not the panic pattern.
        let src = "xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n";
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn partial_cmp_outside_a_comparator_is_not_this_rules_business() {
        let src = "let o = a.partial_cmp(&b).expect(\"finite\");\n";
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn float_keys_in_sort_by_key_are_flagged() {
        let v = scan_src("xs.sort_by_key(|p| (p.cost * 1000.0) as u64);\n");
        assert_eq!(v.len(), 1, "{v:?}");
        let v = scan_src("xs.max_by_key(|p| p.w as f64);\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(scan_src("xs.sort_by_key(|p| p.id);\n").is_empty());
    }

    #[test]
    fn exemption_comment_is_honoured() {
        let src = "// lint: float-order-ok (inputs clamped finite upstream)\n\
                   xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert!(scan_src(src).is_empty());
    }

    #[test]
    fn span_is_scoped_to_the_call() {
        // The expect after the sort call must not leak into its span.
        let src =
            "xs.sort_by(|a, b| a.0.total_cmp(&b.0));\nlookup().expect(\"x\").partial_cmp(&y);\n";
        assert!(scan_src(src).is_empty());
    }
}
