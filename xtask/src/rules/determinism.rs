//! The original determinism rules, ported from the line scanner to the
//! token stream (see DESIGN.md "Determinism & static analysis"):
//!
//! - `hash-container` — no `HashMap`/`HashSet` in non-test library code of
//!   the simulation-state crates: hash iteration order is randomized per
//!   process and silently breaks same-seed reproducibility. Exemption:
//!   `// lint: order-independent` (prove the container is never iterated).
//! - `wall-clock` — no `Instant::now`/`SystemTime` in library code:
//!   simulated time must come from the event clock. Exemption:
//!   `// lint: wall-clock-ok`. A bare `Instant` identifier (imports, type
//!   positions) is allowed; only the `::now` call and any `SystemTime`
//!   use are flagged.
//! - `ambient-randomness` — no `thread_rng`/`from_entropy`/`rand::random`:
//!   all randomness flows from explicitly seeded generators. No exemption.
//! - `float-eq` — no bare `==`/`!=` against a float literal in protocol
//!   decision crates. Exemption: `// lint: float-eq-ok`.
//! - `raw-thread` — no `thread::{spawn,scope,Builder}` outside the
//!   sanctioned deterministic executor. No exemption.

use crate::index::SourceFile;
use crate::lexer::TokKind;
use crate::report::Violation;

/// Crates whose library code may not use hash containers.
pub const ORDERED_STATE_CRATES: &[&str] = &[
    "diknn-sim",
    "diknn-core",
    "diknn-routing",
    "diknn-baselines",
];

/// Crates whose library code may not compare floats with `==`/`!=`.
pub const FLOAT_EQ_CRATES: &[&str] = &["diknn-core", "diknn-routing"];

/// The one module allowed to touch `std::thread`: the deterministic
/// executor everything else must go through.
pub const SANCTIONED_THREAD_MODULE: &str = "crates/diknn-workloads/src/parallel.rs";

pub fn scan(f: &SourceFile) -> Vec<Violation> {
    let toks = f.rule_toks();
    let n = toks.len();
    let ordered_scope = ORDERED_STATE_CRATES.contains(&f.crate_name.as_str());
    let float_scope = FLOAT_EQ_CRATES.contains(&f.crate_name.as_str());
    let mut out = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: f.rel.clone(),
            line,
            rule,
            message,
        })
    };

    for i in 0..n {
        let t = toks[i];
        let is = |j: usize, text: &str| j < n && toks[j].text == text;

        // hash-container
        if ordered_scope
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !f.exempt(t.line, "order-independent")
        {
            push(
                t.line,
                "hash-container",
                format!(
                    "`{}` iteration order is randomized per process; use BTreeMap/BTreeSet, \
                     or prove the container is never iterated and annotate \
                     `// lint: order-independent`",
                    t.text
                ),
            );
        }

        // wall-clock
        if t.kind == TokKind::Ident {
            let instant_now = t.text == "Instant" && is(i + 1, "::") && is(i + 2, "now");
            if (instant_now || t.text == "SystemTime") && !f.exempt(t.line, "wall-clock-ok") {
                push(
                    t.line,
                    "wall-clock",
                    "wall-clock time breaks same-seed reproducibility; use the simulated \
                     clock (`Ctx::now`) or annotate `// lint: wall-clock-ok`"
                        .into(),
                );
            }
        }

        // ambient-randomness (no exemption)
        if t.kind == TokKind::Ident {
            let ambient = matches!(t.text.as_str(), "thread_rng" | "from_entropy")
                || (t.text == "rand" && is(i + 1, "::") && is(i + 2, "random"));
            if ambient {
                push(
                    t.line,
                    "ambient-randomness",
                    format!(
                        "`{}` draws from process entropy; all randomness must flow from an \
                         explicitly seeded generator (no exemption)",
                        t.text
                    ),
                );
            }
        }

        // float-eq
        if float_scope
            && t.kind == TokKind::Punct
            && (t.text == "==" || t.text == "!=")
            && !f.exempt(t.line, "float-eq-ok")
        {
            let float_operand = (i > 0 && toks[i - 1].kind == TokKind::Float)
                || (i + 1 < n && toks[i + 1].kind == TokKind::Float);
            if float_operand {
                push(
                    t.line,
                    "float-eq",
                    "bare float `==`/`!=` in protocol decision code; compare against an \
                     epsilon or annotate `// lint: float-eq-ok`"
                        .into(),
                );
            }
        }

        // raw-thread (no exemption)
        if f.rel != SANCTIONED_THREAD_MODULE
            && t.kind == TokKind::Ident
            && t.text == "thread"
            && is(i + 1, "::")
            && i + 2 < n
            && matches!(toks[i + 2].text.as_str(), "spawn" | "scope" | "Builder")
        {
            push(
                t.line,
                "raw-thread",
                format!(
                    "`thread::{}` outside the sanctioned executor; route all parallelism \
                     through `diknn_workloads::ParallelSweep` ({SANCTIONED_THREAD_MODULE}), \
                     whose index-ordered collection keeps results bit-identical to \
                     sequential (no exemption)",
                    toks[i + 2].text
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileKind;

    fn scan_src(rel: &str, crate_name: &str, src: &str) -> Vec<Violation> {
        scan(&SourceFile::parse(rel, crate_name, FileKind::Lib, src))
    }

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hash_containers_flagged_in_sim_scope_only() {
        let src = "use std::collections::HashMap;\n";
        let v = scan_src("crates/diknn-sim/src/engine.rs", "diknn-sim", src);
        assert_eq!(rules(&v), vec!["hash-container"]);
        let v = scan_src("crates/diknn-geom/src/lib.rs", "diknn-geom", src);
        assert!(v.is_empty());
    }

    #[test]
    fn comments_and_strings_never_flag() {
        let src = "// a HashMap would be wrong\nlet s = \"HashMap Instant::now\"; // SystemTime\n";
        let v = scan_src("crates/diknn-sim/src/a.rs", "diknn-sim", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn instant_import_is_fine_but_now_is_not() {
        let ok = "use std::time::Instant;\n";
        assert!(scan_src("crates/diknn-bench/src/a.rs", "diknn-bench", ok).is_empty());
        let bad = "let t = Instant::now();\n";
        let v = scan_src("crates/diknn-bench/src/a.rs", "diknn-bench", bad);
        assert_eq!(rules(&v), vec!["wall-clock"]);
        let exempt = "let t = Instant::now(); // lint: wall-clock-ok\n";
        assert!(scan_src("crates/diknn-bench/src/a.rs", "diknn-bench", exempt).is_empty());
    }

    #[test]
    fn ambient_randomness_has_no_exemption() {
        let src = "let x = thread_rng(); // lint: wall-clock-ok, order-independent\n";
        let v = scan_src("crates/diknn-core/src/a.rs", "diknn-core", src);
        assert_eq!(rules(&v), vec!["ambient-randomness"]);
    }

    #[test]
    fn float_eq_in_protocol_scope() {
        let v = scan_src(
            "crates/diknn-core/src/p.rs",
            "diknn-core",
            "if d == 0.0 { x(); }\n",
        );
        assert_eq!(rules(&v), vec!["float-eq"]);
        for ok in [
            "if n == 0 { x(); }\n",
            "if x <= 1.0 { x(); }\n",
            "if d == 0.0 { x(); } // lint: float-eq-ok\n",
        ] {
            assert!(
                scan_src("crates/diknn-core/src/p.rs", "diknn-core", ok).is_empty(),
                "falsely flagged {ok:?}"
            );
        }
        assert!(scan_src("crates/diknn-geom/src/p.rs", "diknn-geom", "d == 0.0;\n").is_empty());
    }

    #[test]
    fn raw_thread_outside_executor() {
        let src = "std::thread::spawn(|| {});\nthread::scope(|s| {});\nthread::sleep(d);\n";
        let v = scan_src("crates/diknn-bench/src/a.rs", "diknn-bench", src);
        assert_eq!(rules(&v), vec!["raw-thread", "raw-thread"]);
        assert!(scan_src(SANCTIONED_THREAD_MODULE, "diknn-workloads", src).is_empty());
    }
}
