//! Violation types and the machine-readable lint report.
//!
//! Every lint run emits `results/LINT_REPORT.json` next to the human
//! output so CI can archive findings and other tooling can consume them.
//! `serde` cannot be vendored in this offline environment, so the module
//! carries a hand-written JSON emitter plus a small recursive-descent
//! parser — just enough to prove the report round-trips (emit → parse →
//! same violations), which is what the self-test asserts.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of the report format, bumped on breaking changes.
pub const REPORT_SCHEMA: &str = "diknn-lint-report/v1";

/// One finding of the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line, or 0 for whole-file/whole-crate findings.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// A `pub` item with zero references outside its defining crate
/// (informational; surfaced by `cargo xtask lint --dead-exports`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadExport {
    pub crate_name: String,
    pub file: String,
    pub line: usize,
    /// Item kind: `fn`, `struct`, `enum`, `trait`, `type`, `const`,
    /// `static`, `mod`, `union`.
    pub kind: &'static str,
    pub name: String,
    /// Whether the item is referenced elsewhere inside its own crate
    /// (candidate for `pub(crate)`) or nowhere at all (candidate for
    /// removal).
    pub intra_crate_refs: bool,
}

/// Full result of a workspace pass.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Non-test `unwrap`/`expect`/`panic!`/`unreachable!` sites per crate.
    pub panic_counts: BTreeMap<String, u32>,
    /// Committed per-crate ceilings from `xtask/lint_baseline.toml`.
    pub baseline: BTreeMap<String, u32>,
    pub files_scanned: usize,
    pub dead_exports: Vec<DeadExport>,
}

impl LintReport {
    /// Serialize the report; stable field order, two-space indent.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", esc(REPORT_SCHEMA)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                esc(v.rule),
                esc(&v.file),
                v.line,
                esc(&v.message)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"panic_counts\": ");
        push_count_map(&mut out, &self.panic_counts);
        out.push_str(",\n  \"panic_baseline\": ");
        push_count_map(&mut out, &self.baseline);
        out.push_str(",\n  \"dead_exports\": [");
        for (i, d) in self.dead_exports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"crate\": {}, \"file\": {}, \"line\": {}, \"kind\": {}, \
                 \"name\": {}, \"intra_crate_refs\": {}}}",
                esc(&d.crate_name),
                esc(&d.file),
                d.line,
                esc(d.kind),
                esc(&d.name),
                d.intra_crate_refs
            ));
        }
        out.push_str(if self.dead_exports.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

fn push_count_map(out: &mut String, map: &BTreeMap<String, u32>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}: {}", esc(k), v));
    }
    out.push('}');
}

/// JSON string literal with escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value, for parsing reports back.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document (strict enough for reports this tool wrote).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Extract `(rule, file, line, message)` tuples from a serialized report;
/// the round-trip self-test compares these against the original pass.
pub fn violations_from_json(src: &str) -> Result<Vec<(String, String, usize, String)>, String> {
    let doc = parse_json(src)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("report has no schema field")?;
    if schema != REPORT_SCHEMA {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let arr = doc
        .get("violations")
        .and_then(Json::as_arr)
        .ok_or("report has no violations array")?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("violation missing {k}"))
        };
        out.push((
            field("rule")?,
            field("file")?,
            v.get("line")
                .and_then(Json::as_usize)
                .ok_or("violation missing line")?,
            field("message")?,
        ));
    }
    Ok(out)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.src.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.src.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.src.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at offset {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.src.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.src[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.src.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips() {
        let report = LintReport {
            violations: vec![
                Violation {
                    file: "crates/diknn-core/src/protocol.rs".into(),
                    line: 7,
                    rule: "float-order",
                    message: "message with \"quotes\" and \\ backslash".into(),
                },
                Violation {
                    file: "crates/diknn-sim".into(),
                    line: 0,
                    rule: "panic-budget",
                    message: "whole-crate finding".into(),
                },
            ],
            panic_counts: BTreeMap::from([("diknn-core".to_string(), 4)]),
            baseline: BTreeMap::from([("diknn-core".to_string(), 4)]),
            files_scanned: 12,
            dead_exports: vec![DeadExport {
                crate_name: "diknn-geom".into(),
                file: "crates/diknn-geom/src/lib.rs".into(),
                line: 3,
                kind: "fn",
                name: "unused_helper".into(),
                intra_crate_refs: true,
            }],
        };
        let json = report.to_json();
        let parsed = violations_from_json(&json).expect("parse back");
        let original: Vec<_> = report
            .violations
            .iter()
            .map(|v| {
                (
                    v.rule.to_string(),
                    v.file.clone(),
                    v.line,
                    v.message.clone(),
                )
            })
            .collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = LintReport::default();
        let parsed = violations_from_json(&report.to_json()).expect("parse back");
        assert!(parsed.is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"open\": ").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(violations_from_json("{\"schema\": \"other/v9\", \"violations\": []}").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let doc = parse_json(r#"{"a": [1, {"b": "x\nyA"}], "c": true}"#).unwrap();
        let b = doc.get("a").unwrap().as_arr().unwrap()[1]
            .get("b")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(b, "x\nyA");
    }
}
