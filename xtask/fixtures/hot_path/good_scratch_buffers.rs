// Lint fixture: the negative twin of bad_alloc_in_region.rs — a fenced
// region that only reuses scratch buffers, plus one exempted cold branch.
// Scanned as crates/diknn-sim/src code; never compiled. Must produce zero
// violations.

pub struct Loop {
    scratch: Vec<u32>,
    crashed: bool,
    log: Vec<String>,
}

impl Loop {
    // lint: hot-path (fixture dispatch loop, allocation-free)
    pub fn dispatch(&mut self, ids: &[u32]) -> usize {
        self.scratch.clear();
        for &id in ids {
            self.scratch.push(id);
        }
        if self.crashed {
            // lint: hot-path-ok (crash teardown runs at most once per node)
            self.log.push(format!("teardown after {} ids", ids.len()));
        }
        self.scratch.len()
    }
    // lint: end-hot-path

    pub fn setup(ids: &[u32]) -> Vec<u32> {
        ids.to_vec()
    }
}
