// Lint fixture: per-event allocations inside a fenced hot region. (The
// fence spelling is avoided in this comment — the scanner reads it even
// in prose.) Scanned as crates/diknn-sim/src code; never compiled.
// Expected: 5 hot-path violations (one per forbidden shape).

pub struct Loop {
    scratch: Vec<u32>,
}

impl Loop {
    // lint: hot-path (fixture dispatch loop)
    pub fn dispatch(&mut self, ids: &[u32]) -> String {
        let boxed = Box::new(ids.len()); // violation: Box::new
        let copy = self.scratch.clone(); // violation: .clone()
        let pair = vec![copy.len(), *boxed]; // violation: vec!
        let gathered: Vec<u32> = ids.iter().copied().collect(); // violation: .collect()
        format!("{pair:?} {gathered:?}") // violation: format!
    }
    // lint: end-hot-path

    pub fn setup(ids: &[u32]) -> Vec<u32> {
        // Outside the fence: the same shapes are fine in setup code.
        ids.iter().copied().collect()
    }
}
