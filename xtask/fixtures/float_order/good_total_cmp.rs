// Lint fixture: the negative twin of bad_partial_cmp.rs — total_cmp in the
// comparators, an integer key, a NaN-tolerant fallback, and one justified
// exemption. Scanned as crates/diknn-core/src code; never compiled. Must
// produce zero violations.

pub fn rank(mut dists: Vec<f64>, q: f64) -> Vec<f64> {
    dists.sort_by(|a, b| a.total_cmp(b));
    let _nearest = dists.iter().min_by(|a, b| a.total_cmp(b));
    let _slot = dists.binary_search_by(|c| c.total_cmp(&q));
    dists
}

pub fn rank_by_key(mut pairs: Vec<(u32, u64)>) -> Vec<(u32, u64)> {
    pairs.sort_by_key(|p| p.1);
    pairs
}

pub fn rank_tolerant(mut dists: Vec<f64>) -> Vec<f64> {
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // lint: float-order-ok (inputs clamped finite by the caller)
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    dists
}
