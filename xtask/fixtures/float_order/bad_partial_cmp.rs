// Lint fixture: partial-order float comparators — `partial_cmp` +
// `unwrap`/`expect` inside sort/min/max/search closures, and a float-keyed
// `sort_by_key`. Scanned as crates/diknn-core/src code; never compiled.
// Expected: 4 float-order violations (lines tagged below).

pub fn rank(mut dists: Vec<f64>, q: f64) -> Vec<f64> {
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap()); // violation: sort_by
    let _nearest = dists
        .iter()
        .min_by(|a, b| a.partial_cmp(b).expect("finite")); // violation: min_by
    let _slot = dists.binary_search_by(|c| c.partial_cmp(&q).expect("finite")); // violation
    dists
}

pub fn rank_by_key(mut pairs: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    pairs.sort_by_key(|p| (p.1 * 1000.0) as i64); // violation: float expression key
    pairs
}
