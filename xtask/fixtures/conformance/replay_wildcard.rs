// Lint fixture: a replayer hiding variants behind a catch-all `_` arm —
// the exact hole the trace-conformance rule exists to close. Mounted as
// crates/diknn-workloads/src/invariants.rs in conformance self-tests;
// never compiled.
// Expected: one catch-all violation plus uncovered-variant violations for
// Pong and Lost.

pub fn replay(events: &[ProbeEvent]) -> u64 {
    let mut pings = 0u64;
    for ev in events {
        match ev {
            ProbeEvent::Ping => pings += 1,
            _ => {} // violation: a new event slips past the checker here
        }
    }
    pings
}
