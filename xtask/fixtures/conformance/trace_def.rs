// Lint fixture: a miniature flight-recorder schema for the
// trace-conformance family. Self-tests mount this as the defining file
// (crates/diknn-sim/src/trace.rs) alongside one emitter and one replayer
// fixture; never compiled.

/// Events the fixture recorder can log.
pub enum ProbeEvent {
    Ping,
    Pong { rtt_us: u64 },
    Lost(u32),
}
