// Lint fixture: a replayer naming every ProbeEvent variant explicitly —
// the clean shape. Mounted as crates/diknn-workloads/src/invariants.rs in
// conformance self-tests; never compiled.

pub fn replay(events: &[ProbeEvent]) -> u64 {
    let mut outstanding = 0u64;
    for ev in events {
        match ev {
            ProbeEvent::Ping => outstanding += 1,
            ProbeEvent::Pong { rtt_us } => {
                assert!(*rtt_us > 0, "zero rtt");
                outstanding -= 1;
            }
            ProbeEvent::Lost(n) => outstanding -= u64::from(*n),
        }
    }
    outstanding
}
