// Lint fixture: an emitter constructing every ProbeEvent variant. Mounted
// as crates/diknn-sim/src/engine.rs in conformance self-tests; never
// compiled.

pub fn probe(trace: &mut Vec<ProbeEvent>, rtt_us: u64, dropped: u32) {
    trace.push(ProbeEvent::Ping);
    trace.push(ProbeEvent::Pong { rtt_us });
    if dropped > 0 {
        trace.push(ProbeEvent::Lost(dropped));
    }
}
