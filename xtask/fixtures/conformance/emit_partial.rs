// Lint fixture: an emitter that never constructs ProbeEvent::Lost — a
// dead schema entry the trace-conformance rule must flag. Mounted as
// crates/diknn-sim/src/engine.rs in conformance self-tests; never
// compiled.

pub fn probe(trace: &mut Vec<ProbeEvent>, rtt_us: u64) {
    trace.push(ProbeEvent::Ping);
    trace.push(ProbeEvent::Pong { rtt_us });
}
