// Lint fixture: the negative twin of bad_ambient_stream.rs — randomness
// flows by borrow (`&mut SmallRng` parameters, `ctx.rng()` calls) and test
// modules may seed freely. Scanned as crates/diknn-routing/src code; never
// compiled. Must produce zero violations.
use rand::rngs::SmallRng;
use rand::Rng;

pub fn jittered_backoff(rng: &mut SmallRng, window: u64) -> u64 {
    rng.gen_range(0..=window)
}

pub fn pick<T: Copy>(rng: &mut SmallRng, xs: &[T]) -> Option<T> {
    if xs.is_empty() {
        None
    } else {
        Some(xs[rng.gen_range(0..xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn seeded_in_tests_is_allowed() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(jittered_backoff(&mut rng, 10) <= 10);
    }
}
