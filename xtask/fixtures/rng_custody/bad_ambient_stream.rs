// Lint fixture: RNG custody breaches — minting a stream and defining an
// `fn rng` accessor outside the sanctioned modules. Scanned as
// crates/diknn-routing/src code; never compiled.
// Expected: 3 rng-custody violations.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub struct Detour {
    rng: SmallRng,
}

impl Detour {
    pub fn new(seed: u64) -> Self {
        Detour {
            rng: SmallRng::seed_from_u64(seed), // violation: seeding call
        }
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        // violation above: `fn rng` accessor outside the engine
        &mut self.rng
    }
}

pub fn reseed(detour: &mut Detour, entropy: [u8; 32]) {
    detour.rng = SmallRng::from_seed(entropy); // violation: seeding call
}
