// Lint fixture: the negative twin of the determinism fixtures — ordered
// containers, exempted wall-clock import, seeded RNG passed by borrow, and
// epsilon float comparison. Scanned as crates/diknn-sim/src code; never
// compiled. Must produce zero violations.
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant; // lint: wall-clock-ok (type only; reads are banned)

pub struct GoodEngine {
    pending: BTreeMap<u64, u32>,
    cancelled: BTreeSet<u64>,
}

impl GoodEngine {
    pub fn tick(&mut self, rng: &mut rand::rngs::SmallRng) {
        let _jitter: f64 = rand::Rng::gen_range(rng, 0.0..1.0);
        for (_id, _tx) in &self.pending {
            // BTreeMap iteration order is deterministic.
        }
        self.cancelled.clear();
    }
}

pub fn close_enough(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
