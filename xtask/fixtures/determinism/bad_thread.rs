// Lint fixture: raw std::thread use outside the sanctioned executor
// module (rule 7). Scanned as crates/diknn-bench/src code; never compiled.

pub fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    let handle = std::thread::spawn(move || jobs.iter().sum::<u64>());
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| out.push(1));
    });
    let builder = std::thread::Builder::new();
    let _ = builder;
    let _ = handle.join();
    out
}
