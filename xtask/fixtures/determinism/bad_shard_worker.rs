// Lint fixture: a shard-worker pool spawning threads outside the
// sanctioned executor module (rule 7). The sharded engine's contract is
// that the engine crate stays thread-free (it only sees the
// `ShardExecutor` trait); any worker pool living outside
// `crates/diknn-workloads/src/parallel.rs` must fail lint, however
// legitimate-looking its merge discipline is. Scanned as diknn-sim
// library code; never compiled.

pub struct RogueShardPool {
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl RogueShardPool {
    pub fn new(shards: usize) -> Self {
        let mut workers = Vec::new();
        for i in 0..shards {
            let handle = std::thread::Builder::new()
                .name(format!("shard-{i}"))
                .spawn(move || {
                    let _ = i;
                })
                .expect("spawn shard worker");
            workers.push(handle);
        }
        RogueShardPool { workers }
    }

    pub fn compute_batch(&mut self, items: Vec<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            scope.spawn(|| out.extend(items.iter().copied()));
        });
        out.sort_unstable();
        out
    }
}
