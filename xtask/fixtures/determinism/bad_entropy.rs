// Lint fixture: ambient randomness (rule 3) and a bare float comparison in
// protocol decision code (rule 4). Scanned as crates/diknn-core/src code;
// never compiled.
use rand::Rng;

pub fn jitter(window: f64) -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..window)
}

pub fn is_boundary(dist: f64, radius: f64) -> bool {
    dist == radius && radius != 0.0
}
