// Lint fixture: simulation state kept in hash containers (rule 1) plus a
// wall-clock read (rule 2). Scanned by tests as crates/diknn-sim/src code;
// never compiled.
use std::collections::{HashMap, HashSet};
use std::time::Instant;

pub struct BadEngine {
    pending: HashMap<u64, u32>,
    cancelled: HashSet<u64>,
}

impl BadEngine {
    pub fn tick(&mut self) {
        let _started = Instant::now();
        for (_id, _tx) in &self.pending {
            // Iterating a HashMap: order differs between processes.
        }
        self.cancelled.clear();
    }
}
