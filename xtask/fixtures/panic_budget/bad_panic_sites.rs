// Lint fixture: more unwrap()/expect() calls than any sane budget (rule 5).
// Scanned as crates/diknn-mobility/src code; never compiled.
pub fn parse_all(lines: &[&str]) -> Vec<(u64, f64)> {
    lines
        .iter()
        .map(|l| {
            let mut parts = l.split(',');
            let id = parts.next().unwrap().parse().unwrap();
            let t = parts.next().expect("time field").parse().expect("float");
            (id, t)
        })
        .collect()
}

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
