//! Criterion micro-benchmarks of the algorithmic building blocks: the KNNB
//! estimator (the paper stresses it is linear-time), itinerary geometry,
//! GPSR next-hop planning, and the R-tree substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use diknn_core::itinerary::{sub_itinerary, ItinerarySpec};
use diknn_core::{knnb, HopRecord};
use diknn_geom::{Point, Rect};
use diknn_routing::{gabriel_neighbors, plan_next_hop, GpsrHeader};
use diknn_rtree::RTree;
use diknn_sim::{Neighbor, NodeId, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hop_list(hops: usize) -> Vec<HopRecord> {
    (0..hops)
        .map(|i| HopRecord {
            loc: Point::new(i as f64 * 15.0, 0.0),
            enc: 5,
        })
        .collect()
}

fn bench_knnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("knnb");
    for hops in [4usize, 16, 64, 256] {
        let list = hop_list(hops);
        let q = Point::new(hops as f64 * 15.0 + 5.0, 0.0);
        group.bench_with_input(BenchmarkId::new("estimate", hops), &hops, |b, _| {
            b.iter(|| knnb(black_box(&list), black_box(q), 20.0, 40))
        });
    }
    group.finish();
}

fn bench_itinerary(c: &mut Criterion) {
    let mut group = c.benchmark_group("itinerary");
    for radius in [30.0f64, 60.0, 120.0] {
        let spec = ItinerarySpec::new(Point::new(0.0, 0.0), radius, 8, 17.32);
        group.bench_with_input(
            BenchmarkId::new("sub_itinerary", radius as u64),
            &spec,
            |b, spec| b.iter(|| sub_itinerary(black_box(spec), 3, true)),
        );
        let poly = sub_itinerary(&spec, 3, true);
        group.bench_with_input(
            BenchmarkId::new("project_from", radius as u64),
            &poly,
            |b, poly| {
                b.iter(|| poly.project_from(black_box(Point::new(10.0, 20.0)), poly.length() / 3.0))
            },
        );
    }
    group.finish();
}

fn neighbors(n: usize) -> Vec<Neighbor> {
    let mut rng = SmallRng::seed_from_u64(5);
    diknn_mobility::placement::uniform(Rect::new(-20.0, -20.0, 20.0, 20.0), n, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(i, p)| Neighbor {
            id: NodeId(i as u32 + 1),
            position: p,
            speed: 0.0,
            heard_at: SimTime::ZERO,
        })
        .collect()
}

fn bench_gpsr(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpsr");
    for n in [10usize, 20, 40] {
        let nbs = neighbors(n);
        let header = GpsrHeader::new(Point::new(100.0, 100.0));
        group.bench_with_input(BenchmarkId::new("plan_next_hop", n), &nbs, |b, nbs| {
            b.iter(|| {
                plan_next_hop(
                    NodeId(0),
                    Point::new(0.0, 0.0),
                    black_box(&header),
                    nbs,
                    None,
                    &[],
                    20.0,
                )
            })
        });
        let refs: Vec<&Neighbor> = nbs.iter().collect();
        group.bench_with_input(BenchmarkId::new("gabriel", n), &refs, |b, refs| {
            b.iter(|| gabriel_neighbors(black_box(Point::new(0.0, 0.0)), refs))
        });
    }
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree");
    let mut rng = SmallRng::seed_from_u64(9);
    let pts = diknn_mobility::placement::uniform(Rect::new(0.0, 0.0, 115.0, 115.0), 200, &mut rng);
    group.bench_function("bulk_load_200", |b| {
        b.iter(|| {
            RTree::bulk_load_points(
                black_box(&pts)
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(i, p)| (p, i)),
            )
        })
    });
    let tree = RTree::bulk_load_points(pts.iter().copied().enumerate().map(|(i, p)| (p, i)));
    group.bench_function("knn_40_of_200", |b| {
        b.iter(|| tree.knn(black_box(Point::new(57.0, 57.0)), 40))
    });
    group.bench_function("insert_200", |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for (i, &p) in pts.iter().enumerate() {
                t.insert_point(p, i);
            }
            t
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_knnb, bench_itinerary, bench_gpsr, bench_rtree
}
criterion_main!(benches);
