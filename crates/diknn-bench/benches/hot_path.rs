//! Criterion micro-benchmarks of the engine hot path (PR 9): event
//! scheduling, frame-pool churn, grid candidate queries, SoA node-state
//! access, and a whole-engine MAC fan-out cell. These pin the costs the
//! slab/SoA overhaul is accountable for; `profile_bench` measures the
//! same paths in situ with behaviour fingerprints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use std::sync::Arc;

use diknn_geom::{Point, Rect};
use diknn_mobility::{RandomWaypoint, RwpConfig};
use diknn_sim::{
    Ctx, EventQueue, FramePool, NeighborIndex, NodeId, NodeSoA, Protocol, SharedMobility,
    SimConfig, SimDuration, SimTime, Simulator, SpatialGrid,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic pseudo-schedule: times jump around like interleaved
/// beacon/MAC/timer traffic does.
fn schedule(n: usize) -> Vec<(SimTime, u64)> {
    let mut rng = SmallRng::seed_from_u64(41);
    (0..n as u64)
        .map(|seq| (SimTime::from_nanos(rng.gen_range(0..1_000_000_000)), seq))
        .collect()
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [256usize, 4096] {
        let keys = schedule(n);
        group.bench_with_input(BenchmarkId::new("slab_push_pop", n), &keys, |b, keys| {
            b.iter(|| {
                let mut q: EventQueue<u32> = EventQueue::with_capacity(keys.len());
                for &(t, s) in keys {
                    q.push(t, s, s as u32);
                }
                let mut acc = 0u64;
                while let Some((_, s, _)) = q.pop() {
                    acc = acc.wrapping_add(s);
                }
                acc
            })
        });
        group.bench_with_input(
            BenchmarkId::new("binary_heap_push_pop", n),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut q: BinaryHeap<Reverse<(SimTime, u64, u32)>> =
                        BinaryHeap::with_capacity(keys.len());
                    for &(t, s) in keys {
                        q.push(Reverse((t, s, s as u32)));
                    }
                    let mut acc = 0u64;
                    while let Some(Reverse((_, s, _))) = q.pop() {
                        acc = acc.wrapping_add(s);
                    }
                    acc
                })
            },
        );
        // Steady state: the engine holds a near-constant backlog and
        // alternates push/pop; this is the per-event cost that matters.
        group.bench_with_input(
            BenchmarkId::new("slab_steady_state", n),
            &keys,
            |b, keys| {
                let mut q: EventQueue<u32> = EventQueue::with_capacity(keys.len());
                for &(t, s) in keys {
                    q.push(t, s, s as u32);
                }
                let mut seq = keys.len() as u64;
                b.iter(|| {
                    let (t, _, _) = q.pop().expect("backlog never drains");
                    q.push(t + SimDuration::from_micros(50), seq, 0);
                    seq += 1;
                })
            },
        );
    }
    group.finish();
}

/// Stand-in for `PendingTx`: same order of magnitude of payload bytes.
#[derive(Clone)]
struct FakeFrame {
    _from: u32,
    _dest: u32,
    _bytes: u32,
    _payload: [u64; 4],
}

fn bench_frame_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_pool");
    let frame = FakeFrame {
        _from: 1,
        _dest: 2,
        _bytes: 64,
        _payload: [0; 4],
    };
    // Churn at a realistic in-flight depth: a handful of frames live at
    // once, constant insert/remove — the steady state of a busy MAC.
    group.bench_function("churn_depth_8", |b| {
        let mut pool: FramePool<FakeFrame> = FramePool::new();
        let mut live: Vec<_> = (0..8).map(|_| pool.insert(frame.clone())).collect();
        let mut i = 0usize;
        b.iter(|| {
            let at = i % live.len();
            pool.remove(live[at]).expect("live frame");
            live[at] = pool.insert(frame.clone());
            i += 1;
        })
    });
    group.bench_function("get_hit", |b| {
        let mut pool: FramePool<FakeFrame> = FramePool::new();
        let hs: Vec<_> = (0..64).map(|_| pool.insert(frame.clone())).collect();
        let mut i = 0usize;
        b.iter(|| {
            let h = hs[i % hs.len()];
            i += 1;
            pool.get(black_box(h)).is_some()
        })
    });
    group.finish();
}

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 460.0,
    max_y: 460.0,
};

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    let mut rng = SmallRng::seed_from_u64(7);
    for n in [500usize, 4000] {
        let pts = diknn_mobility::placement::uniform(FIELD, n, &mut rng);
        let grid = SpatialGrid::build(FIELD, 20.0, &pts, 5.0, 10.0, SimTime::ZERO);
        let centers: Vec<Point> = (0..64)
            .map(|_| Point::new(rng.gen_range(0.0..460.0), rng.gen_range(0.0..460.0)))
            .collect();
        group.bench_with_input(BenchmarkId::new("candidates_near", n), &grid, |b, grid| {
            let mut out: Vec<u32> = Vec::new();
            let mut i = 0usize;
            b.iter(|| {
                out.clear();
                grid.candidates_near(centers[i % centers.len()], 20.0, SimTime::ZERO, &mut out);
                i += 1;
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_node_soa(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_soa");
    let n = 4096usize;
    let mut nodes = NodeSoA::new(n);
    let mut rng = SmallRng::seed_from_u64(3);
    for i in 0..n {
        nodes.alive[i] = rng.gen_bool(0.9);
        nodes.tx_count[i] = u32::from(rng.gen_bool(0.05));
    }
    let order: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
    // The carrier-sense gate: one flag + one counter read per query.
    group.bench_function("busy_check_4096", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let id = order[i % order.len()];
            i += 1;
            nodes.alive[id] && (nodes.tx_count[id] > 0 || nodes.rx_cover[id] > 0)
        })
    });
    group.bench_function("alive_scan_4096", |b| {
        b.iter(|| nodes.alive.iter().filter(|&&a| a).count())
    });
    group.finish();
}

/// Broadcast-heavy protocol: every node rebroadcasts on a timer so the
/// run is dominated by MAC attempts and delivery fan-out.
struct Flood;

impl Protocol for Flood {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        for i in 0..ctx.node_count() as u32 {
            ctx.set_timer(NodeId(i), SimDuration::from_millis(50 + i as u64), 0);
        }
    }

    fn on_timer(&mut self, at: NodeId, _key: u64, ctx: &mut Ctx<u32>) {
        ctx.broadcast(at, 32, at.0);
        ctx.set_timer(at, SimDuration::from_millis(400), 0);
    }

    fn on_message(&mut self, _at: NodeId, _from: NodeId, _msg: &u32, _ctx: &mut Ctx<u32>) {}
}

fn bench_mac_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_fanout");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(11);
    let field = Rect::new(0.0, 0.0, 115.0, 115.0);
    let nodes: Vec<SharedMobility> = (0..100)
        .map(|_| {
            let start = Point::new(rng.gen_range(0.0..115.0), rng.gen_range(0.0..115.0));
            let cfg = RwpConfig::new(field, 3.0, 30.0);
            Arc::new(RandomWaypoint::new(start, &cfg, &mut rng)) as SharedMobility
        })
        .collect();
    for (name, audible_cache) in [("cache_on", true), ("cache_off", false)] {
        group.bench_function(BenchmarkId::new("flood_100n_5s", name), |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    neighbor_index: NeighborIndex::Grid,
                    audible_cache,
                    time_limit: SimDuration::from_secs_f64(5.0),
                    ..SimConfig::default()
                };
                let mut sim = Simulator::new(cfg, black_box(nodes.clone()), Flood, 17);
                sim.run();
                sim.ctx().stats().events
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_event_queue, bench_frame_pool, bench_grid, bench_node_soa, bench_mac_fanout
}
criterion_main!(benches);
