//! Criterion benchmark of full query processing: one complete simulated
//! KNN query per protocol (simulation wall-clock cost, not network cost —
//! the network-cost experiments live in the `fig8`/`fig9` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use diknn_baselines::{KptConfig, PeerTreeConfig};
use diknn_core::DiknnConfig;
use diknn_workloads::{Experiment, ProtocolKind, ScenarioConfig, WorkloadConfig};

fn scenario() -> ScenarioConfig {
    ScenarioConfig {
        nodes: 150,
        duration: 15.0,
        ..ScenarioConfig::default()
    }
}

fn workload(k: usize) -> WorkloadConfig {
    WorkloadConfig {
        k,
        first_at: 2.0,
        last_at: 2.5, // exactly one query
        ..WorkloadConfig::default()
    }
}

fn bench_single_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_query_sim");
    group.sample_size(10);
    for k in [10usize, 40] {
        for (name, proto) in [
            ("diknn", ProtocolKind::Diknn(DiknnConfig::default())),
            ("kpt", ProtocolKind::Kpt(KptConfig::default())),
            (
                "peertree",
                ProtocolKind::PeerTree(PeerTreeConfig::default()),
            ),
        ] {
            let exp = Experiment::new(proto, scenario(), workload(k));
            group.bench_with_input(BenchmarkId::new(name, k), &exp, |b, exp| {
                b.iter(|| black_box(exp.run_once(7)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_query);
criterion_main!(benches);
