//! The `scale_bench` JSON report model and emitter.
//!
//! Extracted from the binary so the serialization rules are unit-tested
//! (ISSUE 10 regression: schema 2 serialized *missing* measurements as
//! real numbers — `warm_grid_vs_brute: 0.000` for cells where the
//! brute-force oracle never ran, and a vacuous
//! `sweep_parallel_vs_serial_grid: 1.000` on single-core machines where
//! the thread axis collapsed to {1}).
//!
//! Schema 3 rules:
//!
//! * A ratio whose denominator (or numerator) was never measured is
//!   `null`, not `0.0` and not `1.0`. In Rust that is `Option<f64>`;
//!   [`opt_json`] is the single place the `null` spelling lives.
//! * The config block records the *detected* machine parallelism
//!   (`threads_detected`) next to the requested axis (`threads_max`), and
//!   an explicit `degenerate_parallel` flag when the sweep axis collapsed
//!   to a single thread — a degenerate column is flagged, never faked.
//! * Cells carry a `shards` field (the intra-run spatial shard count, 1 =
//!   sequential loop) and the report gains a `shard_wall_series` for the
//!   sharded-engine scaling curve.

/// Schema version of `results/BENCH_scale.json`. Bumped to 3 for the
/// `null`-ratio rules, the degenerate-parallel flag and the shards axis.
pub const SCALE_SCHEMA_VERSION: u32 = 3;

/// `num / den` if both sides are real measurements, else `None`.
pub fn ratio(num: f64, den: f64) -> Option<f64> {
    (num > 0.0 && den > 0.0).then(|| num / den)
}

/// JSON spelling of an optional ratio: a number or `null` — never a
/// fabricated zero.
pub fn opt_json(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "null".to_string(),
    }
}

/// One finished benchmark cell, reduced to what the report serializes.
#[derive(Debug, Clone)]
pub struct CellRow {
    pub nodes: usize,
    pub index: &'static str,
    pub threads: usize,
    /// Intra-run spatial shards (1 = the sequential engine loop).
    pub shards: usize,
    pub runs: usize,
    pub wall_s: f64,
    pub setup_s: f64,
    pub warm_s: f64,
    pub run_s: f64,
    pub events: u64,
    pub events_per_sec: f64,
}

impl CellRow {
    fn json(&self) -> String {
        format!(
            "    {{\"nodes\": {}, \"index\": \"{}\", \"threads\": {}, \"shards\": {}, \
             \"runs\": {}, \"wall_s\": {:.6}, \"setup_s\": {:.6}, \"warm_s\": {:.6}, \
             \"run_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}}}",
            self.nodes,
            self.index,
            self.threads,
            self.shards,
            self.runs,
            self.wall_s,
            self.setup_s,
            self.warm_s,
            self.run_s,
            self.events,
            self.events_per_sec,
        )
    }
}

/// Grid-vs-brute, parallel-vs-serial and sharded-vs-sequential ratios for
/// one node count. `None` = the comparison could not be measured on this
/// machine/configuration (oracle gated off, single-core, shards axis not
/// requested) and is serialized as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    pub nodes: usize,
    pub warm_grid_vs_brute: Option<f64>,
    pub run_grid_vs_brute: Option<f64>,
    pub wall_grid_vs_brute: Option<f64>,
    pub sweep_parallel_vs_serial_grid: Option<f64>,
    /// Wall time of the 1-shard grid cell over the widest multi-shard
    /// cell (the sharded-engine payoff at this node count).
    pub shard_wall_speedup: Option<f64>,
}

impl SpeedupRow {
    fn json(&self) -> String {
        format!(
            "    {{\"nodes\": {}, \"warm_grid_vs_brute\": {}, \"run_grid_vs_brute\": {}, \
             \"wall_grid_vs_brute\": {}, \"sweep_parallel_vs_serial_grid\": {}, \
             \"shard_wall_speedup\": {}}}",
            self.nodes,
            opt_json(self.warm_grid_vs_brute),
            opt_json(self.run_grid_vs_brute),
            opt_json(self.wall_grid_vs_brute),
            opt_json(self.sweep_parallel_vs_serial_grid),
            opt_json(self.shard_wall_speedup),
        )
    }
}

/// Everything the config block of the report records.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    pub runs: usize,
    pub base_seed: u64,
    pub duration_s: f64,
    pub node_degree: f64,
    pub radio_range: f64,
    pub max_speed: f64,
    /// The requested "all threads" axis value.
    pub threads_max: usize,
    /// The machine parallelism actually detected at run time.
    pub threads_detected: usize,
    /// True when the sweep thread axis collapsed to {1} (single-core box
    /// or `DIKNN_THREADS=1`): the parallel-vs-serial column is then
    /// unmeasurable and serialized as `null`, never as `1.000`.
    pub degenerate_parallel: bool,
    pub brute_max_nodes: usize,
    pub node_counts: Vec<usize>,
    /// The intra-run shard axis (always contains 1).
    pub shard_counts: Vec<usize>,
}

fn usize_list(xs: &[usize]) -> String {
    xs.iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render the complete `BENCH_scale.json` document.
pub fn render_json(
    cfg: &ReportConfig,
    cells: &[CellRow],
    speedups: &[SpeedupRow],
    equivalent: bool,
) -> String {
    let cell_rows: Vec<String> = cells.iter().map(CellRow::json).collect();
    let speedup_rows: Vec<String> = speedups.iter().map(SpeedupRow::json).collect();
    // The engine throughput curve across the population axis: grid,
    // single sweep thread, sequential (1-shard) loop.
    let series_rows: Vec<String> = cells
        .iter()
        .filter(|c| c.index == "grid" && c.threads == 1 && c.shards == 1)
        .map(|c| {
            format!(
                "    {{\"nodes\": {}, \"events_per_sec\": {:.1}}}",
                c.nodes, c.events_per_sec
            )
        })
        .collect();
    // Schema 3: the sharded-engine scaling curve — wall time per shard
    // count on the grid single-thread cells.
    let shard_rows: Vec<String> = cells
        .iter()
        .filter(|c| c.index == "grid" && c.threads == 1)
        .map(|c| {
            format!(
                "    {{\"nodes\": {}, \"shards\": {}, \"wall_s\": {:.6}, \
                 \"events_per_sec\": {:.1}}}",
                c.nodes, c.shards, c.wall_s, c.events_per_sec
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"scale_bench\",\n  \"schema_version\": {ver},\n  \"config\": {{\
         \"runs\": {runs}, \"base_seed\": {seed}, \"duration_s\": {duration:.1}, \
         \"node_degree\": {degree:.1}, \"radio_range\": {range:.1}, \
         \"max_speed\": {speed:.1}, \"threads_max\": {tmax}, \
         \"threads_detected\": {tdet}, \"degenerate_parallel\": {degen}, \
         \"brute_max_nodes\": {bmax}, \
         \"node_counts\": [{nodes}], \"shard_counts\": [{shards}]}},\n  \
         \"cells\": [\n{cells}\n  ],\n  \
         \"events_per_sec_series\": [\n{series}\n  ],\n  \
         \"shard_wall_series\": [\n{shard_series}\n  ],\n  \
         \"speedups\": [\n{speedups}\n  ],\n  \
         \"equivalence\": {{\"all_variants_bit_identical\": {equivalent}}}\n}}\n",
        ver = SCALE_SCHEMA_VERSION,
        runs = cfg.runs,
        seed = cfg.base_seed,
        duration = cfg.duration_s,
        degree = cfg.node_degree,
        range = cfg.radio_range,
        speed = cfg.max_speed,
        tmax = cfg.threads_max,
        tdet = cfg.threads_detected,
        degen = cfg.degenerate_parallel,
        bmax = cfg.brute_max_nodes,
        nodes = usize_list(&cfg.node_counts),
        shards = usize_list(&cfg.shard_counts),
        cells = cell_rows.join(",\n"),
        series = series_rows.join(",\n"),
        shard_series = shard_rows.join(",\n"),
        speedups = speedup_rows.join(",\n"),
        equivalent = equivalent,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(nodes: usize, index: &'static str, threads: usize, shards: usize) -> CellRow {
        CellRow {
            nodes,
            index,
            threads,
            shards,
            runs: 3,
            wall_s: 1.5,
            setup_s: 0.1,
            warm_s: 0.2,
            run_s: 1.2,
            events: 1000,
            events_per_sec: 833.3,
        }
    }

    fn config() -> ReportConfig {
        ReportConfig {
            runs: 3,
            base_seed: 1000,
            duration_s: 30.0,
            node_degree: 20.0,
            radio_range: 20.0,
            max_speed: 5.0,
            threads_max: 1,
            threads_detected: 1,
            degenerate_parallel: true,
            brute_max_nodes: 2000,
            node_counts: vec![250, 5000],
            shard_counts: vec![1, 4],
        }
    }

    #[test]
    fn unmeasured_ratio_is_none_and_serializes_as_null() {
        // The schema-2 bug: den == 0 (brute never ran) reported 0.000.
        assert_eq!(ratio(1.0, 0.0), None);
        assert_eq!(ratio(0.0, 1.0), None);
        assert_eq!(opt_json(None), "null");
        assert_eq!(opt_json(Some(2.5)), "2.500");
    }

    #[test]
    fn measured_ratio_divides() {
        assert_eq!(ratio(3.0, 2.0), Some(1.5));
    }

    #[test]
    fn brute_gated_cell_emits_null_not_zero() {
        let row = SpeedupRow {
            nodes: 5000,
            warm_grid_vs_brute: None,
            run_grid_vs_brute: None,
            wall_grid_vs_brute: None,
            sweep_parallel_vs_serial_grid: None,
            shard_wall_speedup: Some(1.9),
        };
        let json = row.json();
        assert!(json.contains("\"warm_grid_vs_brute\": null"), "{json}");
        assert!(json.contains("\"run_grid_vs_brute\": null"), "{json}");
        assert!(json.contains("\"wall_grid_vs_brute\": null"), "{json}");
        assert!(
            json.contains("\"sweep_parallel_vs_serial_grid\": null"),
            "{json}"
        );
        assert!(json.contains("\"shard_wall_speedup\": 1.900"), "{json}");
        assert!(!json.contains("0.000"), "fabricated zero ratio: {json}");
    }

    #[test]
    fn degenerate_single_thread_axis_is_flagged_not_faked() {
        let cfg = config();
        let cells = [cell(250, "grid", 1, 1)];
        let speedups = [SpeedupRow {
            nodes: 250,
            warm_grid_vs_brute: Some(3.2),
            run_grid_vs_brute: Some(1.1),
            wall_grid_vs_brute: Some(1.4),
            sweep_parallel_vs_serial_grid: None,
            shard_wall_speedup: None,
        }];
        let json = render_json(&cfg, &cells, &speedups, true);
        assert!(json.contains("\"schema_version\": 3"), "{json}");
        assert!(json.contains("\"degenerate_parallel\": true"), "{json}");
        assert!(json.contains("\"threads_detected\": 1"), "{json}");
        assert!(
            json.contains("\"sweep_parallel_vs_serial_grid\": null"),
            "the vacuous 1.000 column must be null when the axis collapsed: {json}"
        );
        assert!(
            !json.contains("\"sweep_parallel_vs_serial_grid\": 1.000"),
            "{json}"
        );
    }

    #[test]
    fn shard_series_covers_every_grid_single_thread_cell() {
        let cfg = config();
        let cells = [
            cell(250, "grid", 1, 1),
            cell(250, "grid", 1, 4),
            cell(250, "brute", 1, 1),
        ];
        let json = render_json(&cfg, &cells, &[], true);
        assert!(json.contains("\"shard_counts\": [1, 4]"), "{json}");
        // Both shard cells appear in the series; the brute cell does not.
        let series = json
            .split("\"shard_wall_series\"")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .unwrap();
        assert_eq!(series.matches("\"shards\": ").count(), 2, "{series}");
        // The headline throughput series stays 1-shard only.
        let eps = json
            .split("\"events_per_sec_series\"")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .unwrap();
        assert_eq!(eps.matches("\"nodes\": ").count(), 1, "{eps}");
    }

    #[test]
    fn cells_carry_the_shards_field() {
        let json = cell(250, "grid", 1, 7).json();
        assert!(json.contains("\"shards\": 7"), "{json}");
    }
}
