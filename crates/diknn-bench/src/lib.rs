//! Shared plumbing for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index) and prints a plain text table
//! plus CSV rows (lines starting with `csv,`) for downstream plotting.
//!
//! Knobs via environment variables, so full paper-scale runs and quick
//! smoke runs use the same binaries:
//!
//! * `DIKNN_RUNS`   — seeded runs per cell (paper: 20; default: 5)
//! * `DIKNN_SEED`   — base seed (default 1000)
//! * `DIKNN_DURATION` — simulated seconds per run (paper: 100; default 100)
//! * `DIKNN_THREADS` — sweep worker threads (default: all available cores)
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod report;
pub mod svg;

use diknn_workloads::{Aggregate, Experiment, ProtocolKind, ScenarioConfig, WorkloadConfig};

/// Runs-per-cell from `DIKNN_RUNS` (default 5, floor 1).
pub fn runs() -> usize {
    std::env::var("DIKNN_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
        .max(1)
}

/// Base seed from `DIKNN_SEED` (default 1000).
pub fn base_seed() -> u64 {
    std::env::var("DIKNN_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Simulated duration from `DIKNN_DURATION` (default 100 s, as the paper).
pub fn duration() -> f64 {
    std::env::var("DIKNN_DURATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100.0)
}

/// Sweep worker threads from `DIKNN_THREADS` (default: the machine's
/// available parallelism, floor 1). Parallelism never changes results —
/// see `diknn_workloads::parallel` — so this is purely a wall-time knob.
pub fn threads() -> usize {
    std::env::var("DIKNN_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| diknn_workloads::ParallelSweep::available().threads())
        .max(1)
}

/// Intra-run spatial shard counts from `DIKNN_SHARDS` (comma-separated;
/// default `1,4`). The list always contains 1 — the sequential baseline
/// every sharded cell is fingerprint-checked against — and is sorted and
/// deduplicated.
pub fn shard_counts() -> Vec<usize> {
    let mut counts: Vec<usize> = std::env::var("DIKNN_SHARDS")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4]);
    counts.push(1);
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The paper's default scenario with the configured duration.
pub fn default_scenario() -> ScenarioConfig {
    let duration = duration();
    let mut wl_last = duration - 20.0;
    if wl_last < 5.0 {
        wl_last = duration * 0.6;
    }
    let _ = wl_last;
    ScenarioConfig {
        duration,
        ..ScenarioConfig::default()
    }
}

/// Default workload adjusted to the configured duration.
pub fn default_workload() -> WorkloadConfig {
    let duration = duration();
    WorkloadConfig {
        last_at: (duration - 20.0).max(duration * 0.5),
        ..WorkloadConfig::default()
    }
}

/// Run one experiment cell and return the aggregate.
pub fn run_cell(
    protocol: ProtocolKind,
    scenario: ScenarioConfig,
    workload: WorkloadConfig,
) -> Aggregate {
    Experiment::new(protocol, scenario, workload).run(runs(), base_seed())
}

/// Run one experiment cell with a fault plan installed.
pub fn run_cell_faulted(
    protocol: ProtocolKind,
    scenario: ScenarioConfig,
    workload: WorkloadConfig,
    plan: diknn_sim::FaultPlan,
) -> Aggregate {
    let mut exp = Experiment::new(protocol, scenario, workload);
    exp.fault_plan = Some(plan);
    exp.run(runs(), base_seed())
}

/// Print one row of an experiment table (human text + a `csv,` line).
pub fn print_row(figure: &str, x_name: &str, x: f64, proto: &str, agg: &Aggregate) {
    println!(
        "{figure} {x_name}={x:<6} {proto:10} latency={:.3}±{:.3}s energy={:.3}±{:.3}J \
         pre={:.3} post={:.3} completion={:.2}",
        agg.latency_s.mean,
        agg.latency_s.std,
        agg.energy_j.mean,
        agg.energy_j.std,
        agg.pre_accuracy.mean,
        agg.post_accuracy.mean,
        agg.completion_rate.mean,
    );
    println!(
        "csv,{figure},{x_name},{x},{proto},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
        agg.latency_s.mean,
        agg.latency_s.std,
        agg.energy_j.mean,
        agg.energy_j.std,
        agg.pre_accuracy.mean,
        agg.post_accuracy.mean,
        agg.completion_rate.mean,
    );
}

/// Header explaining the csv columns, printed once per binary.
pub fn print_csv_header() {
    println!(
        "csv,figure,x_name,x,protocol,latency_mean,latency_std,energy_mean,energy_std,\
         pre_accuracy,post_accuracy,completion_rate"
    );
}

/// Print one row of a fault-sweep table: the usual metrics plus the
/// degradation taxonomy (degraded rate, watchdog re-issues, sink retries,
/// nodes lost).
pub fn print_fault_row(figure: &str, x_name: &str, x: f64, proto: &str, agg: &Aggregate) {
    println!(
        "{figure} {x_name}={x:<5} {proto:10} completion={:.2} degraded={:.2} \
         latency={:.3}±{:.3}s energy={:.3}±{:.3}J post={:.3} \
         reissues={:.1} retries={:.1} lost_nodes={:.1}",
        agg.completion_rate.mean,
        agg.degraded_rate.mean,
        agg.latency_s.mean,
        agg.latency_s.std,
        agg.energy_j.mean,
        agg.energy_j.std,
        agg.post_accuracy.mean,
        agg.tokens_reissued.mean,
        agg.query_retries.mean,
        agg.nodes_failed.mean,
    );
    println!(
        "csv,{figure},{x_name},{x},{proto},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
        agg.completion_rate.mean,
        agg.degraded_rate.mean,
        agg.latency_s.mean,
        agg.latency_s.std,
        agg.energy_j.mean,
        agg.energy_j.std,
        agg.post_accuracy.mean,
        agg.tokens_reissued.mean,
        agg.query_retries.mean,
        agg.nodes_failed.mean,
    );
}

/// Header for the fault-sweep csv columns, printed once per binary.
pub fn print_fault_csv_header() {
    println!(
        "csv,figure,x_name,x,protocol,completion_rate,degraded_rate,latency_mean,latency_std,\
         energy_mean,energy_std,post_accuracy,tokens_reissued,query_retries,nodes_failed"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        // Do not set the env vars here (tests run in parallel in one
        // process); just check the defaults parse path.
        assert!(runs() >= 1);
        assert!(duration() > 0.0);
        assert!(threads() >= 1);
        let _ = base_seed();
    }

    #[test]
    fn default_configs_are_consistent() {
        let s = default_scenario();
        let w = default_workload();
        assert!(w.last_at < s.duration);
        assert!(w.first_at < w.last_at);
    }
}
