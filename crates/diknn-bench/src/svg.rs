//! Minimal SVG writer for the Figure 7 style visualisations: node dots,
//! per-sector itinerary polylines, the query point and boundary circle.

use diknn_core::TokenHop;
use diknn_geom::{Point, Rect};
use std::fmt::Write as _;

/// Per-sector stroke colours (8 sectors, colour-blind-tolerant).
const SECTOR_COLORS: [&str; 8] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#222255",
];

/// Render a run visualisation as an SVG document.
///
/// * `field` — world rectangle, mapped to a 800-px-wide canvas.
/// * `nodes` — node positions (grey dots).
/// * `trace` — Q-node hops, drawn per sector.
/// * `q`, `radius` — query point and final boundary circle.
pub fn render(field: Rect, nodes: &[Point], trace: &[TokenHop], q: Point, radius: f64) -> String {
    let scale = 800.0 / field.width();
    let w = 800.0;
    let h = field.height() * scale;
    let tx = |p: Point| (p.x - field.min_x) * scale;
    // SVG's y axis points down; flip so the map reads like the field.
    let ty = |p: Point| h - (p.y - field.min_y) * scale;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = writeln!(s, r##"<rect width="{w}" height="{h}" fill="#fcfcf8"/>"##);

    // Boundary circle.
    let _ = writeln!(
        s,
        r##"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="none" stroke="#999" stroke-dasharray="6 4"/>"##,
        tx(q),
        ty(q),
        radius * scale
    );

    // Nodes.
    for &p in nodes {
        let _ = writeln!(
            s,
            r##"<circle cx="{:.1}" cy="{:.1}" r="2" fill="#b0b0b0"/>"##,
            tx(p),
            ty(p)
        );
    }

    // Itinerary hops, one polyline segment per hop, coloured by sector.
    for hop in trace {
        let color = SECTOR_COLORS[hop.sector as usize % SECTOR_COLORS.len()];
        let _ = writeln!(
            s,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="1.6"/>"#,
            tx(hop.from),
            ty(hop.from),
            tx(hop.to),
            ty(hop.to)
        );
        let _ = writeln!(
            s,
            r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
            tx(hop.to),
            ty(hop.to)
        );
    }

    // Query point.
    let _ = writeln!(
        s,
        r##"<circle cx="{:.1}" cy="{:.1}" r="5" fill="#cc0000"/>"##,
        tx(q),
        ty(q)
    );
    let _ = writeln!(
        s,
        r##"<text x="{:.1}" y="{:.1}" font-size="14" fill="#cc0000">q</text>"##,
        tx(q) + 8.0,
        ty(q) - 8.0
    );
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_wellformed_svg() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        let nodes = vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)];
        let trace = vec![TokenHop {
            qid: 0,
            sector: 3,
            hop: 1,
            from: Point::new(50.0, 50.0),
            to: Point::new(60.0, 55.0),
            frontier: 12.0,
            radius: 30.0,
        }];
        let svg = render(field, &nodes, &trace, Point::new(50.0, 50.0), 30.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 1 + 2 + 1 + 1); // boundary + nodes + hop + q
        assert!(svg.contains(SECTOR_COLORS[3]));
        // y axis flipped: node at y=10 lands near the bottom (y≈720).
        assert!(svg.contains(r#"cy="720.0""#));
    }
}
