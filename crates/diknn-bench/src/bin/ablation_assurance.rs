//! §4.3 mobility assurance ablation: sweep the assurance gain `g` at high
//! mobility. Larger g extends the boundary by `g·(te − ts)·µ` before the
//! last Q-node reports, buying accuracy for energy; `g = 0` disables the
//! mechanism. The paper's default is g = 0.1.

use diknn_bench::{default_workload, print_csv_header, print_row, run_cell};
use diknn_core::DiknnConfig;
use diknn_workloads::{ProtocolKind, ScenarioConfig, WorkloadConfig};

fn main() {
    println!(
        "Assurance-gain ablation (k = 40, µmax = 25 m/s, runs per cell: {})\n",
        diknn_bench::runs()
    );
    print_csv_header();
    for g in [0.0, 0.1, 0.3, 0.6, 1.0] {
        let cfg = DiknnConfig {
            assurance_gain: g,
            ..DiknnConfig::default()
        };
        let agg = run_cell(
            ProtocolKind::Diknn(cfg),
            ScenarioConfig {
                max_speed: 25.0,
                ..diknn_bench::default_scenario()
            },
            WorkloadConfig {
                k: 40,
                ..default_workload()
            },
        );
        print_row("ablation_assurance", "g", g, "DIKNN", &agg);
    }
}
