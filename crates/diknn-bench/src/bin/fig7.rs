//! Figure 7: visualisation of a DIKNN execution over a spatially irregular
//! ("caribou herd") node distribution.
//!
//! The paper runs one large query over real animal-tracking data and
//! observes (1) the concurrent itinerary traversals, (2) itinerary voids
//! bypassed during traversal, and (3) a small population of isolated nodes
//! that never hear the query, costing 0.2–1 % accuracy. We substitute a
//! clustered Gaussian-mixture placement (see DESIGN.md) scaled to our
//! field: 400 nodes, 6 herds, k = 120.
//!
//! Output: an ASCII map of the field (nodes `.`, itinerary hops per sector
//! `0..7`, query point `Q`), followed by void/isolation statistics.

use diknn_core::{Diknn, DiknnConfig, KnnProtocol, QueryRequest};
use diknn_geom::{Point, Rect};
use diknn_mobility::GroupConfig;
use diknn_sim::{NodeId, Simulator};
use diknn_workloads::{GroundTruth, HerdSetup, PlacementKind, ScenarioConfig};

const COLS: usize = 76;
const ROWS: usize = 34;

fn main() {
    let field = Rect::new(0.0, 0.0, 160.0, 160.0);
    let scenario = ScenarioConfig {
        nodes: 500,
        field,
        max_speed: 0.0,
        placement: PlacementKind::Uniform, // overridden by the herd setup
        // True group mobility: six drifting herds plus enough independent
        // background animals to keep the network connected.
        herds: Some(HerdSetup {
            herds: 6,
            group: GroupConfig {
                field,
                leader_speed: 2.0,
                spread: 16.0,
                ..GroupConfig::default()
            },
            // Enough independent background animals that the herds stay
            // connected through them (the paper's field is connected).
            background_fraction: 0.35,
        }),
        duration: 40.0,
        infrastructure: Vec::new(),
    };
    let seed = diknn_bench::base_seed();
    let plans = scenario.build(seed);
    let oracle = GroundTruth::new(plans.clone(), scenario.nodes);

    let k = 120usize;
    // As in the paper, query "around an arbitrary point" inside the
    // populated area: the centre of the densest neighbourhood. Issue the
    // query from the best-connected node of a *different* region so the
    // routing phase crosses the field.
    let positions = oracle.positions_at(0.0);
    let degree = |i: usize| {
        positions
            .iter()
            .filter(|p| p.dist(positions[i]) <= 20.0)
            .count()
    };
    let densest = (0..positions.len()).max_by_key(|&i| degree(i)).unwrap();
    let q = positions[densest];
    let sink = (0..positions.len())
        .filter(|&i| positions[i].dist(q) > 70.0)
        .max_by_key(|&i| degree(i))
        .unwrap_or(0);
    let request = QueryRequest {
        at: 2.0,
        sink: NodeId(sink as u32),
        q,
        k,
    };
    let mut sim = Simulator::new(
        scenario.sim_config(),
        plans,
        Diknn::new(DiknnConfig::default(), vec![request]),
        seed,
    );
    sim.warm_neighbor_tables();
    sim.run();

    let outcome = &sim.protocol().outcomes()[0];
    let trace = &sim.protocol().token_trace;
    if std::env::var("FIG7_DEBUG").is_ok() {
        if let Some(h) = trace.first() {
            eprintln!(
                "debug: first Q-node at ({:.1},{:.1}), dist to q {:.1}",
                h.from.x,
                h.from.y,
                h.from.dist(q)
            );
        }
        eprintln!(
            "debug: sink at {:?}, q at {:?}, parts {}/{}",
            positions[sink], q, outcome.parts_returned, outcome.parts_expected
        );
        eprintln!("debug: answer len {}", outcome.answer.len());
    }

    // ---- ASCII map -----------------------------------------------------
    let mut grid = vec![[b' '; COLS]; ROWS];
    let cell = |p: Point| -> (usize, usize) {
        let cx = ((p.x - field.min_x) / field.width() * (COLS as f64 - 1.0)).round() as usize;
        let cy = ((p.y - field.min_y) / field.height() * (ROWS as f64 - 1.0)).round() as usize;
        (cx.min(COLS - 1), ROWS - 1 - cy.min(ROWS - 1))
    };
    let t0 = 2.0;
    for p in oracle.positions_at(t0) {
        let (x, y) = cell(p);
        if grid[y][x] == b' ' {
            grid[y][x] = b'.';
        }
    }
    for hop in trace {
        for p in [hop.from, hop.to] {
            let (x, y) = cell(p);
            grid[y][x] = b'0' + hop.sector.min(9);
        }
    }
    let (qx, qy) = cell(q);
    grid[qy][qx] = b'Q';

    println!(
        "Figure 7: DIKNN over an irregular (herd) distribution — k = {k}, \
         500 nodes, 160x160 m^2\n"
    );
    println!("+{}+", "-".repeat(COLS));
    for row in &grid {
        println!("|{}|", String::from_utf8_lossy(row));
    }
    println!("+{}+", "-".repeat(COLS));
    println!("  '.' node   '0'-'7' itinerary hops of that sector   'Q' query point\n");

    // ---- void / isolation statistics ------------------------------------
    // Itinerary voids: hops whose frontier jumped by more than one probe
    // step beyond the Q-node spacing (the traversal skipped unreachable
    // targets).
    let mut voids = 0usize;
    let mut per_sector: Vec<u32> = vec![0; 8];
    let mut last_frontier = [0.0f64; 8];
    for hop in trace {
        let s = hop.sector as usize % 8;
        per_sector[s] = per_sector[s].max(hop.hop);
        let jump = hop.frontier - last_frontier[s];
        if jump > 2.0 * 12.0 {
            voids += 1;
        }
        last_frontier[s] = hop.frontier;
    }

    // Isolated nodes: inside the final boundary but never explored.
    let t_done = outcome
        .completed_at
        .map(|t| t.as_secs_f64())
        .unwrap_or(scenario.duration);
    let positions = oracle.positions_at(t_done);
    let inside = positions
        .iter()
        .filter(|p| p.dist(q) <= outcome.final_radius)
        .count();
    let isolated = inside.saturating_sub(outcome.explored_nodes as usize);
    let isolated_frac = isolated as f64 / scenario.nodes as f64;

    let pre = oracle.accuracy(&outcome.answer, q, k, 2.0);
    let post = oracle.accuracy(&outcome.answer, q, k, t_done);

    println!(
        "boundary: KNNB R = {:.1} m, final R = {:.1} m",
        outcome.boundary_radius, outcome.final_radius
    );
    println!("itinerary hops per sector: {per_sector:?}");
    println!("void bypasses observed: {voids}");
    println!(
        "nodes inside boundary: {inside}; explored: {}; isolated: {isolated} \
         ({:.2}% of the network)",
        outcome.explored_nodes,
        isolated_frac * 100.0
    );
    println!("pre-accuracy: {pre:.3}   post-accuracy: {post:.3}");

    // SVG rendering alongside the ASCII map.
    let svg = diknn_bench::svg::render(
        field,
        &oracle.positions_at(t0),
        trace,
        q,
        outcome.final_radius,
    );
    let svg_path = "results/fig7.svg";
    match std::fs::create_dir_all("results").and_then(|_| std::fs::write(svg_path, svg)) {
        Ok(()) => println!("SVG written to {svg_path}"),
        Err(e) => println!("(could not write {svg_path}: {e})"),
    }
    println!(
        "csv,fig7,k,{k},DIKNN,{:.6},{:.6},{pre:.6},{post:.6},{voids},{isolated}",
        outcome.latency().unwrap_or(f64::NAN),
        outcome.final_radius,
    );
    println!(
        "\nNote: 'isolated' counts in-boundary nodes never probed. Most of \
         them are\nintentional — rendezvous early termination stops sectors \
         once enough nodes are\nexplored. The paper's 0.2-1% figure counts \
         only nodes missed *within traversed\nregions* (true isolation by \
         voids), which corresponds to the void-bypass events\nabove."
    );
}
