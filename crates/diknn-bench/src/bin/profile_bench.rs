//! `profile_bench` — phase-level profiling of the engine hot path with a
//! built-in behaviour oracle (PR 9; workflow documented in PROFILING.md).
//!
//! Runs one DIKNN cell under three engine variants:
//!
//! * `grid+cache`   — spatial grid with the incremental audible-set cache,
//! * `grid+nocache` — spatial grid, cache disabled (`audible_cache=false`),
//! * `brute`        — the O(n²) brute-force index, the sequential oracle.
//!
//! Each variant is measured twice:
//!
//! 1. **Timing pass** (trace off): per-phase wall times — `setup`
//!    (mobility + workload build), `warm` (`Simulator::new` + grid build +
//!    warm beacon round), `run` (the event loop) — plus events/sec, the
//!    per-event-kind breakdown from [`SimStats`] (`ev_*`, which sum to
//!    `events`), and the engine's [`PerfCounters`] (audible-cache
//!    hits/misses, grid refreshes).
//! 2. **Oracle pass** (trace on, shorter): the flight-recorder stream is
//!    serialized and FNV-fingerprinted. All variants must produce the
//!    same trace fingerprint, `SimStats`, and energy bits; any divergence
//!    exits non-zero. CI's perf-smoke job runs a small cell and relies on
//!    that exit code — the cheap, always-on form of the grid/brute
//!    equivalence suites.
//!
//! Output: a table on stdout and machine-readable
//! `results/BENCH_profile.json` (schema 1).
//!
//! Knobs: `DIKNN_PROFILE_NODES` (default 500), `DIKNN_RUNS` (default 3),
//! `DIKNN_DURATION` (default 20 simulated seconds), `DIKNN_SEED`
//! (default 1000), `DIKNN_ORACLE_DURATION` (default `min(duration, 10)`).

// Wall-clock timing is the entire point of this binary; it never feeds
// back into simulation state, so the determinism ban is lifted here (the
// xtask pass is exempted per call site with `// lint: wall-clock-ok`).
#![allow(clippy::disallowed_methods)]

use std::time::Instant; // lint: wall-clock-ok (host-side benchmark timing)

use diknn_bench::base_seed;
use diknn_core::{Diknn, DiknnConfig};
use diknn_sim::{NeighborIndex, PerfCounters, SimStats, Simulator, TraceConfig};
use diknn_snap::Snap;
use diknn_workloads::{workload, Experiment, ScenarioConfig, WorkloadConfig};

/// Radio range (m); matches `SimConfig::default` and sizes the grid cells.
const RADIO_RANGE: f64 = 20.0;
/// Constant node degree, as in `scale_bench`.
const NODE_DEGREE: f64 = 20.0;
/// RWP speed cap (m/s); keeps grid refresh + drift padding on the path.
const MAX_SPEED: f64 = 5.0;

#[derive(Clone, Copy, PartialEq)]
struct Variant {
    name: &'static str,
    index: NeighborIndex,
    audible_cache: bool,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "grid+cache",
        index: NeighborIndex::Grid,
        audible_cache: true,
    },
    Variant {
        name: "grid+nocache",
        index: NeighborIndex::Grid,
        audible_cache: false,
    },
    Variant {
        name: "brute",
        index: NeighborIndex::BruteForce,
        audible_cache: true,
    },
];

/// One timed run: phase walls + stats + perf counters.
struct Timed {
    setup_s: f64,
    warm_s: f64,
    run_s: f64,
    stats: SimStats,
    perf: PerfCounters,
}

/// One oracle run: full behaviour fingerprint.
#[derive(PartialEq, Debug)]
struct Oracle {
    trace_fp: u64,
    stats: SimStats,
    energy_bits: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn scenario(nodes: usize, duration: f64) -> ScenarioConfig {
    ScenarioConfig {
        nodes,
        max_speed: MAX_SPEED,
        duration,
        ..ScenarioConfig::default()
    }
    .with_node_degree(NODE_DEGREE, RADIO_RANGE)
}

fn workload_cfg(duration: f64) -> WorkloadConfig {
    WorkloadConfig {
        last_at: (duration - 5.0).max(duration * 0.5),
        ..WorkloadConfig::default()
    }
}

fn build_sim(
    sc: &ScenarioConfig,
    wl: &WorkloadConfig,
    v: Variant,
    seed: u64,
    trace: bool,
) -> (f64, f64, Simulator<Diknn>) {
    let t0 = Instant::now(); // lint: wall-clock-ok
    let plans = sc.build(seed);
    let requests = workload::generate(sc, wl, seed);
    let mut cfg = sc.sim_config();
    cfg.neighbor_index = v.index;
    cfg.audible_cache = v.audible_cache;
    if trace {
        cfg.trace = TraceConfig::enabled();
    }
    let setup_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now(); // lint: wall-clock-ok
    let mut sim = Simulator::new(
        cfg,
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        seed,
    );
    sim.warm_neighbor_tables();
    let warm_s = t1.elapsed().as_secs_f64();
    (setup_s, warm_s, sim)
}

fn timed_run(sc: &ScenarioConfig, wl: &WorkloadConfig, v: Variant, seed: u64) -> Timed {
    let (setup_s, warm_s, mut sim) = build_sim(sc, wl, v, seed, false);
    let t = Instant::now(); // lint: wall-clock-ok
    sim.run();
    let run_s = t.elapsed().as_secs_f64();
    let perf = *sim.ctx().perf();
    let (_proto, ctx) = sim.into_parts();
    Timed {
        setup_s,
        warm_s,
        run_s,
        stats: *ctx.stats(),
        perf,
    }
}

fn oracle_run(sc: &ScenarioConfig, wl: &WorkloadConfig, v: Variant, seed: u64) -> Oracle {
    let (_, _, mut sim) = build_sim(sc, wl, v, seed, true);
    sim.run();
    let (_proto, ctx) = sim.into_parts();
    let mut w = diknn_snap::SnapWriter::new();
    ctx.trace().snap(&mut w);
    Oracle {
        trace_fp: diknn_snap::fingerprint(&w.into_bytes()),
        stats: *ctx.stats(),
        energy_bits: ctx.total_energy_j().to_bits(),
    }
}

/// Per-variant aggregate over the timed runs.
struct Row {
    variant: Variant,
    setup_s: f64,
    warm_s: f64,
    run_s: f64,
    stats: SimStats,
    perf: PerfCounters,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        if self.run_s > 0.0 {
            self.stats.events as f64 / self.run_s
        } else {
            0.0
        }
    }
}

fn row_json(r: &Row) -> String {
    let s = &r.stats;
    format!(
        "    {{\"variant\": \"{}\", \"setup_s\": {:.6}, \"warm_s\": {:.6}, \"run_s\": {:.6}, \
         \"events\": {}, \"events_per_sec\": {:.1}, \
         \"event_breakdown\": {{\"mac_attempt\": {}, \"tx_end\": {}, \"timer\": {}, \
         \"beacon\": {}, \"lifecycle\": {}}}, \
         \"perf\": {{\"aud_cache_hits\": {}, \"aud_cache_misses\": {}, \
         \"grid_refreshes\": {}}}}}",
        r.variant.name,
        r.setup_s,
        r.warm_s,
        r.run_s,
        s.events,
        r.events_per_sec(),
        s.ev_mac_attempt,
        s.ev_tx_end,
        s.ev_timer,
        s.ev_beacon,
        s.ev_lifecycle,
        r.perf.aud_cache_hits,
        r.perf.aud_cache_misses,
        r.perf.grid_refreshes,
    )
}

fn main() {
    let nodes = env_usize("DIKNN_PROFILE_NODES", 500).max(10);
    let runs = env_usize("DIKNN_RUNS", 3).max(1);
    let duration = env_f64("DIKNN_DURATION", 20.0).max(1.0);
    let oracle_duration = env_f64("DIKNN_ORACLE_DURATION", duration.min(10.0)).max(1.0);
    let seed = base_seed();

    println!(
        "profile_bench: per-phase engine profile, {} variants",
        VARIANTS.len()
    );
    println!(
        "nodes={nodes} runs={runs} duration={duration}s oracle_duration={oracle_duration}s \
         base_seed={seed} degree={NODE_DEGREE} range={RADIO_RANGE}m max_speed={MAX_SPEED}m/s"
    );

    // ---- timing pass (trace off) ---------------------------------------
    let sc = scenario(nodes, duration);
    let wl = workload_cfg(duration);
    let mut rows: Vec<Row> = Vec::new();
    for v in VARIANTS {
        let mut setup_s = 0.0;
        let mut warm_s = 0.0;
        let mut run_s = 0.0;
        let mut stats = SimStats::default();
        let mut perf = PerfCounters::default();
        for i in 0..runs {
            let t = timed_run(&sc, &wl, v, Experiment::sweep_seed(seed, i));
            setup_s += t.setup_s;
            warm_s += t.warm_s;
            run_s += t.run_s;
            // Event counters sum over runs so `events / run_s` is the
            // true aggregate rate (both numerator and denominator cover
            // every run). Per-seed behaviour identity across variants is
            // asserted separately by the oracle pass.
            stats.events += t.stats.events;
            stats.ev_mac_attempt += t.stats.ev_mac_attempt;
            stats.ev_tx_end += t.stats.ev_tx_end;
            stats.ev_timer += t.stats.ev_timer;
            stats.ev_beacon += t.stats.ev_beacon;
            stats.ev_lifecycle += t.stats.ev_lifecycle;
            perf.aud_cache_hits += t.perf.aud_cache_hits;
            perf.aud_cache_misses += t.perf.aud_cache_misses;
            perf.grid_refreshes += t.perf.grid_refreshes;
        }
        let row = Row {
            variant: v,
            setup_s,
            warm_s,
            run_s,
            stats,
            perf,
        };
        println!(
            "profile variant={:<13} setup={:>7.3}s warm={:>7.3}s run={:>8.3}s \
             events={:>9} ({:>9.0} ev/s) cache hit/miss={}/{} refreshes={}",
            row.variant.name,
            row.setup_s,
            row.warm_s,
            row.run_s,
            row.stats.events,
            row.events_per_sec(),
            row.perf.aud_cache_hits,
            row.perf.aud_cache_misses,
            row.perf.grid_refreshes,
        );
        rows.push(row);
    }

    // ---- oracle pass (trace on, all variants vs sequential brute) ------
    let osc = scenario(nodes, oracle_duration);
    let owl = workload_cfg(oracle_duration);
    let oracles: Vec<(Variant, Oracle)> = VARIANTS
        .iter()
        .map(|&v| (v, oracle_run(&osc, &owl, v, seed)))
        .collect();
    let Some(reference) = oracles
        .iter()
        .find(|(v, _)| v.index == NeighborIndex::BruteForce)
        .map(|(_, o)| o)
    else {
        eprintln!("no brute-force variant configured; nothing to compare against");
        std::process::exit(1);
    };
    let mut equivalent = true;
    for (v, o) in &oracles {
        let ok = o == reference;
        println!(
            "oracle variant={:<13} trace_fp={:016x} events={} {}",
            v.name,
            o.trace_fp,
            o.stats.events,
            if ok { "OK" } else { "DIVERGED" }
        );
        if !ok {
            equivalent = false;
            eprintln!(
                "DIVERGENCE: variant {} disagrees with the sequential brute-force oracle",
                v.name
            );
        }
    }

    // ---- JSON ----------------------------------------------------------
    let row_json: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"profile_bench\",\n  \"schema_version\": 1,\n  \"config\": {{\
         \"nodes\": {nodes}, \"runs\": {runs}, \"base_seed\": {seed}, \
         \"duration_s\": {duration:.1}, \"oracle_duration_s\": {oracle_duration:.1}, \
         \"node_degree\": {NODE_DEGREE:.1}, \"radio_range\": {RADIO_RANGE:.1}, \
         \"max_speed\": {MAX_SPEED:.1}}},\n  \"variants\": [\n{}\n  ],\n  \
         \"oracle\": {{\"trace_fingerprint\": \"{:016x}\", \
         \"all_variants_bit_identical\": {equivalent}}}\n}}\n",
        row_json.join(",\n"),
        reference.trace_fp,
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
    }
    match std::fs::write("results/BENCH_profile.json", &json) {
        Ok(()) => println!("wrote results/BENCH_profile.json"),
        Err(e) => {
            eprintln!("error: writing results/BENCH_profile.json: {e}");
            std::process::exit(2);
        }
    }
    if equivalent {
        println!("OK: every variant matches the sequential oracle's trace fingerprint");
    } else {
        eprintln!("FAIL: a variant diverged from the sequential oracle — see above");
        std::process::exit(1);
    }
}
