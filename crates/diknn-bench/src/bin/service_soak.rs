//! `service_soak` — the resident service mode under churn, with a
//! snapshot/restore equivalence check.
//!
//! One long-lived simulator is driven in epochs by streaming arrivals
//! (`RateSchedule`) over a churning population, twice:
//!
//! * **reference** — straight to the horizon, and
//! * **interrupted** — to the midpoint, then snapshot → drop → restore →
//!   on to the horizon.
//!
//! Three hard checks decide the exit code (CI's soak-smoke job relies on
//! them):
//!
//! 1. the interrupted run's flight-recorder trace is *bit-identical* to
//!    the reference run's (the restore-equivalence law),
//! 2. every issued query reaches a terminal classification and the run
//!    passes the full invariant law set (laws 1–9),
//! 3. the rolling metrics stay finite at every sampled epoch.
//!
//! Output: a human log on stdout and in `results/service_soak.txt`, the
//! final metrics in scrape-friendly line format in
//! `results/service_soak_metrics.prom`, and machine-readable
//! `results/BENCH_service_soak.json`.
//!
//! Knobs:
//!
//! * `DIKNN_SEED`       — run seed (default 1000)
//! * `DIKNN_DURATION`   — simulated seconds (default 300)
//! * `DIKNN_SVC_NODES`  — node count (default 150)
//! * `DIKNN_SVC_RATE`   — arrival rate in queries/sec (default 0.5)
//! * `DIKNN_SVC_EPOCH`  — epoch length in seconds (default 5)
//! * `DIKNN_SVC_SPEED`  — max node speed in m/s (default 5)
//! * `DIKNN_SVC_CHURN`  — churning population fraction (default 0.2)
//! * `DIKNN_SVC_K`      — neighbour count k (default 10)

// Wall-clock timing never feeds back into simulation state, so the
// determinism ban is lifted here (the xtask pass is exempted per call site
// with `// lint: wall-clock-ok`).
#![allow(clippy::disallowed_methods)]

use std::time::Instant; // lint: wall-clock-ok (host-side benchmark timing)

use diknn_bench::base_seed;
use diknn_core::{KnnProtocol, QueryStatus, ServingConfig};
use diknn_sim::FaultPlan;
use diknn_workloads::{invariants, RateSchedule, ScenarioConfig, ServiceConfig, ServiceRun};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn service_cfg(
    nodes: usize,
    duration: f64,
    rate: f64,
    epoch_s: f64,
    speed: f64,
    churn: f64,
    k: usize,
) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(
        ScenarioConfig {
            nodes,
            max_speed: speed,
            duration,
            ..ScenarioConfig::default()
        },
        RateSchedule::constant(rate),
    );
    cfg.k = k;
    cfg.epoch_s = epoch_s;
    cfg.diknn.serving = ServingConfig::enabled();
    if churn > 0.0 {
        cfg.faults = FaultPlan::churning(churn, 60.0, 20.0, 5.0, (duration - 20.0).max(5.0));
    }
    cfg
}

fn metrics_finite(m: &diknn_workloads::ServiceMetrics) -> bool {
    m.sim_time_s.is_finite()
        && m.completion_rate.is_finite()
        && m.latency_p50_s.is_finite()
        && m.latency_p95_s.is_finite()
        && m.joules_per_query.is_finite()
}

fn main() {
    let seed = base_seed();
    let duration = env_f64("DIKNN_DURATION", 300.0).max(20.0);
    let nodes = env_usize("DIKNN_SVC_NODES", 150).max(10);
    let rate = env_f64("DIKNN_SVC_RATE", 0.5).max(0.01);
    let epoch_s = env_f64("DIKNN_SVC_EPOCH", 5.0).max(0.5);
    let speed = env_f64("DIKNN_SVC_SPEED", 5.0).max(0.0);
    let churn = env_f64("DIKNN_SVC_CHURN", 0.2).clamp(0.0, 1.0);
    let k = env_usize("DIKNN_SVC_K", 10).max(1);
    let epochs = (duration / epoch_s).floor() as u64;
    let cut = epochs / 2;

    let mut out = String::new();
    let mut line = |s: String| {
        println!("{s}");
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "service_soak: resident DIKNN service, {nodes} nodes, {rate} q/s, \
         churn {churn}, {epochs} epochs x {epoch_s}s"
    ));
    line(format!(
        "seed={seed} duration={duration}s speed={speed} k={k} snapshot_at_epoch={cut}"
    ));

    let cfg = service_cfg(nodes, duration, rate, epoch_s, speed, churn, k);

    // Reference: uninterrupted run, sampling metrics every 10 epochs.
    let t0 = Instant::now(); // lint: wall-clock-ok
    let mut reference = ServiceRun::new(cfg.clone(), seed);
    let mut metrics_ok = true;
    let mut done = 0;
    while done < epochs {
        let n = 10.min(epochs - done);
        reference.run_epochs(n);
        done += n;
        let m = reference.metrics();
        if !metrics_finite(&m) {
            metrics_ok = false;
            line(format!("NON-FINITE metrics at epoch {done}: {m:?}"));
        }
    }
    let reference_wall = t0.elapsed().as_secs_f64();
    let reference_fp = reference.trace_fingerprint();
    let final_metrics = reference.metrics();
    line(format!(
        "reference: {} injected, {} issued, completion {:.3}, p50 {:.3}s, \
         p95 {:.3}s, {:.4} J/query, wall {:.1}s",
        final_metrics.injected,
        final_metrics.issued,
        final_metrics.completion_rate,
        final_metrics.latency_p50_s,
        final_metrics.latency_p95_s,
        final_metrics.joules_per_query,
        reference_wall,
    ));

    // Interrupted twin: run to the midpoint, serialize, drop, restore,
    // run to the horizon.
    let t1 = Instant::now(); // lint: wall-clock-ok
    let mut head = ServiceRun::new(cfg.clone(), seed);
    head.run_epochs(cut);
    let snapshot = head.snapshot();
    let snap_bytes = snapshot.len();
    drop(head);
    let mut restored = match ServiceRun::restore(&snapshot, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: snapshot did not restore: {e:?}");
            std::process::exit(1);
        }
    };
    restored.run_epochs(epochs - cut);
    let interrupted_wall = t1.elapsed().as_secs_f64();
    let restored_fp = restored.trace_fingerprint();
    let equivalent = restored_fp == reference_fp && restored.metrics() == final_metrics;
    line(format!(
        "interrupted: snapshot {snap_bytes} B at epoch {cut}, trace fp \
         {restored_fp:016x} vs {reference_fp:016x}, equivalent={equivalent}, \
         wall {interrupted_wall:.1}s"
    ));

    // Tear down the reference run and check the law set + accounting.
    let prom = reference.metrics_export();
    let (protocol, ctx) = reference.finish();
    let violations = invariants::check(ctx.trace(), protocol.outcomes());
    for v in &violations {
        line(format!("VIOLATION: {v}"));
    }
    let non_terminal = protocol
        .outcomes()
        .iter()
        .filter(|o| o.status == QueryStatus::Pending)
        .count();
    let all_terminal = non_terminal == 0;
    line(format!(
        "laws: {} violations; terminal: {} of {} outcomes",
        violations.len(),
        protocol.outcomes().len() - non_terminal,
        protocol.outcomes().len(),
    ));

    let json = format!(
        "{{\n  \"bench\": \"service_soak\",\n  \"schema_version\": 1,\n  \
         \"config\": {{\"seed\": {seed}, \"duration_s\": {duration:.1}, \
         \"nodes\": {nodes}, \"rate_qps\": {rate}, \"epoch_s\": {epoch_s}, \
         \"max_speed\": {speed}, \"churn_fraction\": {churn}, \"k\": {k}, \
         \"epochs\": {epochs}, \"snapshot_epoch\": {cut}}},\n  \
         \"metrics\": {{\"injected\": {}, \"issued\": {}, \"never_issued\": {}, \
         \"terminal\": {}, \"completion_rate\": {:.4}, \"latency_p50_s\": {:.6}, \
         \"latency_p95_s\": {:.6}, \"joules_per_query\": {:.6}, \
         \"nodes_alive\": {}}},\n  \
         \"checks\": {{\"snapshot_bytes\": {snap_bytes}, \
         \"restore_equivalent\": {equivalent}, \"all_terminal\": {all_terminal}, \
         \"metrics_finite\": {metrics_ok}, \"invariant_violations\": {}}},\n  \
         \"wall\": {{\"reference_s\": {reference_wall:.3}, \
         \"interrupted_s\": {interrupted_wall:.3}}}\n}}\n",
        final_metrics.injected,
        final_metrics.issued,
        final_metrics.never_issued,
        final_metrics.terminal,
        final_metrics.completion_rate,
        final_metrics.latency_p50_s,
        final_metrics.latency_p95_s,
        final_metrics.joules_per_query,
        final_metrics.nodes_alive,
        violations.len(),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
    }
    for (path, contents) in [
        ("results/BENCH_service_soak.json", &json),
        ("results/service_soak.txt", &out),
        ("results/service_soak_metrics.prom", &prom),
    ] {
        match std::fs::write(path, contents) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut failed = false;
    if !equivalent {
        eprintln!("FAIL: restored run diverged from the uninterrupted reference");
        failed = true;
    }
    if !all_terminal {
        eprintln!("FAIL: {non_terminal} queries never reached a terminal classification");
        failed = true;
    }
    if !violations.is_empty() {
        eprintln!("FAIL: {} invariant violations", violations.len());
        failed = true;
    }
    if !metrics_ok {
        eprintln!("FAIL: rolling metrics went non-finite");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: restore bit-identical over {epochs} epochs, {} queries all \
         classified, laws clean",
        final_metrics.issued
    );
}
