//! Figure 8 (a–d): scalability in k.
//!
//! Varies k from 20 to 100 at µmax = 10 m/s and prints, for DIKNN,
//! KPT+KNNB and Peer-tree: (a) query latency, (b) energy consumption,
//! (c) post-accuracy, (d) pre-accuracy.
//!
//! Expected shapes (paper §5.3): DIKNN lowest latency/energy with the
//! flattest growth; KPT latency/energy grow faster and its energy
//! overtakes everyone near k = 100 (tree collisions); Peer-tree pays its
//! clusterhead hierarchy everywhere; DIKNN keeps the highest accuracy.

use diknn_baselines::{KptConfig, PeerTreeConfig};
use diknn_bench::{default_scenario, default_workload, print_csv_header, print_row, run_cell};
use diknn_core::DiknnConfig;
use diknn_workloads::{ProtocolKind, WorkloadConfig};

fn main() {
    println!(
        "Figure 8: impact of k (runs per cell: {}, {} s simulated)\n",
        diknn_bench::runs(),
        diknn_bench::duration()
    );
    print_csv_header();
    for k in [20usize, 40, 60, 80, 100] {
        for proto in [
            ProtocolKind::Diknn(DiknnConfig::default()),
            ProtocolKind::Kpt(KptConfig::default()),
            ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ] {
            let name = proto.name();
            let agg = run_cell(
                proto,
                default_scenario(),
                WorkloadConfig {
                    k,
                    ..default_workload()
                },
            );
            print_row("fig8", "k", k as f64, name, &agg);
        }
        println!();
    }
}
