//! Figure 9 (a–d): impact of node mobility.
//!
//! Varies µmax from 5 to 30 m/s at k = 40 and prints latency, energy and
//! pre-/post-accuracy for the three protocols.
//!
//! Expected shapes (paper §5.4): DIKNN stays flat in latency and energy
//! and keeps high accuracy; KPT degrades with speed (tree maintenance,
//! stranded subtrees); Peer-tree's accuracy collapses (stale clusterhead
//! tables) and its maintenance energy grows.

use diknn_baselines::{KptConfig, PeerTreeConfig};
use diknn_bench::{default_scenario, default_workload, print_csv_header, print_row, run_cell};
use diknn_core::DiknnConfig;
use diknn_workloads::{ProtocolKind, ScenarioConfig, WorkloadConfig};

fn main() {
    println!(
        "Figure 9: impact of mobility (k = 40, runs per cell: {})\n",
        diknn_bench::runs()
    );
    print_csv_header();
    for mob in [5.0f64, 10.0, 15.0, 20.0, 25.0, 30.0] {
        for proto in [
            ProtocolKind::Diknn(DiknnConfig::default()),
            ProtocolKind::Kpt(KptConfig::default()),
            ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ] {
            let name = proto.name();
            let agg = run_cell(
                proto,
                ScenarioConfig {
                    max_speed: mob,
                    ..default_scenario()
                },
                WorkloadConfig {
                    k: 40,
                    ..default_workload()
                },
            );
            print_row("fig9", "mobility", mob, name, &agg);
        }
        println!();
    }
}
