//! §4.3 rendezvous ablation: dynamic boundary adjustment on vs. off, on a
//! spatially irregular (clustered) field where KNNB's uniform-density
//! assumption fails — the scenario rendezvous was designed for.
//!
//! With rendezvous the sectors exchange explored counts, stop early when
//! the network-wide estimate suffices, and extend when it falls short; the
//! accuracy/energy trade should beat the static-boundary variant.

use diknn_bench::{default_workload, print_csv_header, print_row, run_cell};
use diknn_core::DiknnConfig;
use diknn_mobility::placement::ClusterConfig;
use diknn_workloads::{PlacementKind, ProtocolKind, ScenarioConfig, WorkloadConfig};

fn main() {
    println!(
        "Rendezvous ablation (k = 40, clustered field, runs per cell: {})\n",
        diknn_bench::runs()
    );
    print_csv_header();
    for placement in ["uniform", "clustered"] {
        for rendezvous in [true, false] {
            let cfg = DiknnConfig {
                rendezvous,
                ..DiknnConfig::default()
            };
            let scenario = ScenarioConfig {
                placement: if placement == "clustered" {
                    PlacementKind::Clustered(ClusterConfig::default())
                } else {
                    PlacementKind::Uniform
                },
                ..diknn_bench::default_scenario()
            };
            let agg = run_cell(
                ProtocolKind::Diknn(cfg),
                scenario,
                WorkloadConfig {
                    k: 40,
                    ..default_workload()
                },
            );
            let label: &'static str = match (placement, rendezvous) {
                ("uniform", true) => "uni+rdv",
                ("uniform", false) => "uni-rdv",
                ("clustered", true) => "clu+rdv",
                _ => "clu-rdv",
            };
            print_row(
                "ablation_rendezvous",
                "rdv",
                rendezvous as u8 as f64,
                label,
                &agg,
            );
        }
        println!();
    }
}
