//! §3.3: "Such a cone-shape itinerary structure is highly adaptive to
//! various degrees of parallelism."
//!
//! Sweeps the sector count S from 1 (single itinerary, the \[31\]-style
//! baseline) to 16. More sectors ⇒ more parallel traversal ⇒ lower latency,
//! at the cost of more result-return paths (energy) and more concurrent
//! channel contention.

use diknn_bench::{default_scenario, default_workload, print_csv_header, print_row, run_cell};
use diknn_core::DiknnConfig;
use diknn_workloads::{ProtocolKind, WorkloadConfig};

fn main() {
    println!(
        "Sector-count ablation (k = 40, µmax = 10 m/s, runs per cell: {})\n",
        diknn_bench::runs()
    );
    print_csv_header();
    for sectors in [1usize, 2, 4, 8, 16] {
        let cfg = DiknnConfig {
            sectors,
            ..DiknnConfig::default()
        };
        let agg = run_cell(
            ProtocolKind::Diknn(cfg),
            default_scenario(),
            WorkloadConfig {
                k: 40,
                ..default_workload()
            },
        );
        print_row("ablation_sectors", "S", sectors as f64, "DIKNN", &agg);
    }
}
