//! `scale_bench` — node-count scaling of the radio hot path, the sweep
//! harness and the sharded engine (BENCH JSON emission).
//!
//! Sweeps node count × neighbor index {grid, brute-force} × sweep threads
//! {1, all} × intra-run shards (`DIKNN_SHARDS`, default `1,4`). Every
//! cell runs the same seeded DIKNN runs (constant node degree 20, so the
//! field grows with the node count) and reports a per-phase wall-time
//! breakdown:
//!
//! * `setup` — mobility-plan build + workload generation,
//! * `warm`  — `Simulator::new` (includes the grid build) plus the warm
//!   beacon round (`warm_neighbor_tables`), the paper-setup phase whose
//!   all-pairs cost the spatial grid removes,
//! * `run`   — the event loop proper,
//!
//! plus events/sec over the run phase and a behaviour fingerprint
//! (`SimStats` + total energy bits) per run. The grid is a pure index,
//! the sweep a pure executor, and the sharded loop a pure scheduler:
//! every cell of the same node count must produce **bit-identical**
//! fingerprints whatever the index, thread count or shard count; the
//! binary exits non-zero if they diverge (CI's bench-smoke job relies on
//! this — it is the scale-size witness of DESIGN.md §15's bit-identity
//! claim).
//!
//! Output: a human table on stdout and machine-readable
//! `results/BENCH_scale.json` (schema 3, see `diknn_bench::report`:
//! unmeasured ratios are `null`, a collapsed thread axis is flagged as
//! `degenerate_parallel` instead of reporting a vacuous 1.000 column).
//!
//! The brute-force oracle is an O(n²) scan per transmission and exists
//! only to witness equivalence; above [`BRUTE_MAX_NODES`] nodes it is
//! skipped (with a printed note) so the grid curve can extend to 10k
//! nodes without an hours-long oracle run — its ratios are then `null`.
//!
//! Knobs (this binary defaults smaller than the paper bins):
//!
//! * `DIKNN_RUNS`        — seeded runs per cell (default 3)
//! * `DIKNN_SEED`        — base seed (default 1000)
//! * `DIKNN_DURATION`    — simulated seconds per run (default 30)
//! * `DIKNN_THREADS`     — "all threads" axis (default: available cores)
//! * `DIKNN_SHARDS`      — intra-run shard axis (default `1,4`)
//! * `DIKNN_SCALE_NODES` — comma-separated node counts
//!   (default `250,500,1000,2000,5000,10000`)

// Wall-clock timing is the entire point of this binary; it never feeds
// back into simulation state, so the determinism ban is lifted here (the
// xtask pass is exempted per call site with `// lint: wall-clock-ok`).
#![allow(clippy::disallowed_methods)]

use std::time::Instant; // lint: wall-clock-ok (host-side benchmark timing)

use diknn_bench::report::{ratio, render_json, CellRow, ReportConfig, SpeedupRow};
use diknn_bench::{base_seed, shard_counts, threads};
use diknn_core::{Diknn, DiknnConfig};
use diknn_sim::{NeighborIndex, SimStats, Simulator};
use diknn_workloads::{
    run_sharded_to_limit, workload, Experiment, ParallelSweep, ScenarioConfig, WorkloadConfig,
};

/// Radio range (m); matches `SimConfig::default` and sizes the grid cells.
const RADIO_RANGE: f64 = 20.0;
/// Constant node degree: the field grows as `sqrt(n)` so local density —
/// and thus per-node work — stays fixed while global work scales.
const NODE_DEGREE: f64 = 20.0;
/// RWP speed cap (m/s); nonzero so the grid's incremental refresh and
/// drift padding are on the measured path.
const MAX_SPEED: f64 = 5.0;
/// Largest population the brute-force equivalence oracle still runs at.
/// The oracle is O(n²) per transmission; beyond this it would dominate
/// the whole bench without adding evidence (grid-vs-brute identity is
/// already witnessed at every count up to here).
const BRUTE_MAX_NODES: usize = 2000;

/// Timings and behaviour fingerprint of one seeded run.
struct RunOut {
    setup_s: f64,
    warm_s: f64,
    run_s: f64,
    stats: SimStats,
    energy_bits: u64,
}

/// One benchmark cell: node count × index × thread count × shard count,
/// `runs` seeds.
struct Cell {
    nodes: usize,
    index: NeighborIndex,
    threads: usize,
    shards: usize,
    /// Wall time of the whole sweep (what parallelism improves).
    wall_s: f64,
    /// Per-phase times summed over runs (CPU-side cost of each phase).
    setup_s: f64,
    warm_s: f64,
    run_s: f64,
    events: u64,
    fingerprints: Vec<(SimStats, u64)>,
}

impl Cell {
    fn index_name(&self) -> &'static str {
        index_name(self.index)
    }

    fn events_per_sec(&self) -> f64 {
        if self.run_s > 0.0 {
            self.events as f64 / self.run_s
        } else {
            0.0
        }
    }

    fn row(&self) -> CellRow {
        CellRow {
            nodes: self.nodes,
            index: self.index_name(),
            threads: self.threads,
            shards: self.shards,
            runs: self.fingerprints.len(),
            wall_s: self.wall_s,
            setup_s: self.setup_s,
            warm_s: self.warm_s,
            run_s: self.run_s,
            events: self.events,
            events_per_sec: self.events_per_sec(),
        }
    }
}

fn index_name(index: NeighborIndex) -> &'static str {
    match index {
        NeighborIndex::Grid => "grid",
        NeighborIndex::BruteForce => "brute",
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Node counts from `DIKNN_SCALE_NODES` (comma-separated).
fn scale_nodes() -> Vec<usize> {
    let default = vec![250, 500, 1000, 2000, 5000, 10000];
    match std::env::var("DIKNN_SCALE_NODES") {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            if parsed.is_empty() {
                default
            } else {
                parsed
            }
        }
        Err(_) => default,
    }
}

/// One seeded DIKNN run with per-phase timing. Identical inputs to the
/// sequential experiment driver for the same `(scenario, workload,
/// seed)`; only the neighbor index and the intra-run shard count differ
/// between cells — and neither is allowed to change the fingerprint.
fn run_one(
    scenario: &ScenarioConfig,
    wl: &WorkloadConfig,
    index: NeighborIndex,
    shards: usize,
    seed: u64,
) -> RunOut {
    let t0 = Instant::now(); // lint: wall-clock-ok
    let plans = scenario.build(seed);
    let requests = workload::generate(scenario, wl, seed);
    let mut cfg = scenario.sim_config();
    cfg.neighbor_index = index;
    let setup_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now(); // lint: wall-clock-ok
    let mut sim = Simulator::new(
        cfg,
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        seed,
    );
    sim.warm_neighbor_tables();
    let warm_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now(); // lint: wall-clock-ok
    if shards > 1 {
        run_sharded_to_limit(&mut sim, shards);
    } else {
        sim.run();
    }
    let run_s = t2.elapsed().as_secs_f64();

    let (_protocol, ctx) = sim.into_parts();
    RunOut {
        setup_s,
        warm_s,
        run_s,
        stats: *ctx.stats(),
        energy_bits: ctx.total_energy_j().to_bits(),
    }
}

fn bench_cell(
    scenario: &ScenarioConfig,
    wl: &WorkloadConfig,
    index: NeighborIndex,
    thread_count: usize,
    shards: usize,
    runs: usize,
    seed: u64,
) -> Cell {
    let sweep = ParallelSweep::new(thread_count);
    let t0 = Instant::now(); // lint: wall-clock-ok
    let outs = sweep.map(runs, |i| {
        run_one(scenario, wl, index, shards, Experiment::sweep_seed(seed, i))
    });
    let wall_s = t0.elapsed().as_secs_f64();
    Cell {
        nodes: scenario.nodes,
        index,
        threads: sweep.threads(),
        shards,
        wall_s,
        setup_s: outs.iter().map(|o| o.setup_s).sum(),
        warm_s: outs.iter().map(|o| o.warm_s).sum(),
        run_s: outs.iter().map(|o| o.run_s).sum(),
        events: outs.iter().map(|o| o.stats.events).sum(),
        fingerprints: outs.iter().map(|o| (o.stats, o.energy_bits)).collect(),
    }
}

fn print_cell(cell: &Cell) {
    println!(
        "scale nodes={:<5} index={:<5} threads={:<2} shards={:<2} wall={:>8.3}s \
         setup={:>7.3}s warm={:>7.3}s run={:>8.3}s events={:>9} ({:>9.0} ev/s)",
        cell.nodes,
        cell.index_name(),
        cell.threads,
        cell.shards,
        cell.wall_s,
        cell.setup_s,
        cell.warm_s,
        cell.run_s,
        cell.events,
        cell.events_per_sec(),
    );
}

fn compute_speedup(cells: &[Cell], nodes: usize, t_max: usize, max_shards: usize) -> SpeedupRow {
    let find = |index: NeighborIndex, threads: usize, shards: usize| {
        cells.iter().find(|c| {
            c.nodes == nodes && c.index == index && c.threads == threads && c.shards == shards
        })
    };
    let grid_1 = find(NeighborIndex::Grid, 1, 1);
    let brute_1 = find(NeighborIndex::BruteForce, 1, 1);
    let grid_t = find(NeighborIndex::Grid, t_max, 1);
    let grid_sharded = find(NeighborIndex::Grid, 1, max_shards);
    let vs_brute = |f: fn(&Cell) -> f64| match (grid_1, brute_1) {
        (Some(g), Some(b)) => ratio(f(b), f(g)),
        _ => None,
    };
    SpeedupRow {
        nodes,
        warm_grid_vs_brute: vs_brute(|c| c.warm_s),
        run_grid_vs_brute: vs_brute(|c| c.run_s),
        wall_grid_vs_brute: vs_brute(|c| c.wall_s),
        sweep_parallel_vs_serial_grid: match (grid_1, grid_t) {
            (Some(g), Some(gt)) if t_max > 1 => ratio(g.wall_s, gt.wall_s),
            // Single-thread axis (or missing cell): unmeasurable, not 1.0.
            _ => None,
        },
        shard_wall_speedup: match (grid_1, grid_sharded) {
            (Some(g), Some(gs)) if max_shards > 1 => ratio(g.wall_s, gs.wall_s),
            _ => None,
        },
    }
}

fn opt_display(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}x"),
        None => "n/a".to_string(),
    }
}

fn main() {
    let runs = env_usize("DIKNN_RUNS", 3).max(1);
    let seed = base_seed();
    let duration = env_f64("DIKNN_DURATION", 30.0).max(1.0);
    let t_max = threads();
    let detected = ParallelSweep::available().threads();
    let node_counts = scale_nodes();
    let shards_axis = shard_counts();
    let max_shards = *shards_axis.last().unwrap_or(&1);
    // On a single-core box the {1, all} thread axis collapses to {1}; the
    // JSON records threads_detected + degenerate_parallel so the missing
    // comparison is flagged, never reported as a vacuous 1.000.
    let thread_counts: Vec<usize> = if t_max > 1 { vec![1, t_max] } else { vec![1] };
    let degenerate_parallel = t_max <= 1;

    println!(
        "scale_bench: radio-index (grid vs brute), sweep (1 vs {t_max} threads) and \
         sharded-engine (shards {shards_axis:?}) scaling"
    );
    println!(
        "runs={runs} base_seed={seed} duration={duration}s degree={NODE_DEGREE} \
         range={RADIO_RANGE}m max_speed={MAX_SPEED}m/s nodes={node_counts:?} \
         threads_detected={detected}"
    );
    if degenerate_parallel {
        println!(
            "note: sweep thread axis collapsed to {{1}} (threads_max={t_max}); the \
             parallel-vs-serial column is unmeasurable here and will be null"
        );
    }

    let mut cells: Vec<Cell> = Vec::new();
    let mut equivalent = true;
    for &n in &node_counts {
        let scenario = ScenarioConfig {
            nodes: n,
            max_speed: MAX_SPEED,
            duration,
            ..ScenarioConfig::default()
        }
        .with_node_degree(NODE_DEGREE, RADIO_RANGE);
        let wl = WorkloadConfig {
            last_at: (duration - 5.0).max(duration * 0.5),
            ..WorkloadConfig::default()
        };
        let group_start = cells.len();
        let indexes: &[NeighborIndex] = if n <= BRUTE_MAX_NODES {
            &[NeighborIndex::Grid, NeighborIndex::BruteForce]
        } else {
            println!(
                "note: brute-force oracle skipped at nodes={n} \
                 (O(n\u{b2}) scan; gated above {BRUTE_MAX_NODES}) — its ratios are null"
            );
            &[NeighborIndex::Grid]
        };
        for &index in indexes {
            for &tc in &thread_counts {
                let cell = bench_cell(&scenario, &wl, index, tc, 1, runs, seed);
                print_cell(&cell);
                cells.push(cell);
            }
        }
        // The sharded-engine axis: grid index, serial sweep (the intra-run
        // workers are the parallelism being measured).
        for &sc in shards_axis.iter().filter(|&&sc| sc > 1) {
            let cell = bench_cell(&scenario, &wl, NeighborIndex::Grid, 1, sc, runs, seed);
            print_cell(&cell);
            cells.push(cell);
        }
        // The index is a pure lookup structure, the sweep a pure executor
        // and the sharded loop a pure scheduler: every variant must have
        // produced the same runs.
        let (reference, rest) = cells[group_start..].split_at(1);
        for cell in rest {
            if cell.fingerprints != reference[0].fingerprints {
                equivalent = false;
                eprintln!(
                    "DIVERGENCE at nodes={n}: index={} threads={} shards={} disagrees with \
                     index={} threads={} shards={}",
                    cell.index_name(),
                    cell.threads,
                    cell.shards,
                    reference[0].index_name(),
                    reference[0].threads,
                    reference[0].shards,
                );
            }
        }
    }

    let speedups: Vec<SpeedupRow> = node_counts
        .iter()
        .map(|&n| compute_speedup(&cells, n, t_max, max_shards))
        .collect();
    for s in &speedups {
        println!(
            "speedup nodes={:<5} warm grid/brute={:>6} run grid/brute={:>6} \
             wall grid/brute={:>6} sweep 1->{} threads={:>6} shards 1->{}={:>6}",
            s.nodes,
            opt_display(s.warm_grid_vs_brute),
            opt_display(s.run_grid_vs_brute),
            opt_display(s.wall_grid_vs_brute),
            t_max,
            opt_display(s.sweep_parallel_vs_serial_grid),
            max_shards,
            opt_display(s.shard_wall_speedup),
        );
    }

    let report_cfg = ReportConfig {
        runs,
        base_seed: seed,
        duration_s: duration,
        node_degree: NODE_DEGREE,
        radio_range: RADIO_RANGE,
        max_speed: MAX_SPEED,
        threads_max: t_max,
        threads_detected: detected,
        degenerate_parallel,
        brute_max_nodes: BRUTE_MAX_NODES,
        node_counts: node_counts.clone(),
        shard_counts: shards_axis.clone(),
    };
    let cell_rows: Vec<CellRow> = cells.iter().map(Cell::row).collect();
    let json = render_json(&report_cfg, &cell_rows, &speedups, equivalent);
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
    }
    match std::fs::write("results/BENCH_scale.json", &json) {
        Ok(()) => println!("wrote results/BENCH_scale.json"),
        Err(e) => {
            eprintln!("error: writing results/BENCH_scale.json: {e}");
            std::process::exit(2);
        }
    }
    if equivalent {
        println!("OK: all index/thread/shard variants produced bit-identical run fingerprints");
    } else {
        eprintln!("FAIL: neighbor-index, thread or shard variants diverged — see above");
        std::process::exit(1);
    }
}
