//! `scale_bench` — node-count scaling of the radio hot path and the sweep
//! harness (BENCH JSON emission).
//!
//! Sweeps node count × neighbor index {grid, brute-force} × sweep threads
//! {1, all}. Every cell runs the same seeded DIKNN runs (constant node
//! degree 20, so the field grows with the node count) and reports a
//! per-phase wall-time breakdown:
//!
//! * `setup` — mobility-plan build + workload generation,
//! * `warm`  — `Simulator::new` (includes the grid build) plus the warm
//!   beacon round (`warm_neighbor_tables`), the paper-setup phase whose
//!   all-pairs cost the spatial grid removes,
//! * `run`   — the event loop proper,
//!
//! plus events/sec over the run phase and a behaviour fingerprint
//! (`SimStats` + total energy bits) per run. The grid is a pure index:
//! every cell of the same node count must produce **bit-identical**
//! fingerprints whatever the index or thread count; the binary exits
//! non-zero if they diverge (CI's bench-smoke job relies on this).
//!
//! Output: a human table on stdout and machine-readable
//! `results/BENCH_scale.json`.
//!
//! The brute-force oracle is an O(n²) scan per transmission and exists
//! only to witness equivalence; above [`BRUTE_MAX_NODES`] nodes it is
//! skipped (with a printed note) so the grid curve can extend to 10k
//! nodes without an hours-long oracle run. The JSON carries a dedicated
//! `events_per_sec_series` (grid, single-thread) for plotting the
//! engine's throughput curve across the population axis.
//!
//! Knobs (this binary defaults smaller than the paper bins — the default
//! matrix is 6 node counts × up to 2 indexes × up to 2 thread counts):
//!
//! * `DIKNN_RUNS`        — seeded runs per cell (default 3)
//! * `DIKNN_SEED`        — base seed (default 1000)
//! * `DIKNN_DURATION`    — simulated seconds per run (default 30)
//! * `DIKNN_THREADS`     — "all threads" axis (default: available cores)
//! * `DIKNN_SCALE_NODES` — comma-separated node counts
//!   (default `250,500,1000,2000,5000,10000`)

// Wall-clock timing is the entire point of this binary; it never feeds
// back into simulation state, so the determinism ban is lifted here (the
// xtask pass is exempted per call site with `// lint: wall-clock-ok`).
#![allow(clippy::disallowed_methods)]

use std::time::Instant; // lint: wall-clock-ok (host-side benchmark timing)

use diknn_bench::{base_seed, threads};
use diknn_core::{Diknn, DiknnConfig};
use diknn_sim::{NeighborIndex, SimStats, Simulator};
use diknn_workloads::{workload, Experiment, ParallelSweep, ScenarioConfig, WorkloadConfig};

/// Radio range (m); matches `SimConfig::default` and sizes the grid cells.
const RADIO_RANGE: f64 = 20.0;
/// Constant node degree: the field grows as `sqrt(n)` so local density —
/// and thus per-node work — stays fixed while global work scales.
const NODE_DEGREE: f64 = 20.0;
/// RWP speed cap (m/s); nonzero so the grid's incremental refresh and
/// drift padding are on the measured path.
const MAX_SPEED: f64 = 5.0;
/// Largest population the brute-force equivalence oracle still runs at.
/// The oracle is O(n²) per transmission; beyond this it would dominate
/// the whole bench without adding evidence (grid-vs-brute identity is
/// already witnessed at every count up to here).
const BRUTE_MAX_NODES: usize = 2000;

/// Timings and behaviour fingerprint of one seeded run.
struct RunOut {
    setup_s: f64,
    warm_s: f64,
    run_s: f64,
    stats: SimStats,
    energy_bits: u64,
}

/// One benchmark cell: node count × index × thread count, `runs` seeds.
struct Cell {
    nodes: usize,
    index: NeighborIndex,
    threads: usize,
    /// Wall time of the whole sweep (what parallelism improves).
    wall_s: f64,
    /// Per-phase times summed over runs (CPU-side cost of each phase).
    setup_s: f64,
    warm_s: f64,
    run_s: f64,
    events: u64,
    fingerprints: Vec<(SimStats, u64)>,
}

impl Cell {
    fn index_name(&self) -> &'static str {
        index_name(self.index)
    }

    fn events_per_sec(&self) -> f64 {
        if self.run_s > 0.0 {
            self.events as f64 / self.run_s
        } else {
            0.0
        }
    }
}

fn index_name(index: NeighborIndex) -> &'static str {
    match index {
        NeighborIndex::Grid => "grid",
        NeighborIndex::BruteForce => "brute",
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Node counts from `DIKNN_SCALE_NODES` (comma-separated).
fn scale_nodes() -> Vec<usize> {
    let default = vec![250, 500, 1000, 2000, 5000, 10000];
    match std::env::var("DIKNN_SCALE_NODES") {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            if parsed.is_empty() {
                default
            } else {
                parsed
            }
        }
        Err(_) => default,
    }
}

/// One seeded DIKNN run with per-phase timing. Identical inputs to the
/// sequential experiment driver for the same `(scenario, workload, seed)`;
/// only the neighbor index differs between grid and brute cells.
fn run_one(
    scenario: &ScenarioConfig,
    wl: &WorkloadConfig,
    index: NeighborIndex,
    seed: u64,
) -> RunOut {
    let t0 = Instant::now(); // lint: wall-clock-ok
    let plans = scenario.build(seed);
    let requests = workload::generate(scenario, wl, seed);
    let mut cfg = scenario.sim_config();
    cfg.neighbor_index = index;
    let setup_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now(); // lint: wall-clock-ok
    let mut sim = Simulator::new(
        cfg,
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        seed,
    );
    sim.warm_neighbor_tables();
    let warm_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now(); // lint: wall-clock-ok
    sim.run();
    let run_s = t2.elapsed().as_secs_f64();

    let (_protocol, ctx) = sim.into_parts();
    RunOut {
        setup_s,
        warm_s,
        run_s,
        stats: *ctx.stats(),
        energy_bits: ctx.total_energy_j().to_bits(),
    }
}

fn bench_cell(
    scenario: &ScenarioConfig,
    wl: &WorkloadConfig,
    index: NeighborIndex,
    thread_count: usize,
    runs: usize,
    seed: u64,
) -> Cell {
    let sweep = ParallelSweep::new(thread_count);
    let t0 = Instant::now(); // lint: wall-clock-ok
    let outs = sweep.map(runs, |i| {
        run_one(scenario, wl, index, Experiment::sweep_seed(seed, i))
    });
    let wall_s = t0.elapsed().as_secs_f64();
    Cell {
        nodes: scenario.nodes,
        index,
        threads: sweep.threads(),
        wall_s,
        setup_s: outs.iter().map(|o| o.setup_s).sum(),
        warm_s: outs.iter().map(|o| o.warm_s).sum(),
        run_s: outs.iter().map(|o| o.run_s).sum(),
        events: outs.iter().map(|o| o.stats.events).sum(),
        fingerprints: outs.iter().map(|o| (o.stats, o.energy_bits)).collect(),
    }
}

fn print_cell(cell: &Cell) {
    println!(
        "scale nodes={:<5} index={:<5} threads={:<2} wall={:>8.3}s setup={:>7.3}s \
         warm={:>7.3}s run={:>8.3}s events={:>9} ({:>9.0} ev/s)",
        cell.nodes,
        cell.index_name(),
        cell.threads,
        cell.wall_s,
        cell.setup_s,
        cell.warm_s,
        cell.run_s,
        cell.events,
        cell.events_per_sec(),
    );
}

fn cell_json(cell: &Cell) -> String {
    format!(
        "    {{\"nodes\": {}, \"index\": \"{}\", \"threads\": {}, \"runs\": {}, \
         \"wall_s\": {:.6}, \"setup_s\": {:.6}, \"warm_s\": {:.6}, \"run_s\": {:.6}, \
         \"events\": {}, \"events_per_sec\": {:.1}}}",
        cell.nodes,
        cell.index_name(),
        cell.threads,
        cell.fingerprints.len(),
        cell.wall_s,
        cell.setup_s,
        cell.warm_s,
        cell.run_s,
        cell.events,
        cell.events_per_sec(),
    )
}

/// Grid-vs-brute and parallel-vs-serial ratios for one node count,
/// computed from the finished cells.
struct Speedup {
    nodes: usize,
    warm_grid_vs_brute: f64,
    run_grid_vs_brute: f64,
    wall_grid_vs_brute: f64,
    sweep_parallel_vs_serial_grid: f64,
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

fn compute_speedup(cells: &[Cell], nodes: usize, t_max: usize) -> Speedup {
    let find = |index: NeighborIndex, threads: usize| {
        cells
            .iter()
            .find(|c| c.nodes == nodes && c.index == index && c.threads == threads)
    };
    let grid_1 = find(NeighborIndex::Grid, 1);
    let brute_1 = find(NeighborIndex::BruteForce, 1);
    let grid_t = find(NeighborIndex::Grid, t_max);
    match (grid_1, brute_1) {
        (Some(g), Some(b)) => Speedup {
            nodes,
            warm_grid_vs_brute: ratio(b.warm_s, g.warm_s),
            run_grid_vs_brute: ratio(b.run_s, g.run_s),
            wall_grid_vs_brute: ratio(b.wall_s, g.wall_s),
            sweep_parallel_vs_serial_grid: match grid_t {
                Some(gt) if t_max > 1 => ratio(g.wall_s, gt.wall_s),
                _ => 1.0,
            },
        },
        _ => Speedup {
            nodes,
            warm_grid_vs_brute: 0.0,
            run_grid_vs_brute: 0.0,
            wall_grid_vs_brute: 0.0,
            sweep_parallel_vs_serial_grid: 1.0,
        },
    }
}

fn speedup_json(s: &Speedup) -> String {
    format!(
        "    {{\"nodes\": {}, \"warm_grid_vs_brute\": {:.3}, \"run_grid_vs_brute\": {:.3}, \
         \"wall_grid_vs_brute\": {:.3}, \"sweep_parallel_vs_serial_grid\": {:.3}}}",
        s.nodes,
        s.warm_grid_vs_brute,
        s.run_grid_vs_brute,
        s.wall_grid_vs_brute,
        s.sweep_parallel_vs_serial_grid,
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    runs: usize,
    seed: u64,
    duration: f64,
    t_max: usize,
    node_counts: &[usize],
    cells: &[Cell],
    speedups: &[Speedup],
    equivalent: bool,
) -> String {
    let nodes_list: Vec<String> = node_counts.iter().map(|n| n.to_string()).collect();
    let cell_rows: Vec<String> = cells.iter().map(cell_json).collect();
    let speedup_rows: Vec<String> = speedups.iter().map(speedup_json).collect();
    // Schema 2 (PR 9): the throughput curve across the population axis,
    // taken from the grid single-thread cells — the headline series the
    // hot-path overhaul is judged against.
    let series_rows: Vec<String> = cells
        .iter()
        .filter(|c| c.index == NeighborIndex::Grid && c.threads == 1)
        .map(|c| {
            format!(
                "    {{\"nodes\": {}, \"events_per_sec\": {:.1}}}",
                c.nodes,
                c.events_per_sec()
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"scale_bench\",\n  \"schema_version\": 2,\n  \"config\": {{\
         \"runs\": {runs}, \"base_seed\": {seed}, \"duration_s\": {duration:.1}, \
         \"node_degree\": {NODE_DEGREE:.1}, \"radio_range\": {RADIO_RANGE:.1}, \
         \"max_speed\": {MAX_SPEED:.1}, \"threads_max\": {t_max}, \
         \"brute_max_nodes\": {BRUTE_MAX_NODES}, \
         \"node_counts\": [{}]}},\n  \"cells\": [\n{}\n  ],\n  \
         \"events_per_sec_series\": [\n{}\n  ],\n  \"speedups\": [\n{}\n  ],\n  \
         \"equivalence\": {{\"all_variants_bit_identical\": {equivalent}}}\n}}\n",
        nodes_list.join(", "),
        cell_rows.join(",\n"),
        series_rows.join(",\n"),
        speedup_rows.join(",\n"),
    )
}

fn main() {
    let runs = env_usize("DIKNN_RUNS", 3).max(1);
    let seed = base_seed();
    let duration = env_f64("DIKNN_DURATION", 30.0).max(1.0);
    let t_max = threads();
    let node_counts = scale_nodes();
    // On a single-core box the {1, all} thread axis collapses to {1}; the
    // JSON records threads_max so multicore runs carry the full matrix.
    let thread_counts: Vec<usize> = if t_max > 1 { vec![1, t_max] } else { vec![1] };

    println!("scale_bench: radio-index (grid vs brute) and sweep (1 vs {t_max} threads) scaling");
    println!(
        "runs={runs} base_seed={seed} duration={duration}s degree={NODE_DEGREE} \
         range={RADIO_RANGE}m max_speed={MAX_SPEED}m/s nodes={node_counts:?}"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut equivalent = true;
    for &n in &node_counts {
        let scenario = ScenarioConfig {
            nodes: n,
            max_speed: MAX_SPEED,
            duration,
            ..ScenarioConfig::default()
        }
        .with_node_degree(NODE_DEGREE, RADIO_RANGE);
        let wl = WorkloadConfig {
            last_at: (duration - 5.0).max(duration * 0.5),
            ..WorkloadConfig::default()
        };
        let group_start = cells.len();
        let indexes: &[NeighborIndex] = if n <= BRUTE_MAX_NODES {
            &[NeighborIndex::Grid, NeighborIndex::BruteForce]
        } else {
            println!(
                "note: brute-force oracle skipped at nodes={n} \
                 (O(n\u{b2}) scan; gated above {BRUTE_MAX_NODES})"
            );
            &[NeighborIndex::Grid]
        };
        for &index in indexes {
            for &tc in &thread_counts {
                let cell = bench_cell(&scenario, &wl, index, tc, runs, seed);
                print_cell(&cell);
                cells.push(cell);
            }
        }
        // The index is a pure lookup structure and the sweep a pure
        // executor: every variant must have produced the same runs.
        let (reference, rest) = cells[group_start..].split_at(1);
        for cell in rest {
            if cell.fingerprints != reference[0].fingerprints {
                equivalent = false;
                eprintln!(
                    "DIVERGENCE at nodes={n}: index={} threads={} disagrees with index={} \
                     threads={}",
                    cell.index_name(),
                    cell.threads,
                    reference[0].index_name(),
                    reference[0].threads,
                );
            }
        }
    }

    let speedups: Vec<Speedup> = node_counts
        .iter()
        .map(|&n| compute_speedup(&cells, n, t_max))
        .collect();
    for s in &speedups {
        println!(
            "speedup nodes={:<5} warm grid/brute={:>6.2}x run grid/brute={:>6.2}x \
             wall grid/brute={:>6.2}x sweep 1->{} threads={:>5.2}x",
            s.nodes,
            s.warm_grid_vs_brute,
            s.run_grid_vs_brute,
            s.wall_grid_vs_brute,
            t_max,
            s.sweep_parallel_vs_serial_grid,
        );
    }

    let json = render_json(
        runs,
        seed,
        duration,
        t_max,
        &node_counts,
        &cells,
        &speedups,
        equivalent,
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
    }
    match std::fs::write("results/BENCH_scale.json", &json) {
        Ok(()) => println!("wrote results/BENCH_scale.json"),
        Err(e) => {
            eprintln!("error: writing results/BENCH_scale.json: {e}");
            std::process::exit(2);
        }
    }
    if equivalent {
        println!("OK: all index/thread variants produced bit-identical run fingerprints");
    } else {
        eprintln!("FAIL: neighbor-index or thread variants diverged — see above");
        std::process::exit(1);
    }
}
