//! `query_load` — the concurrent multi-query engine under sustained load.
//!
//! Sweeps arrival rate × k × mobility at a fixed node count (default 500),
//! driving DIKNN with the deterministic Poisson-like arrival process of
//! [`diknn_workloads::QueryLoad`]. Rates well above `1 / typical latency`
//! keep many queries in flight at once; every run is invariant-checked
//! (all six per-query laws plus the cross-query custody law) by the
//! experiment driver. Per cell the binary reports:
//!
//! * sustained throughput (completed queries per simulated second),
//! * p50 / p95 / mean query latency,
//! * pre-/post-mobility accuracy and completion rate,
//! * flow-attributed energy per query,
//! * the peak number of concurrently in-flight queries.
//!
//! Three hard checks decide the exit code (CI's bench-smoke relies on
//! them):
//!
//! 1. every issued query reaches a terminal [`QueryStatus`] in every run,
//! 2. at least one cell sustains `DIKNN_LOAD_MIN_INFLIGHT` (default 8)
//!    concurrent in-flight queries,
//! 3. the first cell re-run through `ParallelSweep` is bit-identical to
//!    its sequential metrics (per-query rows included).
//!
//! Output: a human table on stdout, the same table in
//! `results/query_load.txt`, and machine-readable
//! `results/BENCH_query_load.json`.
//!
//! Knobs:
//!
//! * `DIKNN_RUNS`              — seeded runs per cell (default 3)
//! * `DIKNN_SEED`              — base seed (default 1000)
//! * `DIKNN_DURATION`          — simulated seconds per run (default 40)
//! * `DIKNN_THREADS`           — sweep worker threads (default: all cores)
//! * `DIKNN_LOAD_NODES`        — node count (default 500)
//! * `DIKNN_LOAD_RATES`        — comma-separated arrival rates in
//!   queries/sec (default `2,10,25`)
//! * `DIKNN_LOAD_KS`           — comma-separated k values (default `10,40`)
//! * `DIKNN_LOAD_SPEEDS`       — comma-separated max speeds in m/s
//!   (default `0,5`)
//! * `DIKNN_LOAD_MIN_INFLIGHT` — in-flight queries some cell must sustain
//!   (default 8)

// Wall-clock timing never feeds back into simulation state, so the
// determinism ban is lifted here (the xtask pass is exempted per call site
// with `// lint: wall-clock-ok`).
#![allow(clippy::disallowed_methods)]

use std::time::Instant; // lint: wall-clock-ok (host-side benchmark timing)

use diknn_bench::{base_seed, threads};
use diknn_core::{DiknnConfig, QueryStatus};
use diknn_workloads::{
    Aggregate, Experiment, ParallelSweep, ProtocolKind, QueryLoad, RunMetrics, ScenarioConfig,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64_list(name: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(name) {
        Ok(raw) => {
            let parsed: Vec<f64> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&v: &f64| v >= 0.0 && v.is_finite())
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&v| v > 0)
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// One load cell: arrival rate × k × mobility.
struct Cell {
    rate_qps: f64,
    k: usize,
    max_speed: f64,
    wall_s: f64,
    agg: Aggregate,
    /// Peak concurrently in-flight queries over the cell's runs.
    peak_in_flight: usize,
    /// Mean issued queries per run.
    queries_per_run: f64,
    /// Completed queries per simulated second, averaged over runs.
    sustained_qps: f64,
    /// Every query of every run reached a terminal status.
    all_terminal: bool,
    /// Queries per termination status, summed over the cell's runs
    /// (indexing per [`diknn_workloads::status_index`]).
    status_counts: [usize; 8],
}

fn experiment(nodes: usize, duration: f64, load: &QueryLoad, max_speed: f64) -> Experiment {
    Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        ScenarioConfig {
            nodes,
            duration,
            max_speed,
            ..ScenarioConfig::default()
        },
        load.workload(),
    )
}

#[allow(clippy::too_many_arguments)]
fn bench_cell(
    nodes: usize,
    duration: f64,
    rate_qps: f64,
    k: usize,
    max_speed: f64,
    runs: usize,
    seed: u64,
    sweep: &ParallelSweep,
) -> (Cell, Vec<RunMetrics>) {
    let load = QueryLoad {
        rate_qps,
        k,
        first_at: 2.0,
        last_at: (duration - 10.0).max(duration * 0.5),
        ..QueryLoad::default()
    };
    let exp = experiment(nodes, duration, &load, max_speed);
    let t0 = Instant::now(); // lint: wall-clock-ok
    let metrics = sweep.map(runs, |i| exp.run_once(Experiment::sweep_seed(seed, i)));
    let wall_s = t0.elapsed().as_secs_f64();
    let agg = Aggregate::from_runs(&metrics);
    let cell = Cell {
        rate_qps,
        k,
        max_speed,
        wall_s,
        agg,
        peak_in_flight: metrics.iter().map(|m| m.max_in_flight).max().unwrap_or(0),
        queries_per_run: metrics.iter().map(|m| m.queries as f64).sum::<f64>() / runs.max(1) as f64,
        sustained_qps: metrics
            .iter()
            .map(|m| m.completed as f64 / duration)
            .sum::<f64>()
            / runs.max(1) as f64,
        all_terminal: metrics
            .iter()
            .flat_map(|m| &m.per_query)
            .all(|q| q.status != QueryStatus::Pending),
        status_counts: metrics.iter().fold([0usize; 8], |mut acc, m| {
            for (a, c) in acc.iter_mut().zip(m.status_counts) {
                *a += c;
            }
            acc
        }),
    };
    (cell, metrics)
}

fn cell_line(c: &Cell) -> String {
    format!(
        "load rate={:<5} k={:<3} speed={:<3} queries/run={:<6.1} sustained={:>6.2} q/s \
         p50={:.3}s p95={:.3}s latency={:.3}s post={:.3} completion={:.2} \
         energy/query={:.4}J peak_in_flight={:<3} terminal={} wall={:.1}s",
        c.rate_qps,
        c.k,
        c.max_speed,
        c.queries_per_run,
        c.sustained_qps,
        c.agg.latency_p50_s.mean,
        c.agg.latency_p95_s.mean,
        c.agg.latency_s.mean,
        c.agg.post_accuracy.mean,
        c.agg.completion_rate.mean,
        c.agg.per_query_energy_j.mean,
        c.peak_in_flight,
        c.all_terminal,
        c.wall_s,
    )
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"rate_qps\": {}, \"k\": {}, \"max_speed\": {}, \"queries_per_run\": {:.1}, \
         \"sustained_qps\": {:.4}, \"latency_p50_s\": {:.6}, \"latency_p95_s\": {:.6}, \
         \"latency_mean_s\": {:.6}, \"pre_accuracy\": {:.4}, \"post_accuracy\": {:.4}, \
         \"completion_rate\": {:.4}, \"per_query_energy_j\": {:.6}, \
         \"peak_in_flight\": {}, \"all_terminal\": {}, \"wall_s\": {:.3}, \
         \"status_counts\": {{\"completed\": {}, \"partial_timeout\": {}, \
         \"token_lost\": {}, \"sink_unreachable\": {}, \"pending\": {}, \
         \"rejected\": {}, \"merged\": {}, \"cache_hit\": {}}}}}",
        c.rate_qps,
        c.k,
        c.max_speed,
        c.queries_per_run,
        c.sustained_qps,
        c.agg.latency_p50_s.mean,
        c.agg.latency_p95_s.mean,
        c.agg.latency_s.mean,
        c.agg.pre_accuracy.mean,
        c.agg.post_accuracy.mean,
        c.agg.completion_rate.mean,
        c.agg.per_query_energy_j.mean,
        c.peak_in_flight,
        c.all_terminal,
        c.wall_s,
        c.status_counts[0],
        c.status_counts[1],
        c.status_counts[2],
        c.status_counts[3],
        c.status_counts[4],
        c.status_counts[5],
        c.status_counts[6],
        c.status_counts[7],
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    runs: usize,
    seed: u64,
    duration: f64,
    nodes: usize,
    min_inflight: usize,
    cells: &[Cell],
    peak_in_flight: usize,
    all_terminal: bool,
    parallel_equiv: bool,
) -> String {
    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    let inflight_ok = peak_in_flight >= min_inflight;
    format!(
        "{{\n  \"bench\": \"query_load\",\n  \"schema_version\": 2,\n  \"config\": {{\
         \"runs\": {runs}, \"base_seed\": {seed}, \"duration_s\": {duration:.1}, \
         \"nodes\": {nodes}, \"min_inflight\": {min_inflight}}},\n  \"cells\": [\n{}\n  ],\n  \
         \"checks\": {{\"peak_in_flight\": {peak_in_flight}, \
         \"sustained_inflight_ok\": {inflight_ok}, \
         \"all_queries_terminal\": {all_terminal}, \
         \"parallel_equiv_bit_identical\": {parallel_equiv}}}\n}}\n",
        rows.join(",\n"),
    )
}

fn main() {
    let runs = env_usize("DIKNN_RUNS", 3).max(1);
    let seed = base_seed();
    let duration = env_f64("DIKNN_DURATION", 40.0).max(5.0);
    let nodes = env_usize("DIKNN_LOAD_NODES", 500).max(10);
    let rates = env_f64_list("DIKNN_LOAD_RATES", &[2.0, 10.0, 25.0]);
    let ks = env_usize_list("DIKNN_LOAD_KS", &[10, 40]);
    let speeds = env_f64_list("DIKNN_LOAD_SPEEDS", &[0.0, 5.0]);
    let min_inflight = env_usize("DIKNN_LOAD_MIN_INFLIGHT", 8);
    let sweep = ParallelSweep::new(threads());

    let mut out = String::new();
    let mut line = |s: String| {
        println!("{s}");
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "query_load: concurrent multi-query engine, DIKNN at {nodes} nodes"
    ));
    line(format!(
        "runs={runs} base_seed={seed} duration={duration}s rates={rates:?} ks={ks:?} \
         speeds={speeds:?} threads={}",
        sweep.threads()
    ));

    let mut cells: Vec<Cell> = Vec::new();
    let mut parallel_equiv = true;
    for &rate in &rates {
        if rate <= 0.0 {
            continue;
        }
        for &k in &ks {
            for &speed in &speeds {
                let (cell, metrics) =
                    bench_cell(nodes, duration, rate, k, speed, runs, seed, &sweep);
                line(cell_line(&cell));
                // First cell: the parallel sweep above must be bit-identical
                // to the plain sequential loop, per-query rows included.
                if cells.is_empty() {
                    let load = QueryLoad {
                        rate_qps: rate,
                        k,
                        first_at: 2.0,
                        last_at: (duration - 10.0).max(duration * 0.5),
                        ..QueryLoad::default()
                    };
                    let exp = experiment(nodes, duration, &load, speed);
                    let sequential: Vec<RunMetrics> = (0..runs)
                        .map(|i| exp.run_once(Experiment::sweep_seed(seed, i)))
                        .collect();
                    // Debug formatting round-trips f64 exactly and renders
                    // NaN (a never-completed query's latency) equal to
                    // itself, unlike PartialEq.
                    if format!("{sequential:?}") != format!("{metrics:?}") {
                        parallel_equiv = false;
                        eprintln!(
                            "DIVERGENCE: parallel sweep disagrees with sequential metrics \
                             at rate={rate} k={k} speed={speed}"
                        );
                    }
                }
                cells.push(cell);
            }
        }
    }

    let peak_in_flight = cells.iter().map(|c| c.peak_in_flight).max().unwrap_or(0);
    let all_terminal = cells.iter().all(|c| c.all_terminal);
    line(format!(
        "summary peak_in_flight={peak_in_flight} (target >= {min_inflight}) \
         all_terminal={all_terminal} parallel_equiv={parallel_equiv}"
    ));

    let json = render_json(
        runs,
        seed,
        duration,
        nodes,
        min_inflight,
        &cells,
        peak_in_flight,
        all_terminal,
        parallel_equiv,
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
    }
    for (path, contents) in [
        ("results/BENCH_query_load.json", &json),
        ("results/query_load.txt", &out),
    ] {
        match std::fs::write(path, contents) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut failed = false;
    if peak_in_flight < min_inflight {
        eprintln!(
            "FAIL: no cell sustained {min_inflight} concurrent in-flight queries \
             (peak {peak_in_flight})"
        );
        failed = true;
    }
    if !all_terminal {
        eprintln!("FAIL: some query never reached a terminal status");
        failed = true;
    }
    if !parallel_equiv {
        eprintln!("FAIL: parallel sweep diverged from sequential metrics");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: sustained {peak_in_flight} in-flight queries, every query terminal, \
         parallel sweep bit-identical"
    );
}
