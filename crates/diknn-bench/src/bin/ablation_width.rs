//! §3.3 claim: `w = √3·r/2` "yields full coverage with minimal itinerary
//! length, a good balance on query accuracy and energy efficiency".
//!
//! Part 1 (geometry, exact): for a range of widths, the total conceptual
//! itinerary length and the worst-case distance from any point of the disc
//! to the itinerary (coverage holes appear once that distance approaches
//! the radio range).
//!
//! Part 2 (system): full simulations at selected widths — narrower
//! itineraries cost latency/energy, wider ones cost accuracy.

use diknn_core::itinerary::{coverage_worst_distance, total_length};
use diknn_core::{DiknnConfig, ItinerarySpec};
use diknn_geom::Point;
use diknn_workloads::{ProtocolKind, WorkloadConfig};

fn main() {
    let r = 20.0;
    let radius = 55.0;
    println!("Itinerary width ablation (r = {r} m, boundary R = {radius} m, S = 8)\n");
    println!(
        "{:>10} {:>16} {:>22} {:>10}",
        "w (x r)", "itinerary (m)", "worst gap (m)", "covered?"
    );
    println!("csv,width_geom,w_factor,length_m,worst_gap_m,covered");
    let recommended = 3.0_f64.sqrt() / 2.0;
    for factor in [0.25, 0.5, 0.75, recommended, 1.0, 1.25, 1.5, 2.0] {
        let spec = ItinerarySpec::new(Point::new(0.0, 0.0), radius, 8, factor * r);
        let len = total_length(&spec);
        let worst = coverage_worst_distance(&spec, 3000);
        let covered = worst <= r;
        let marker = if (factor - recommended).abs() < 1e-9 {
            "  <- paper's w = sqrt(3)r/2"
        } else {
            ""
        };
        println!("{factor:>10.3} {len:>16.0} {worst:>22.2} {covered:>10}{marker}");
        println!("csv,width_geom,{factor:.4},{len:.2},{worst:.4},{covered}");
    }

    println!("\nFull-system sweep (DIKNN, k = 40, static network):");
    println!("csv,width_sys,w_factor,latency,energy,pre,post");
    for factor in [0.5, recommended, 1.3] {
        let cfg = DiknnConfig {
            width_factor: factor,
            ..DiknnConfig::default()
        };
        let agg = diknn_bench::run_cell(
            ProtocolKind::Diknn(cfg),
            diknn_workloads::ScenarioConfig {
                max_speed: 0.0,
                ..diknn_bench::default_scenario()
            },
            WorkloadConfig {
                k: 40,
                ..diknn_bench::default_workload()
            },
        );
        println!(
            "  w = {factor:.3} r: latency {:.2} s, energy {:.2} J, pre {:.3}, post {:.3}",
            agg.latency_s.mean, agg.energy_j.mean, agg.pre_accuracy.mean, agg.post_accuracy.mean
        );
        println!(
            "csv,width_sys,{factor:.4},{:.4},{:.4},{:.4},{:.4}",
            agg.latency_s.mean, agg.energy_j.mean, agg.pre_accuracy.mean, agg.post_accuracy.mean
        );
    }
}
