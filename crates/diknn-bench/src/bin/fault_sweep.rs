//! Fault sweep (robustness study): completion, degradation taxonomy,
//! latency, energy, and post-accuracy as node churn and link burstiness
//! grow — DIKNN (with and without its token watchdog) against the
//! baselines.
//!
//! Two sweeps:
//! * `fault_crash`  — fraction of nodes fail-stopping mid-run.
//! * `fault_burst`  — Gilbert–Elliott burst severity on every link.

use diknn_bench::{
    base_seed, default_scenario, default_workload, duration, print_fault_csv_header,
    print_fault_row, run_cell_faulted, runs,
};
use diknn_core::DiknnConfig;
use diknn_workloads::fault_sweep::{burst_cells, crash_cells, FaultCell};
use diknn_workloads::ProtocolKind;

fn protocols() -> Vec<(&'static str, ProtocolKind)> {
    // The stock 20 s sink timeout is sized for 100 s paper-scale runs; a
    // retry round must fit between the last query and `time_limit` even in
    // short smoke runs, so both DIKNN arms use a tighter timeout.
    let diknn = DiknnConfig {
        sink_timeout: 6.0,
        ..DiknnConfig::default()
    };
    let no_watchdog = DiknnConfig {
        token_watchdog: false,
        max_query_retries: 0,
        ..diknn.clone()
    };
    vec![
        ("DIKNN", ProtocolKind::Diknn(diknn)),
        ("DIKNN-noWD", ProtocolKind::Diknn(no_watchdog)),
        ("KPT+KNNB", ProtocolKind::Kpt(Default::default())),
        ("PeerTree", ProtocolKind::PeerTree(Default::default())),
        ("Flood", ProtocolKind::Flood(Default::default())),
    ]
}

fn sweep(figure: &str, x_name: &str, cells: &[FaultCell]) {
    for cell in cells {
        for (name, proto) in protocols() {
            let agg = run_cell_faulted(
                proto,
                default_scenario(),
                default_workload(),
                cell.plan.clone(),
            );
            print_fault_row(figure, x_name, cell.x, name, &agg);
        }
        println!();
    }
}

fn main() {
    println!(
        "Fault sweep: degradation under node churn and bursty links \
         ({} runs/cell, {} s simulated, base seed {})\n",
        runs(),
        duration(),
        base_seed()
    );
    print_fault_csv_header();

    println!("-- crash sweep: fraction of nodes fail-stopping mid-run --");
    sweep(
        "fault_crash",
        "crash_frac",
        &crash_cells(&[0.0, 0.1, 0.2, 0.3], duration()),
    );

    println!("-- burst sweep: Gilbert–Elliott link-burst severity --");
    sweep("fault_burst", "severity", &burst_cells(&[0.0, 0.5, 1.0]));
}
