//! §4.2 claim: KNNB boundary radii are "generally 1/√(kπ) of the previous
//! work KPT under the same level of accuracy".
//!
//! Runs both estimators over synthetic routing-phase hop lists at the
//! paper's default density and prints, per k: the KNNB radius, the KPT
//! conservative radius (k × MHD, MHD = 15 m), their ratio, and the paper's
//! predicted ratio 1/√(kπ). Also cross-checks the radius the full protocol
//! actually produces in simulation.

use diknn_core::{
    knnb, kpt_conservative_radius, Diknn, DiknnConfig, HopRecord, KnnProtocol, QueryRequest,
};
use diknn_geom::Point;
use diknn_sim::{NodeId, Simulator};
use diknn_workloads::ScenarioConfig;

fn synthetic_list(q: Point, hops: usize, density: f64, r: f64) -> Vec<HopRecord> {
    let step = 15.0;
    (0..hops)
        .map(|i| {
            let remaining = (hops - i) as f64;
            HopRecord {
                loc: Point::new(q.x - remaining * step, q.y),
                enc: (density * r * step).round() as u32,
            }
        })
        .collect()
}

fn main() {
    let r = 20.0;
    let mhd = 15.0;
    let density = 200.0 / (115.0 * 115.0);
    let q = Point::new(100.0, 57.0);
    let list = synthetic_list(q, 6, density, r);

    println!("Boundary comparison (paper §4.2): KNNB vs conservative KPT (MHD = {mhd} m)\n");
    println!(
        "{:>4} {:>12} {:>12} {:>10} {:>14}",
        "k", "KNNB R (m)", "KPT R (m)", "ratio", "paper 1/sqrt(k*pi)"
    );
    println!("csv,boundary,k,knnb_r,kpt_r,ratio,paper_ratio");
    for k in [5usize, 10, 20, 40, 60, 80, 100] {
        let ours = knnb(&list, q, r, k).radius;
        let theirs = kpt_conservative_radius(k, mhd);
        let ratio = ours / theirs;
        let paper = 1.0 / (k as f64 * std::f64::consts::PI).sqrt();
        println!("{k:>4} {ours:>12.1} {theirs:>12.1} {ratio:>10.4} {paper:>14.4}");
        println!("csv,boundary,{k},{ours:.4},{theirs:.4},{ratio:.6},{paper:.6}");
    }

    // Cross-check against the radius the full simulated protocol produces.
    println!("\nSimulated KNNB radii (full protocol, one run):");
    let scenario = ScenarioConfig {
        max_speed: 0.0,
        duration: 60.0,
        ..ScenarioConfig::default()
    };
    let requests: Vec<QueryRequest> = [20usize, 60, 100]
        .iter()
        .enumerate()
        .map(|(i, &k)| QueryRequest {
            at: 1.0 + i as f64 * 15.0,
            sink: NodeId(0),
            q: Point::new(60.0, 60.0),
            k,
        })
        .collect();
    let plans = scenario.build(diknn_bench::base_seed());
    let mut sim = Simulator::new(
        scenario.sim_config(),
        plans,
        Diknn::new(DiknnConfig::default(), requests),
        diknn_bench::base_seed(),
    );
    sim.warm_neighbor_tables();
    sim.run();
    for o in sim.protocol().outcomes() {
        let optimal = (o.k as f64 / (std::f64::consts::PI * density)).sqrt();
        println!(
            "  k={:<4} simulated R = {:>6.1} m (optimal for exactly k: {:>6.1} m, \
             conservative KPT: {:>6.1} m)",
            o.k,
            o.boundary_radius,
            optimal,
            kpt_conservative_radius(o.k, mhd)
        );
    }
}
