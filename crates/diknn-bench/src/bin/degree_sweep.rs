//! §5.1 remark: "By fixing the number of sensor nodes and varying the
//! simulated field from 200×200 to 115×115 m², the node degree ranges
//! from 5 to 20."
//!
//! Sweeps the node degree and compares the three protocols: sparse
//! networks stress routing (voids, perimeter mode) and itinerary
//! connectivity.

use diknn_baselines::{KptConfig, PeerTreeConfig};
use diknn_bench::{default_workload, print_csv_header, print_row, run_cell};
use diknn_core::DiknnConfig;
use diknn_workloads::{ProtocolKind, WorkloadConfig};

fn main() {
    println!(
        "Node-degree sweep (k = 40, µmax = 10 m/s, runs per cell: {})\n",
        diknn_bench::runs()
    );
    print_csv_header();
    for degree in [5.0f64, 10.0, 15.0, 20.0] {
        for proto in [
            ProtocolKind::Diknn(DiknnConfig::default()),
            ProtocolKind::Kpt(KptConfig::default()),
            ProtocolKind::PeerTree(PeerTreeConfig::default()),
        ] {
            let name = proto.name();
            let scenario = diknn_bench::default_scenario().with_node_degree(degree, 20.0);
            let agg = run_cell(
                proto,
                scenario,
                WorkloadConfig {
                    k: 40,
                    ..default_workload()
                },
            );
            print_row("degree_sweep", "degree", degree, name, &agg);
        }
        println!();
    }
}
