//! `admission` — the sink-side serving layer under overload.
//!
//! The `query_load` bench shows the failure this layer exists for: at
//! 10 q/s over 500 nodes the unprotected engine collapses to ~0.06
//! post-accuracy because every arrival launches a full itinerary into an
//! already saturated channel. This bench sweeps arrival rate × serving
//! mode (off / on) and demonstrates graceful degradation: with admission
//! control, spatial query merging and short-TTL result caching enabled the
//! sink sheds and coalesces load *before* it becomes radio traffic, and
//! the answered queries stay accurate.
//!
//! Three hard checks decide the exit code (CI's bench-smoke relies on
//! them):
//!
//! 1. every query of every run reaches a terminal classification (no
//!    `Pending` survivors — rejected/merged/cache-hit are classifications
//!    too),
//! 2. the serving-on cell at the target rate holds at least
//!    `DIKNN_ADM_MIN_ACCURACY` mean post-accuracy (default 0.5 at 10 q/s —
//!    ~8× the unprotected baseline),
//! 3. the first serving-on cell re-run through `ParallelSweep` is
//!    bit-identical to its sequential metrics.
//!
//! Every run is invariant-checked by the experiment driver, including the
//! `admission-soundness` law (no rejected query executes, merged results
//! are attributed to their members, cache hits respect their TTL).
//!
//! Output: a human table on stdout, the same table in
//! `results/admission.txt`, and machine-readable
//! `results/BENCH_admission.json`.
//!
//! Knobs:
//!
//! * `DIKNN_RUNS`             — seeded runs per cell (default 3)
//! * `DIKNN_SEED`             — base seed (default 1000)
//! * `DIKNN_DURATION`         — simulated seconds per run (default 40)
//! * `DIKNN_THREADS`          — sweep worker threads (default: all cores)
//! * `DIKNN_ADM_NODES`        — node count (default 500)
//! * `DIKNN_ADM_RATES`        — comma-separated arrival rates in
//!   queries/sec (default `2,10`)
//! * `DIKNN_ADM_K`            — neighbour count k (default 10)
//! * `DIKNN_ADM_SPEED`        — max node speed in m/s (default 0)
//! * `DIKNN_ADM_TARGET_RATE`  — rate whose serving-on cell is gated
//!   (default 10; clamped to the swept rates)
//! * `DIKNN_ADM_MIN_ACCURACY` — post-accuracy floor for that cell
//!   (default 0.5)

// Wall-clock timing never feeds back into simulation state, so the
// determinism ban is lifted here (the xtask pass is exempted per call site
// with `// lint: wall-clock-ok`).
#![allow(clippy::disallowed_methods)]

use std::time::Instant; // lint: wall-clock-ok (host-side benchmark timing)

use diknn_bench::{base_seed, threads};
use diknn_core::ServingConfig;
use diknn_workloads::{
    admission_experiment, Aggregate, Experiment, ParallelSweep, QueryLoad, RunMetrics,
    ServingSummary,
};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64_list(name: &str, default: &[f64]) -> Vec<f64> {
    match std::env::var(name) {
        Ok(raw) => {
            let parsed: Vec<f64> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&v: &f64| v > 0.0 && v.is_finite())
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

/// One bench cell: arrival rate × serving mode.
struct Cell {
    rate_qps: f64,
    serving_on: bool,
    wall_s: f64,
    agg: Aggregate,
    summary: ServingSummary,
    queries_per_run: f64,
    peak_in_flight: usize,
}

fn load_for(rate_qps: f64, k: usize, duration: f64) -> QueryLoad {
    QueryLoad {
        rate_qps,
        k,
        first_at: 2.0,
        last_at: (duration - 10.0).max(duration * 0.5),
        ..QueryLoad::default()
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_cell(
    nodes: usize,
    duration: f64,
    rate_qps: f64,
    k: usize,
    max_speed: f64,
    serving_on: bool,
    runs: usize,
    seed: u64,
    sweep: &ParallelSweep,
) -> (Cell, Vec<RunMetrics>) {
    let serving = if serving_on {
        ServingConfig::enabled()
    } else {
        ServingConfig::default()
    };
    let load = load_for(rate_qps, k, duration);
    let exp = admission_experiment(nodes, duration, max_speed, &load, serving);
    let t0 = Instant::now(); // lint: wall-clock-ok
    let metrics = sweep.map(runs, |i| exp.run_once(Experiment::sweep_seed(seed, i)));
    let wall_s = t0.elapsed().as_secs_f64();
    let cell = Cell {
        rate_qps,
        serving_on,
        wall_s,
        agg: Aggregate::from_runs(&metrics),
        summary: ServingSummary::from_runs(&metrics),
        queries_per_run: metrics.iter().map(|m| m.queries as f64).sum::<f64>() / runs.max(1) as f64,
        peak_in_flight: metrics.iter().map(|m| m.max_in_flight).max().unwrap_or(0),
    };
    (cell, metrics)
}

fn cell_line(c: &Cell) -> String {
    let s = &c.summary;
    format!(
        "adm rate={:<5} serving={:<3} queries/run={:<6.1} post={:.3} answered={:.2} \
         completed={:<4} rejected={:<4} merged={:<4} cached={:<4} degraded={:<3} \
         p50={:.3}s peak_in_flight={:<3} terminal={} wall={:.1}s",
        c.rate_qps,
        if c.serving_on { "on" } else { "off" },
        c.queries_per_run,
        c.agg.post_accuracy.mean,
        s.answered_rate(),
        s.completed,
        s.rejected,
        s.merged,
        s.cache_hits,
        s.degraded,
        c.agg.latency_p50_s.mean,
        c.peak_in_flight,
        s.all_terminal(),
        c.wall_s,
    )
}

fn cell_json(c: &Cell) -> String {
    let s = &c.summary;
    format!(
        "    {{\"rate_qps\": {}, \"serving\": {}, \"queries_per_run\": {:.1}, \
         \"post_accuracy\": {:.4}, \"pre_accuracy\": {:.4}, \"answered_rate\": {:.4}, \
         \"latency_p50_s\": {:.6}, \"latency_p95_s\": {:.6}, \"peak_in_flight\": {}, \
         \"all_terminal\": {}, \"wall_s\": {:.3}, \
         \"status_counts\": {{\"completed\": {}, \"degraded\": {}, \"pending\": {}, \
         \"rejected\": {}, \"merged\": {}, \"cache_hit\": {}}}}}",
        c.rate_qps,
        c.serving_on,
        c.queries_per_run,
        c.agg.post_accuracy.mean,
        c.agg.pre_accuracy.mean,
        s.answered_rate(),
        c.agg.latency_p50_s.mean,
        c.agg.latency_p95_s.mean,
        c.peak_in_flight,
        s.all_terminal(),
        c.wall_s,
        s.completed,
        s.degraded,
        s.pending,
        s.rejected,
        s.merged,
        s.cache_hits,
    )
}

fn main() {
    let runs = env_usize("DIKNN_RUNS", 3).max(1);
    let seed = base_seed();
    let duration = env_f64("DIKNN_DURATION", 40.0).max(5.0);
    let nodes = env_usize("DIKNN_ADM_NODES", 500).max(10);
    let rates = env_f64_list("DIKNN_ADM_RATES", &[2.0, 10.0]);
    let k = env_usize("DIKNN_ADM_K", 10).max(1);
    let speed = env_f64("DIKNN_ADM_SPEED", 0.0).max(0.0);
    let min_accuracy = env_f64("DIKNN_ADM_MIN_ACCURACY", 0.5);
    let target_rate = env_f64("DIKNN_ADM_TARGET_RATE", 10.0);
    let sweep = ParallelSweep::new(threads());

    let mut out = String::new();
    let mut line = |s: String| {
        println!("{s}");
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "admission: sink-side serving layer under overload, DIKNN at {nodes} nodes"
    ));
    line(format!(
        "runs={runs} base_seed={seed} duration={duration}s rates={rates:?} k={k} \
         speed={speed} threads={}",
        sweep.threads()
    ));

    // The gated rate: the swept rate closest to the requested target.
    let gate_rate = rates
        .iter()
        .copied()
        .min_by(|a, b| (a - target_rate).abs().total_cmp(&(b - target_rate).abs()))
        .unwrap_or(target_rate);

    let mut cells: Vec<Cell> = Vec::new();
    let mut parallel_equiv = true;
    let mut checked_equiv = false;
    for &rate in &rates {
        for serving_on in [false, true] {
            let (cell, metrics) = bench_cell(
                nodes, duration, rate, k, speed, serving_on, runs, seed, &sweep,
            );
            line(cell_line(&cell));
            // First serving-on cell: the parallel sweep above must be
            // bit-identical to the plain sequential loop, per-query rows
            // included — the serving layer must not break sweep determinism.
            if serving_on && !checked_equiv {
                checked_equiv = true;
                let load = load_for(rate, k, duration);
                let exp =
                    admission_experiment(nodes, duration, speed, &load, ServingConfig::enabled());
                let sequential: Vec<RunMetrics> = (0..runs)
                    .map(|i| exp.run_once(Experiment::sweep_seed(seed, i)))
                    .collect();
                // Debug formatting round-trips f64 exactly and renders NaN
                // equal to itself, unlike PartialEq.
                if format!("{sequential:?}") != format!("{metrics:?}") {
                    parallel_equiv = false;
                    eprintln!(
                        "DIVERGENCE: parallel sweep disagrees with sequential metrics \
                         at rate={rate} serving=on"
                    );
                }
            }
            cells.push(cell);
        }
    }

    let all_terminal = cells.iter().all(|c| c.summary.all_terminal());
    let gated = cells
        .iter()
        .find(|c| c.serving_on && c.rate_qps == gate_rate);
    let gated_accuracy = gated.map(|c| c.agg.post_accuracy.mean).unwrap_or(0.0);
    let baseline_accuracy = cells
        .iter()
        .find(|c| !c.serving_on && c.rate_qps == gate_rate)
        .map(|c| c.agg.post_accuracy.mean)
        .unwrap_or(f64::NAN);
    line(format!(
        "summary gate_rate={gate_rate} serving_on_accuracy={gated_accuracy:.3} \
         (floor {min_accuracy}) serving_off_accuracy={baseline_accuracy:.3} \
         all_terminal={all_terminal} parallel_equiv={parallel_equiv}"
    ));

    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    let accuracy_ok = gated_accuracy >= min_accuracy;
    let json = format!(
        "{{\n  \"bench\": \"admission\",\n  \"schema_version\": 1,\n  \"config\": {{\
         \"runs\": {runs}, \"base_seed\": {seed}, \"duration_s\": {duration:.1}, \
         \"nodes\": {nodes}, \"k\": {k}, \"max_speed\": {speed}, \
         \"gate_rate_qps\": {gate_rate}, \"min_accuracy\": {min_accuracy}}},\n  \
         \"cells\": [\n{}\n  ],\n  \
         \"checks\": {{\"serving_on_accuracy\": {gated_accuracy:.4}, \
         \"serving_off_accuracy\": {baseline_accuracy:.4}, \
         \"accuracy_ok\": {accuracy_ok}, \
         \"all_queries_terminal\": {all_terminal}, \
         \"parallel_equiv_bit_identical\": {parallel_equiv}}}\n}}\n",
        rows.join(",\n"),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
    }
    for (path, contents) in [
        ("results/BENCH_admission.json", &json),
        ("results/admission.txt", &out),
    ] {
        match std::fs::write(path, contents) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut failed = false;
    if !accuracy_ok {
        eprintln!(
            "FAIL: serving-on cell at {gate_rate} q/s holds {gated_accuracy:.3} \
             post-accuracy, below the {min_accuracy} floor"
        );
        failed = true;
    }
    if !all_terminal {
        eprintln!("FAIL: some query never reached a terminal classification");
        failed = true;
    }
    if !parallel_equiv {
        eprintln!("FAIL: parallel sweep diverged from sequential metrics");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: serving layer holds {gated_accuracy:.3} post-accuracy at {gate_rate} q/s \
         (unprotected: {baseline_accuracy:.3}), every query classified, \
         parallel sweep bit-identical"
    );
}
