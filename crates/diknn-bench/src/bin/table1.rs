//! Table 1 (§5.1): the simulation settings table. Prints the defaults this
//! reproduction uses next to the paper's values, and asserts they match.

use diknn_core::DiknnConfig;
use diknn_sim::SimConfig;
use diknn_workloads::{ScenarioConfig, WorkloadConfig};

fn main() {
    let sim = SimConfig::default();
    let sc = ScenarioConfig::default();
    let wl = WorkloadConfig::default();
    let dk = DiknnConfig::default();

    println!("Table 1 — simulation settings (paper §5.1)\n");
    println!("{:<28} {:>14} {:>14}", "parameter", "paper", "this repo");
    let rows: Vec<(&str, String, String)> = vec![
        ("node number", "200".into(), sc.nodes.to_string()),
        (
            "network size",
            "115x115 m^2".into(),
            format!("{:.0}x{:.0} m^2", sc.field.width(), sc.field.height()),
        ),
        ("node degree", "20".into(), {
            let density = sc.nodes as f64 / sc.field.area();
            format!(
                "{:.1}",
                density * std::f64::consts::PI * sim.radio_range * sim.radio_range
            )
        }),
        (
            "radio range r",
            "20 m".into(),
            format!("{} m", sim.radio_range),
        ),
        (
            "response size",
            "10 bytes".into(),
            format!("{} bytes", dk.response_bytes),
        ),
        (
            "channel rate",
            "250 kbps".into(),
            format!("{} kbps", sim.bits_per_sec / 1000),
        ),
        ("sector number S", "8".into(), dk.sectors.to_string()),
        (
            "mobility u_max",
            "10 m/s".into(),
            format!("{} m/s", sc.max_speed),
        ),
        (
            "beacon interval",
            "0.5 s".into(),
            format!("{} s", sim.beacon_interval.as_secs_f64()),
        ),
        ("RTS/CTS", "off".into(), "off (not modelled)".into()),
        (
            "collection unit m",
            "0.018 s".into(),
            format!("{} s", dk.collection_unit),
        ),
        (
            "query interval",
            "exp, mean 4 s".into(),
            format!("exp, mean {} s", wl.mean_interval),
        ),
        ("rendezvous", "enabled".into(), format!("{}", dk.rendezvous)),
        (
            "assurance gain g",
            "0.1".into(),
            dk.assurance_gain.to_string(),
        ),
        (
            "run length",
            "100 s x 20 runs".into(),
            format!("{} s x DIKNN_RUNS runs", sc.duration),
        ),
    ];
    for (name, paper, ours) in &rows {
        println!("{name:<28} {paper:>14} {ours:>14}");
    }

    // Hard assertions: the defaults ARE the paper settings.
    assert_eq!(sc.nodes, 200);
    assert_eq!(sim.radio_range, 20.0);
    assert_eq!(sim.bits_per_sec, 250_000);
    assert_eq!(dk.sectors, 8);
    assert_eq!(dk.response_bytes, 10);
    assert!((sc.max_speed - 10.0).abs() < 1e-12);
    assert!((sim.beacon_interval.as_secs_f64() - 0.5).abs() < 1e-12);
    assert!((dk.collection_unit - 0.018).abs() < 1e-12);
    assert!((wl.mean_interval - 4.0).abs() < 1e-12);
    assert!((dk.assurance_gain - 0.1).abs() < 1e-12);
    assert!(dk.rendezvous);
    println!("\nAll defaults match the paper's settings table.");
}
