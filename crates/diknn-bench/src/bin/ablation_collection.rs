//! §3.3 footnote 1: "the data collection scheme introduced in this paper
//! combines both the token ring based and contention based scheme to
//! achieve higher performance."
//!
//! Compares the three collection schemes, plus the contention-free-period
//! (CFP) MAC mode the paper mentions for LR-WPAN, at the default workload.

use diknn_bench::{default_scenario, default_workload, print_csv_header, print_row};
use diknn_core::{CollectionScheme, DiknnConfig};
use diknn_sim::MacMode;
use diknn_workloads::{Experiment, ProtocolKind, WorkloadConfig};

fn main() {
    println!(
        "Collection-scheme ablation (k = 40, µmax = 10 m/s, runs per cell: {})\n",
        diknn_bench::runs()
    );
    print_csv_header();
    for (label, scheme) in [
        ("contention", CollectionScheme::Contention),
        ("token-ring", CollectionScheme::TokenRing),
        ("combined", CollectionScheme::Combined),
    ] {
        let cfg = DiknnConfig {
            collection: scheme,
            ..DiknnConfig::default()
        };
        let exp = Experiment::new(
            ProtocolKind::Diknn(cfg),
            default_scenario(),
            WorkloadConfig {
                k: 40,
                ..default_workload()
            },
        );
        let agg = exp.run(diknn_bench::runs(), diknn_bench::base_seed());
        print_row("ablation_collection", "scheme", 0.0, label, &agg);
    }

    // CFP: an idealised contention-free MAC ("when Contention Free Period
    // is exercised in LR-WPAN", §3.3) — collisions disappear entirely.
    let mut exp = Experiment::new(
        ProtocolKind::Diknn(DiknnConfig::default()),
        default_scenario(),
        WorkloadConfig {
            k: 40,
            ..default_workload()
        },
    );
    exp.sim_tweak = Some(|cfg| cfg.mac = MacMode::ContentionFree);
    let agg = exp.run(diknn_bench::runs(), diknn_bench::base_seed());
    print_row("ablation_collection", "scheme", 1.0, "combined+CFP", &agg);
}
