//! Property-based tests: the R-tree must agree with brute force on every
//! query, for arbitrary point sets and interleaved inserts/removes.

use diknn_geom::{Point, Rect};
use diknn_rtree::RTree;
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (0.0..200.0f64, 0.0..200.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn brute_knn(pts: &[Point], q: Point, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..pts.len()).collect();
    idx.sort_by(|&a, &b| {
        pts[a]
            .dist(q)
            .partial_cmp(&pts[b].dist(q))
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_agrees_with_brute_force(
        pts in prop::collection::vec(pt(), 1..150),
        q in pt(),
        k in 1usize..20,
    ) {
        let tree = RTree::bulk_load_points(pts.iter().copied().enumerate().map(|(i, p)| (p, i)));
        let got = tree.knn(q, k);
        let want = brute_knn(&pts, q, k.min(pts.len()));
        // Distances must match exactly (ids may differ on exact ties).
        prop_assert_eq!(got.len(), want.len());
        for (g, &w) in got.iter().zip(&want) {
            prop_assert!((g.dist - pts[w].dist(q)).abs() < 1e-9,
                "dist mismatch: got {} want {}", g.dist, pts[w].dist(q));
        }
    }

    #[test]
    fn range_agrees_with_brute_force(
        pts in prop::collection::vec(pt(), 0..150),
        c1 in pt(),
        c2 in pt(),
    ) {
        let tree = RTree::bulk_load_points(pts.iter().copied().enumerate().map(|(i, p)| (p, i)));
        let query = Rect::new(c1.x, c1.y, c2.x, c2.y);
        let mut got: Vec<usize> = tree.range(query).into_iter().map(|(_, i)| i).collect();
        got.sort_unstable();
        let want: Vec<usize> = (0..pts.len()).filter(|&i| query.contains(pts[i])).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn incremental_insert_preserves_invariants(
        pts in prop::collection::vec(pt(), 1..200),
    ) {
        let mut tree = RTree::new();
        for (i, &p) in pts.iter().enumerate() {
            tree.insert_point(p, i);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), pts.len());
    }

    #[test]
    fn insert_then_remove_round_trips(
        pts in prop::collection::vec(pt(), 1..80),
        remove_mask in prop::collection::vec(any::<bool>(), 1..80),
    ) {
        let mut tree = RTree::new();
        for (i, &p) in pts.iter().enumerate() {
            tree.insert_point(p, i);
        }
        let mut expected: Vec<usize> = Vec::new();
        for (i, &p) in pts.iter().enumerate() {
            let remove = *remove_mask.get(i % remove_mask.len()).unwrap_or(&false);
            if remove {
                let r = tree.remove(Rect::from_point(p), |&id| id == i);
                prop_assert_eq!(r, Some(i));
            } else {
                expected.push(i);
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), expected.len());
        let mut remaining: Vec<usize> = Vec::new();
        tree.for_each(|_, &i| remaining.push(i));
        remaining.sort_unstable();
        prop_assert_eq!(remaining, expected);
    }

    #[test]
    fn within_distance_agrees_with_brute_force(
        pts in prop::collection::vec(pt(), 0..150),
        q in pt(),
        radius in 0.0..100.0f64,
    ) {
        let tree = RTree::bulk_load_points(pts.iter().copied().enumerate().map(|(i, p)| (p, i)));
        let mut got: Vec<usize> = tree
            .within_distance(q, radius)
            .into_iter()
            .map(|(_, i)| i)
            .collect();
        got.sort_unstable();
        let want: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].dist(q) <= radius)
            .collect();
        prop_assert_eq!(got, want);
    }
}
