//! R-tree node structure: Guttman insertion with quadratic split, simple
//! removal, and STR bulk packing.

use crate::{MAX_ENTRIES, MIN_ENTRIES};
use diknn_geom::Rect;

/// A tree node. Leaves hold data entries; internal nodes hold children with
/// their bounding rectangles.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    Leaf(Vec<(Rect, T)>),
    Internal(Vec<(Rect, Box<Node<T>>)>),
}

impl<T: Clone> Node<T> {
    /// Bounding rectangle of this node's contents.
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            Node::Leaf(entries) => entries
                .iter()
                .fold(Rect::empty(), |acc, (r, _)| acc.union(r)),
            Node::Internal(children) => children
                .iter()
                .fold(Rect::empty(), |acc, (r, _)| acc.union(r)),
        }
    }

    pub(crate) fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(children) => 1 + children.first().map_or(0, |(_, c)| c.depth()),
        }
    }

    /// Insert; on overflow returns the two nodes replacing `self`
    /// (in that case `self` is left empty and must be discarded).
    pub(crate) fn insert(&mut self, rect: Rect, item: T) -> Option<(Node<T>, Node<T>)> {
        match self {
            Node::Leaf(entries) => {
                entries.push((rect, item));
                if entries.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split(std::mem::take(entries));
                    Some((Node::Leaf(a), Node::Leaf(b)))
                } else {
                    None
                }
            }
            Node::Internal(children) => {
                // Choose the child needing least enlargement (ties: smaller
                // area, then first).
                let mut best = 0usize;
                let mut best_key = (f64::INFINITY, f64::INFINITY);
                for (i, (r, _)) in children.iter().enumerate() {
                    let key = (r.enlargement(&rect), r.area());
                    if key < best_key {
                        best_key = key;
                        best = i;
                    }
                }
                let split = children[best].1.insert(rect, item);
                match split {
                    None => {
                        children[best].0 = children[best].0.union(&rect);
                        None
                    }
                    Some((left, right)) => {
                        children.swap_remove(best);
                        children.push((left.mbr(), Box::new(left)));
                        children.push((right.mbr(), Box::new(right)));
                        if children.len() > MAX_ENTRIES {
                            let (a, b) = quadratic_split(std::mem::take(children));
                            Some((Node::Internal(a), Node::Internal(b)))
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Remove the first entry with exactly `rect` whose payload satisfies
    /// `pred`. MBRs along the path are tightened; underfull nodes are left
    /// in place (no re-insertion), empty children are pruned.
    pub(crate) fn remove(&mut self, rect: &Rect, pred: &impl Fn(&T) -> bool) -> Option<T> {
        match self {
            Node::Leaf(entries) => {
                let idx = entries.iter().position(|(r, t)| r == rect && pred(t))?;
                Some(entries.swap_remove(idx).1)
            }
            Node::Internal(children) => {
                for i in 0..children.len() {
                    if !children[i].0.contains_rect(rect) {
                        continue;
                    }
                    if let Some(item) = children[i].1.remove(rect, pred) {
                        if children[i].1.is_node_empty() {
                            children.swap_remove(i);
                        } else {
                            children[i].0 = children[i].1.mbr();
                        }
                        return Some(item);
                    }
                }
                None
            }
        }
    }

    fn is_node_empty(&self) -> bool {
        match self {
            Node::Leaf(e) => e.is_empty(),
            Node::Internal(c) => c.is_empty(),
        }
    }

    /// Collect entries intersecting `query` into `out`.
    pub(crate) fn range(&self, query: &Rect, out: &mut Vec<(Rect, T)>) {
        match self {
            Node::Leaf(entries) => {
                for (r, t) in entries {
                    if r.intersects(query) {
                        out.push((*r, t.clone()));
                    }
                }
            }
            Node::Internal(children) => {
                for (r, c) in children {
                    if r.intersects(query) {
                        c.range(query, out);
                    }
                }
            }
        }
    }

    pub(crate) fn for_each(&self, f: &mut impl FnMut(&Rect, &T)) {
        match self {
            Node::Leaf(entries) => {
                for (r, t) in entries {
                    f(r, t);
                }
            }
            Node::Internal(children) => {
                for (_, c) in children {
                    c.for_each(f);
                }
            }
        }
    }

    /// Validate invariants, returning the number of data entries below.
    pub(crate) fn check(&self, is_root: bool) -> usize {
        match self {
            Node::Leaf(entries) => {
                assert!(entries.len() <= MAX_ENTRIES, "leaf overflow");
                entries.len()
            }
            Node::Internal(children) => {
                assert!(!children.is_empty(), "empty internal node");
                assert!(children.len() <= MAX_ENTRIES, "internal overflow");
                if !is_root {
                    // Simple removal may leave nodes underfull; only the
                    // overflow bound is a hard invariant here.
                }
                let depth = children[0].1.depth();
                let mut total = 0;
                for (r, c) in children {
                    assert_eq!(c.depth(), depth, "unbalanced tree");
                    let child_mbr = c.mbr();
                    assert!(
                        r.contains_rect(&child_mbr),
                        "stored MBR {r:?} does not cover child {child_mbr:?}"
                    );
                    total += c.check(false);
                }
                total
            }
        }
    }
}

/// Guttman's quadratic split over any `(Rect, E)` entry list.
type SplitGroups<E> = (Vec<(Rect, E)>, Vec<(Rect, E)>);

fn quadratic_split<E>(mut entries: Vec<(Rect, E)>) -> SplitGroups<E> {
    debug_assert!(entries.len() >= 2);
    // Pick seeds: the pair wasting the most area if grouped.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let waste = entries[i].0.union(&entries[j].0).area()
                - entries[i].0.area()
                - entries[j].0.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Move seeds out (remove the later index first).
    let seed2 = entries.swap_remove(s2.max(s1));
    let seed1 = entries.swap_remove(s2.min(s1));
    let mut group1 = vec![seed1];
    let mut group2 = vec![seed2];
    let mut mbr1 = group1[0].0;
    let mut mbr2 = group2[0].0;

    while let Some(next) = pick_next(&entries, &mbr1, &mbr2) {
        let entry = entries.swap_remove(next);
        let remaining = entries.len();
        // Force assignment if one group must take the rest to reach `m`.
        let need1 = MIN_ENTRIES.saturating_sub(group1.len());
        let need2 = MIN_ENTRIES.saturating_sub(group2.len());
        let to_first = if need1 > remaining {
            true
        } else if need2 > remaining {
            false
        } else {
            let d1 = mbr1.enlargement(&entry.0);
            let d2 = mbr2.enlargement(&entry.0);
            match d1.total_cmp(&d2) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => mbr1.area() <= mbr2.area(),
            }
        };
        if to_first {
            mbr1 = mbr1.union(&entry.0);
            group1.push(entry);
        } else {
            mbr2 = mbr2.union(&entry.0);
            group2.push(entry);
        }
    }
    (group1, group2)
}

/// Next entry to assign: the one with the largest preference difference
/// between the two groups (Guttman's PickNext).
fn pick_next<E>(entries: &[(Rect, E)], mbr1: &Rect, mbr2: &Rect) -> Option<usize> {
    if entries.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, (r, _)) in entries.iter().enumerate() {
        let diff = (mbr1.enlargement(r) - mbr2.enlargement(r)).abs();
        if diff > best_diff {
            best_diff = diff;
            best = i;
        }
    }
    Some(best)
}

/// Sort-Tile-Recursive packing: sort by x, slice into vertical tiles, sort
/// each tile by y, pack runs of `MAX_ENTRIES` into leaves, then recurse on
/// the parent level.
pub(crate) fn str_pack<T: Clone>(items: &mut Vec<(Rect, T)>) -> Node<T> {
    if items.len() <= MAX_ENTRIES {
        return Node::Leaf(std::mem::take(items));
    }
    let leaves = pack_level(std::mem::take(items), Node::Leaf);
    let mut level: Vec<(Rect, Box<Node<T>>)> =
        leaves.into_iter().map(|n| (n.mbr(), Box::new(n))).collect();
    while level.len() > MAX_ENTRIES {
        let packed = pack_level(level, Node::Internal);
        level = packed.into_iter().map(|n| (n.mbr(), Box::new(n))).collect();
    }
    Node::Internal(level)
}

/// One STR packing pass: group `entries` into nodes of ≤ MAX_ENTRIES.
fn pack_level<E, T>(
    mut entries: Vec<(Rect, E)>,
    make: impl Fn(Vec<(Rect, E)>) -> Node<T>,
) -> Vec<Node<T>> {
    let n = entries.len();
    let node_count = n.div_ceil(MAX_ENTRIES);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slice_count);
    entries.sort_by(|a, b| a.0.center().x.total_cmp(&b.0.center().x));
    let mut nodes = Vec::with_capacity(node_count);
    let mut chunks: Vec<Vec<(Rect, E)>> = Vec::new();
    let mut it = entries.into_iter();
    loop {
        let slice: Vec<(Rect, E)> = it.by_ref().take(per_slice).collect();
        if slice.is_empty() {
            break;
        }
        chunks.push(slice);
    }
    for mut slice in chunks {
        slice.sort_by(|a, b| a.0.center().y.total_cmp(&b.0.center().y));
        let mut it = slice.into_iter();
        loop {
            let group: Vec<(Rect, E)> = it.by_ref().take(MAX_ENTRIES).collect();
            if group.is_empty() {
                break;
            }
            nodes.push(make(group));
        }
    }
    nodes
}
