//! Best-first K-nearest-neighbour search over the R-tree.

use crate::node::Node;
use diknn_geom::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One KNN result: the payload and its MINDIST to the query point
/// (exact Euclidean distance for point entries).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnEntry<T> {
    pub item: T,
    pub dist: f64,
}

/// Priority-queue key: finite, ascending distance.
#[derive(PartialEq)]
struct Dist(f64);

impl Eq for Dist {}

impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite distance")
    }
}

enum Candidate<'a, T> {
    Node(&'a Node<T>),
    Item(&'a T),
}

/// Classic best-first traversal (Hjaltason & Samet "distance browsing"):
/// a min-heap over both nodes (by MBR MINDIST) and items; popping an item
/// before any node guarantees it is the next nearest.
pub(crate) fn knn<T: Clone>(root: &Node<T>, q: Point, k: usize) -> Vec<KnnEntry<T>> {
    let mut out = Vec::with_capacity(k);
    if k == 0 {
        return out;
    }
    let mut heap: BinaryHeap<Reverse<(Dist, usize, Candidate<T>)>> = BinaryHeap::new();
    let mut seq = 0usize; // tie-break for equal distances
    heap.push(Reverse((Dist(0.0), seq, Candidate::Node(root))));
    while let Some(Reverse((Dist(d), _, cand))) = heap.pop() {
        match cand {
            Candidate::Item(item) => {
                out.push(KnnEntry {
                    item: item.clone(),
                    dist: d,
                });
                if out.len() == k {
                    break;
                }
            }
            Candidate::Node(Node::Leaf(entries)) => {
                for (r, t) in entries {
                    seq += 1;
                    heap.push(Reverse((Dist(r.min_dist(q)), seq, Candidate::Item(t))));
                }
            }
            Candidate::Node(Node::Internal(children)) => {
                for (r, c) in children {
                    seq += 1;
                    heap.push(Reverse((Dist(r.min_dist(q)), seq, Candidate::Node(c))));
                }
            }
        }
    }
    out
}

// `Candidate` intentionally has no Eq/Ord; wrap it so the heap only compares
// the (Dist, seq) prefix.
impl<T> PartialEq for Candidate<'_, T> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl<T> Eq for Candidate<'_, T> {}
impl<T> PartialOrd for Candidate<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Candidate<'_, T> {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}
