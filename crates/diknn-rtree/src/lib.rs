//! An R-tree spatial index.
//!
//! The Peer-tree baseline of the paper "decentralizes the index structures
//! (e.g., R-tree)" over clusterheads, and the evaluation harness needs a
//! centralized spatial index for exact ground-truth KNN. Both sit on this
//! crate: a classic Guttman R-tree with quadratic node split, an STR
//! (Sort-Tile-Recursive) bulk loader, rectangle range search, and best-first
//! (MINDIST-ordered) K-nearest-neighbour search.
//!
//! The tree stores `(Rect, T)` entries; point data is inserted as degenerate
//! rectangles via [`RTree::insert_point`].
//!
//! # Example
//!
//! ```
//! use diknn_geom::Point;
//! use diknn_rtree::RTree;
//!
//! let mut tree = RTree::new();
//! for i in 0..100u32 {
//!     tree.insert_point(Point::new(i as f64, 0.0), i);
//! }
//! let knn = tree.knn(Point::new(3.2, 0.0), 2);
//! let ids: Vec<u32> = knn.iter().map(|e| e.item).collect();
//! assert_eq!(ids, vec![3, 4]);
//! ```
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

mod node;
mod search;

pub use search::KnnEntry;

use diknn_geom::{Point, Rect};
use node::Node;

/// Maximum entries per node before a split (Guttman's `M`).
const MAX_ENTRIES: usize = 8;
/// Minimum entries per node after a split (Guttman's `m`).
const MIN_ENTRIES: usize = 3;

/// An R-tree over `(Rect, T)` entries.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }
}

impl<T: Clone> RTree<T> {
    /// Bulk-load with Sort-Tile-Recursive packing; much better node
    /// utilisation than repeated inserts.
    pub fn bulk_load(mut items: Vec<(Rect, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        let root = node::str_pack(&mut items);
        RTree { root, len }
    }

    /// Bulk-load point data.
    pub fn bulk_load_points(items: impl IntoIterator<Item = (Point, T)>) -> Self {
        Self::bulk_load(
            items
                .into_iter()
                .map(|(p, t)| (Rect::from_point(p), t))
                .collect(),
        )
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding rectangle of everything in the tree.
    pub fn bounds(&self) -> Rect {
        self.root.mbr()
    }

    /// Insert an entry.
    pub fn insert(&mut self, rect: Rect, item: T) {
        debug_assert!(!rect.is_empty(), "cannot index an empty rect");
        if let Some((left, right)) = self.root.insert(rect, item) {
            // Root split: grow the tree by one level.
            let old = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            drop(old); // the split children fully replace the old root
            self.root = Node::Internal(vec![
                (left.mbr(), Box::new(left)),
                (right.mbr(), Box::new(right)),
            ]);
        }
        self.len += 1;
    }

    /// Insert a point entry.
    pub fn insert_point(&mut self, p: Point, item: T) {
        self.insert(Rect::from_point(p), item);
    }

    /// Remove one entry matching `rect` exactly and `pred` on the payload.
    /// Returns the removed payload. (Simple removal: underfull nodes are
    /// allowed; fine for the workloads here, which rebuild periodically.)
    pub fn remove(&mut self, rect: Rect, pred: impl Fn(&T) -> bool) -> Option<T> {
        let removed = self.root.remove(&rect, &pred);
        if removed.is_some() {
            self.len -= 1;
            // Keep the root well-formed: an emptied internal root becomes a
            // leaf; a single-child internal root collapses one level.
            loop {
                match &mut self.root {
                    Node::Internal(children) if children.is_empty() => {
                        self.root = Node::Leaf(Vec::new());
                    }
                    Node::Internal(children) if children.len() == 1 => {
                        let (_, only) = children.pop().expect("one child");
                        self.root = *only;
                    }
                    _ => break,
                }
            }
        }
        removed
    }

    /// All entries whose rectangle intersects `query`.
    pub fn range(&self, query: Rect) -> Vec<(Rect, T)> {
        let mut out = Vec::new();
        self.root.range(&query, &mut out);
        out
    }

    /// All entries within `radius` of `center` (for point entries this is a
    /// circular range query).
    pub fn within_distance(&self, center: Point, radius: f64) -> Vec<(Rect, T)> {
        let bbox = diknn_geom::Circle::new(center, radius).bounding_rect();
        let r2 = radius * radius;
        self.range(bbox)
            .into_iter()
            .filter(|(rect, _)| rect.min_dist_sq(center) <= r2)
            .collect()
    }

    /// The `k` entries nearest to `q` (by MINDIST of their rectangles;
    /// exact Euclidean distance for point entries), ascending by distance.
    pub fn knn(&self, q: Point, k: usize) -> Vec<KnnEntry<T>> {
        search::knn(&self.root, q, k)
    }

    /// Visit every entry (order unspecified).
    pub fn for_each(&self, mut f: impl FnMut(&Rect, &T)) {
        self.root.for_each(&mut f);
    }

    /// Depth of the tree (1 for a single leaf); exposed for tests.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Check structural invariants; panics on violation. Test helper.
    pub fn check_invariants(&self) {
        let counted = self.root.check(true);
        assert_eq!(counted, self.len, "len out of sync with stored entries");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Point, u32)> {
        (0..n)
            .map(|i| {
                (
                    Point::new((i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0),
                    i as u32,
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new();
        assert!(tree.is_empty());
        assert!(tree.knn(Point::ORIGIN, 3).is_empty());
        assert!(tree.range(Rect::new(0.0, 0.0, 100.0, 100.0)).is_empty());
    }

    #[test]
    fn insert_and_query_small() {
        let mut tree = RTree::new();
        tree.insert_point(Point::new(1.0, 1.0), 'a');
        tree.insert_point(Point::new(5.0, 5.0), 'b');
        tree.insert_point(Point::new(9.0, 9.0), 'c');
        assert_eq!(tree.len(), 3);
        let hits = tree.range(Rect::new(0.0, 0.0, 6.0, 6.0));
        assert_eq!(hits.len(), 2);
        tree.check_invariants();
    }

    #[test]
    fn insert_many_splits_and_remains_consistent() {
        let mut tree = RTree::new();
        for (p, id) in grid_points(100) {
            tree.insert_point(p, id);
        }
        assert_eq!(tree.len(), 100);
        assert!(tree.depth() > 1, "tree should have split");
        tree.check_invariants();
        // Every point must be findable by a point-range query.
        for (p, id) in grid_points(100) {
            let hits = tree.range(Rect::from_point(p));
            assert!(
                hits.iter().any(|(_, t)| *t == id),
                "lost entry {id} at {p:?}"
            );
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = grid_points(100);
        let tree = RTree::bulk_load_points(pts.clone());
        let q = Point::new(34.0, 57.0);
        for k in [1, 5, 17, 100] {
            let got = tree.knn(q, k);
            let mut brute: Vec<(f64, u32)> = pts.iter().map(|&(p, id)| (p.dist(q), id)).collect();
            brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Distances must match position by position; ids as sets (ties
            // at equal distance may be ordered differently).
            assert_eq!(got.len(), k.min(pts.len()), "k={k}");
            for (g, b) in got.iter().zip(&brute) {
                assert!((g.dist - b.0).abs() < 1e-9, "k={k}");
            }
            let mut got_ids: Vec<u32> = got.iter().map(|e| e.item).collect();
            let mut want_ids: Vec<u32> = brute.iter().take(k).map(|&(_, id)| id).collect();
            // Sets can legitimately differ on the boundary tie; compare the
            // strictly-inside prefix.
            let kth = brute[k.min(pts.len()) - 1].0;
            got_ids.retain(|&id| pts[id as usize].0.dist(q) < kth - 1e-9);
            want_ids.retain(|&id| pts[id as usize].0.dist(q) < kth - 1e-9);
            got_ids.sort_unstable();
            want_ids.sort_unstable();
            assert_eq!(got_ids, want_ids, "k={k}");
        }
    }

    #[test]
    fn knn_distances_ascend() {
        let tree = RTree::bulk_load_points(grid_points(100));
        let res = tree.knn(Point::new(12.0, 3.0), 20);
        assert_eq!(res.len(), 20);
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn bulk_load_equals_incremental_content() {
        let pts = grid_points(60);
        let bulk = RTree::bulk_load_points(pts.clone());
        let mut incr = RTree::new();
        for (p, id) in pts {
            incr.insert_point(p, id);
        }
        bulk.check_invariants();
        incr.check_invariants();
        assert_eq!(bulk.len(), incr.len());
        let q = Point::new(50.0, 50.0);
        let a: Vec<f64> = bulk.knn(q, 10).iter().map(|e| e.dist).collect();
        let b: Vec<f64> = incr.knn(q, 10).iter().map(|e| e.dist).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn remove_deletes_exactly_one() {
        let mut tree = RTree::new();
        for (p, id) in grid_points(50) {
            tree.insert_point(p, id);
        }
        let target = Point::new(30.0, 20.0); // id 23
        let removed = tree.remove(Rect::from_point(target), |&id| id == 23);
        assert_eq!(removed, Some(23));
        assert_eq!(tree.len(), 49);
        tree.check_invariants();
        assert!(tree
            .range(Rect::from_point(target))
            .iter()
            .all(|(_, id)| *id != 23));
        // Removing again fails.
        assert_eq!(tree.remove(Rect::from_point(target), |&id| id == 23), None);
    }

    #[test]
    fn within_distance_is_circular() {
        let tree = RTree::bulk_load_points(grid_points(100));
        let center = Point::new(45.0, 45.0);
        let hits = tree.within_distance(center, 15.0);
        for (r, _) in &hits {
            assert!(r.center().dist(center) <= 15.0 + 1e-9);
        }
        // The corner of the bounding box (~21.2 away diagonally) must be
        // excluded even though the box query would include it.
        assert!(hits
            .iter()
            .all(|(r, _)| r.center() != Point::new(60.0, 60.0)));
        // Brute-force count check.
        let brute = grid_points(100)
            .iter()
            .filter(|(p, _)| p.dist(center) <= 15.0)
            .count();
        assert_eq!(hits.len(), brute);
    }

    #[test]
    fn knn_with_k_larger_than_len() {
        let tree = RTree::bulk_load_points(grid_points(5));
        let res = tree.knn(Point::ORIGIN, 10);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn bounds_cover_everything() {
        let tree = RTree::bulk_load_points(grid_points(100));
        let b = tree.bounds();
        tree.for_each(|r, _| assert!(b.contains_rect(r)));
    }

    #[test]
    fn rect_entries_supported() {
        let mut tree = RTree::new();
        tree.insert(Rect::new(0.0, 0.0, 10.0, 10.0), "cell-a");
        tree.insert(Rect::new(10.0, 0.0, 20.0, 10.0), "cell-b");
        tree.insert(Rect::new(0.0, 10.0, 10.0, 20.0), "cell-c");
        let hits = tree.range(Rect::new(5.0, 5.0, 6.0, 6.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "cell-a");
        // MINDIST KNN over rects: the nearest cell to (15, 15) is whichever
        // touches it; here none contains it, b and c are 5 away.
        let knn = tree.knn(Point::new(15.0, 15.0), 2);
        assert!((knn[0].dist - 5.0).abs() < 1e-12);
    }
}
