//! End-to-end runs of the baseline protocols: they must answer queries with
//! reasonable accuracy on static networks and exhibit the qualitative
//! weaknesses the paper attributes to them.

use std::sync::Arc;

use diknn_baselines::{Flood, FloodConfig, Kpt, KptBoundary, KptConfig, PeerTree, PeerTreeConfig};
use diknn_core::{KnnProtocol, QueryRequest};
use diknn_geom::{Point, Rect};
use diknn_mobility::{placement, RandomWaypoint, RwpConfig, StaticMobility};
use diknn_sim::{NodeId, SharedMobility, SimConfig, SimDuration, Simulator, TraceConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 115.0,
    max_y: 115.0,
};

fn static_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    placement::uniform(FIELD, n, &mut rng)
}

fn to_static(points: &[Point]) -> Vec<SharedMobility> {
    points
        .iter()
        .map(|&p| Arc::new(StaticMobility::new(p)) as SharedMobility)
        .collect()
}

fn exact_knn(positions: &[Point], q: Point, k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..positions.len()).collect();
    idx.sort_by(|&a, &b| {
        positions[a]
            .dist(q)
            .partial_cmp(&positions[b].dist(q))
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

fn accuracy(answer: &[NodeId], truth: &[usize]) -> f64 {
    answer.iter().filter(|n| truth.contains(&n.index())).count() as f64 / truth.len() as f64
}

fn sim_config(seconds: f64) -> SimConfig {
    SimConfig {
        time_limit: SimDuration::from_secs_f64(seconds),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    }
}

fn run_protocol<P: KnnProtocol>(
    nodes: Vec<SharedMobility>,
    protocol: P,
    seed: u64,
    seconds: f64,
) -> Simulator<P> {
    let mut sim = Simulator::new(sim_config(seconds), nodes, protocol, seed);
    sim.warm_neighbor_tables();
    sim.run();
    // Classify anything still pending and replay the flight-recorder trace
    // against the protocol laws before any assertion looks at metrics.
    let (proto, ctx) = sim.split_mut();
    proto.finish(ctx);
    diknn_workloads::invariants::assert_clean(ctx.trace(), proto.outcomes());
    sim
}

#[test]
fn kpt_static_answers_accurately() {
    let pts = static_points(200, 7);
    let q = Point::new(60.0, 55.0);
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q,
        k: 10,
    };
    let sim = run_protocol(
        to_static(&pts),
        Kpt::new(KptConfig::default(), vec![req]),
        7,
        30.0,
    );
    let o = &sim.protocol().outcomes()[0];
    assert!(o.completed_at.is_some(), "KPT query never completed: {o:?}");
    let truth = exact_knn(&pts, q, 10);
    let acc = accuracy(&o.answer, &truth);
    assert!(acc >= 0.8, "KPT static accuracy {acc}");
}

#[test]
fn kpt_conservative_boundary_floods_more_than_knnb() {
    let pts = static_points(200, 9);
    let q = Point::new(57.0, 57.0);
    let mk_req = || QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q,
        k: 20,
    };
    let knnb_sim = run_protocol(
        to_static(&pts),
        Kpt::new(KptConfig::default(), vec![mk_req()]),
        9,
        30.0,
    );
    let cons_sim = run_protocol(
        to_static(&pts),
        Kpt::new(
            KptConfig {
                boundary: KptBoundary::Conservative {
                    mean_hop_distance: 15.0,
                },
                ..KptConfig::default()
            },
            vec![mk_req()],
        ),
        9,
        30.0,
    );
    let e_knnb = knnb_sim.ctx().total_protocol_energy_j();
    let e_cons = cons_sim.ctx().total_protocol_energy_j();
    assert!(
        e_cons > 1.5 * e_knnb,
        "conservative boundary should flood: {e_cons} vs {e_knnb}"
    );
    let r_knnb = knnb_sim.protocol().outcomes()[0].boundary_radius;
    let r_cons = cons_sim.protocol().outcomes()[0].boundary_radius;
    assert!(r_cons > 2.0 * r_knnb, "radius {r_cons} vs {r_knnb}");
}

#[test]
fn peertree_static_answers() {
    let pts = static_points(200, 13);
    let cfg = PeerTreeConfig::default();
    let mut nodes = to_static(&pts);
    for hp in PeerTree::clusterhead_positions(FIELD, cfg.grid) {
        nodes.push(Arc::new(StaticMobility::new(hp)) as SharedMobility);
    }
    let q = Point::new(60.0, 55.0);
    let req = QueryRequest {
        at: 6.0, // give the index time to build
        sink: NodeId(0),
        q,
        k: 10,
    };
    let sim = run_protocol(nodes, PeerTree::new(cfg, FIELD, 200, vec![req]), 13, 30.0);
    let o = &sim.protocol().outcomes()[0];
    assert!(
        o.completed_at.is_some(),
        "Peer-tree query never completed: {o:?}"
    );
    let truth = exact_knn(&pts, q, 10);
    let acc = accuracy(&o.answer, &truth);
    assert!(acc >= 0.6, "Peer-tree static accuracy {acc}");
    // Clusterheads must never appear in answers.
    assert!(o.answer.iter().all(|n| n.index() < 200));
}

#[test]
fn peertree_accuracy_collapses_under_high_mobility() {
    let run = |speed: f64| -> f64 {
        let mut rng = SmallRng::seed_from_u64(17);
        let pts = placement::uniform(FIELD, 200, &mut rng);
        let cfg = PeerTreeConfig::default();
        let mut nodes: Vec<SharedMobility> = Vec::new();
        let mut oracle: Vec<SharedMobility> = Vec::new();
        let mut rng2 = SmallRng::seed_from_u64(18);
        for &p in &pts {
            if speed > 0.0 {
                let m = RandomWaypoint::new(p, &RwpConfig::new(FIELD, speed, 60.0), &mut rng2);
                nodes.push(Arc::new(m.clone()) as SharedMobility);
                oracle.push(Arc::new(m) as SharedMobility);
            } else {
                nodes.push(Arc::new(StaticMobility::new(p)) as SharedMobility);
                oracle.push(Arc::new(StaticMobility::new(p)) as SharedMobility);
            }
        }
        for hp in PeerTree::clusterhead_positions(FIELD, cfg.grid) {
            nodes.push(Arc::new(StaticMobility::new(hp)) as SharedMobility);
        }
        let queries: Vec<QueryRequest> = (0..3)
            .map(|i| QueryRequest {
                at: 6.0 + 6.0 * i as f64,
                sink: NodeId(i as u32),
                q: Point::new(40.0 + 15.0 * i as f64, 60.0),
                k: 10,
            })
            .collect();
        let sim = run_protocol(
            nodes,
            PeerTree::new(cfg, FIELD, 200, queries.clone()),
            17,
            40.0,
        );
        let mut total = 0.0;
        for (o, req) in sim.protocol().outcomes().iter().zip(&queries) {
            let t = o
                .completed_at
                .map(|t| t.as_secs_f64())
                .unwrap_or(req.at + 20.0);
            let positions: Vec<Point> = oracle.iter().map(|m| m.position_at(t)).collect();
            let truth = exact_knn(&positions, req.q, req.k);
            total += accuracy(&o.answer, &truth);
        }
        total / 3.0
    };
    let acc_static = run(0.0);
    let acc_fast = run(25.0);
    assert!(
        acc_fast < acc_static,
        "mobility should hurt Peer-tree: static {acc_static} vs fast {acc_fast}"
    );
}

#[test]
fn flood_answers_but_burns_energy() {
    // The paper's argument against naive flooding is the "excessive number
    // of independent routing paths from sensor nodes to s": it bites when
    // k is large and the sink is far from the query point, so compare at
    // k = 60 with q across the field from the sink.
    //
    // Flood accuracy is strongly seed-sensitive (MAC collisions on the many
    // independent reply paths drop responses — exactly the weakness the
    // paper describes), so a single pinned seed makes this test fragile to
    // any behaviour-preserving engine change. Assert on the *median* over a
    // fixed seed set instead: individual placements may lose replies, but
    // the typical run must clear the accuracy bar while the energy gap
    // stays large.
    const SEEDS: [u64; 5] = [27, 28, 29, 31, 33];
    let mut accs = Vec::new();
    let mut energy_gaps = Vec::new();
    for seed in SEEDS {
        let pts = static_points(200, seed);
        let q = Point::new(100.0, 100.0);
        let req = QueryRequest {
            at: 0.5,
            sink: NodeId(0),
            q,
            k: 60,
        };
        let flood_sim = run_protocol(
            to_static(&pts),
            Flood::new(FloodConfig::default(), vec![req]),
            seed,
            30.0,
        );
        let o = &flood_sim.protocol().outcomes()[0];
        assert!(
            o.completed_at.is_some(),
            "flood query never completed (seed {seed})"
        );
        let truth = exact_knn(&pts, q, 60);
        accs.push(accuracy(&o.answer, &truth));
        // Compare energy with DIKNN on the same scenario: the naive flood
        // should typically cost clearly more.
        let diknn_sim = run_protocol(
            to_static(&pts),
            diknn_core::Diknn::new(diknn_core::DiknnConfig::default(), vec![req]),
            seed,
            30.0,
        );
        let e_flood = flood_sim.ctx().total_protocol_energy_j();
        let e_diknn = diknn_sim.ctx().total_protocol_energy_j();
        energy_gaps.push(e_flood / e_diknn);
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let med_acc = median(&mut accs);
    assert!(med_acc >= 0.7, "median flood accuracy {med_acc} ({accs:?})");
    let med_gap = median(&mut energy_gaps);
    assert!(
        med_gap > 1.0,
        "flood should typically out-spend DIKNN: median ratio {med_gap} ({energy_gaps:?})"
    );
}

#[test]
fn kpt_latency_grows_with_k() {
    let pts = static_points(200, 25);
    let run_k = |k: usize| -> f64 {
        let req = QueryRequest {
            at: 0.5,
            sink: NodeId(0),
            q: Point::new(57.0, 57.0),
            k,
        };
        let sim = run_protocol(
            to_static(&pts),
            Kpt::new(KptConfig::default(), vec![req]),
            25,
            30.0,
        );
        sim.protocol().outcomes()[0]
            .latency()
            .unwrap_or(f64::INFINITY)
    };
    let lat_small = run_k(10);
    let lat_large = run_k(80);
    assert!(
        lat_large > lat_small,
        "KPT latency must grow with k: {lat_small} vs {lat_large}"
    );
}

#[test]
fn baseline_runs_are_deterministic() {
    let pts = static_points(150, 29);
    let run = || {
        let req = QueryRequest {
            at: 0.5,
            sink: NodeId(0),
            q: Point::new(60.0, 60.0),
            k: 15,
        };
        let sim = run_protocol(
            to_static(&pts),
            Kpt::new(KptConfig::default(), vec![req]),
            29,
            30.0,
        );
        let o = &sim.protocol().outcomes()[0];
        (o.answer.clone(), o.completed_at)
    };
    assert_eq!(run(), run());
}
