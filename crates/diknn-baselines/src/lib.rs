//! Baseline KNN protocols from the DIKNN paper's evaluation (§5):
//!
//! * [`Kpt`] — the spanning-tree approach of [29, 30], with either its
//!   original conservative boundary or the paper's fair "KPT+KNNB" variant.
//! * [`PeerTree`] — the decentralized R-tree / clusterhead hierarchy of
//!   \[7\], configured as in §5.1 (5×5 grid of stationary clusterheads with
//!   periodic membership notifications).
//! * [`Flood`] — the naive infrastructure-free flood the paper rules out
//!   in §3.3 (every in-boundary node answers along its own route).
//! * [`Centralized`] — the centralized-index branch of the Figure 1
//!   taxonomy: a base station R-tree refreshed by periodic position
//!   reports from every node.
//!
//! All three implement [`diknn_core::KnnProtocol`], so the workload harness
//! measures them exactly like DIKNN.
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

mod centralized;
mod flood;
mod kpt;
mod peertree;

pub use centralized::{CentralMsg, Centralized, CentralizedConfig};
pub use flood::{Flood, FloodConfig, FloodMsg};
pub use kpt::{Kpt, KptBoundary, KptConfig, KptMsg};
pub use peertree::{PeerTree, PeerTreeConfig, PtMsg};
