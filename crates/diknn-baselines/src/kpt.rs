//! KPT — the spanning-tree KNN baseline (Winter & Lee [29]; Winter, Xu &
//! Lee [30]), as simulated in the paper's evaluation.
//!
//! Execution: the query geo-routes to the home node; the home node
//! estimates a search boundary; multiple trees rooted at the home node are
//! built by flooding inside the boundary; data is aggregated leaf-to-root
//! with per-depth timers; the home node sorts and returns the KNN result to
//! the sink.
//!
//! Two boundary modes are provided:
//! * [`KptBoundary::Conservative`] — the original `R = k × MHD` rule, whose
//!   area grows quadratically in `k` and floods the network (§5.1 notes
//!   `R = 300 m` for `k = 20`).
//! * [`KptBoundary::Knnb`] — the paper's fair variant "KPT+KNNB": the same
//!   KNNB estimator DIKNN uses (this is what Figures 8–9 plot).
//!
//! Mobility pain is modelled faithfully: tree links are discovered at flood
//! time; a child whose parent has moved out of range at report time
//! re-attaches to any neighbour closer to the home node and re-sends its
//! partial aggregate — the "forwarded again and again" overhead the paper
//! describes.

use std::collections::{BTreeMap, BTreeSet};

use diknn_geom::Point;
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};

use diknn_core::knnb::{knnb, kpt_conservative_radius, HopRecord};
use diknn_core::{Candidate, CandidateSet, KnnProtocol, QueryOutcome, QueryRequest, QueryStatus};

const K_ISSUE: u8 = 1;
const K_REPORT: u8 = 2;
const K_SINK_TIMEOUT: u8 = 3;
const K_FINALIZE: u8 = 4;

/// Neighbour snapshot filtered by the link-reliability predictor
/// ([`diknn_routing::reliable_neighbors`]): avoids unicasting to entries
/// that have likely drifted out of range.
fn reliable(ctx: &mut Ctx<KptMsg>, at: NodeId) -> Vec<diknn_sim::Neighbor> {
    let raw = ctx.neighbors(at);
    diknn_routing::reliable_neighbors(
        ctx.position(at),
        ctx.speed(at),
        ctx.now(),
        &raw,
        ctx.config().radio_range,
    )
}

fn key(kind: u8, qid: u32, aux: u32) -> u64 {
    ((kind as u64) << 56) | ((qid as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

/// Boundary estimation mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KptBoundary {
    /// Original conservative rule `R = k × MHD`.
    Conservative { mean_hop_distance: f64 },
    /// The paper's evaluation variant: KNNB-estimated boundary.
    Knnb,
}

/// KPT configuration.
#[derive(Debug, Clone)]
pub struct KptConfig {
    pub boundary: KptBoundary,
    /// Per-depth aggregation slot in seconds: a node at depth `d` in a tree
    /// of estimated height `H` reports at a random moment within its level
    /// slot, `[(H − d − 1) × agg_slot, (H − d) × agg_slot)`.
    ///
    /// This fixed per-level schedule is what the paper's KPT uses — the
    /// reporters of one level contend within their slot, which is exactly
    /// the "serious degree of collision and large retransmissions of data
    /// in the tree" the paper observes at large k.
    pub agg_slot: f64,
    /// Optional k-scaled contention budget (seconds per expected reporter).
    /// 0 (default) reproduces the paper's fixed schedule; a positive value
    /// (e.g. DIKNN's 0.018) spreads reports over `k × per_report_slot`,
    /// trading latency for fewer collisions — the "KPT with collection
    /// scheduling" ablation.
    pub per_report_slot: f64,
    /// Per-node response payload (10 bytes in the paper).
    pub response_bytes: usize,
    /// Fixed message overhead in bytes.
    pub base_msg_bytes: usize,
    /// Sink gives up after this many seconds.
    pub sink_timeout: f64,
}

impl Default for KptConfig {
    fn default() -> Self {
        KptConfig {
            boundary: KptBoundary::Knnb,
            agg_slot: 0.4,
            per_report_slot: 0.0,
            response_bytes: 10,
            base_msg_bytes: 24,
            sink_timeout: 20.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KptSpec {
    pub qid: u32,
    pub sink: NodeId,
    pub sink_pos: Point,
    pub q: Point,
    pub k: u32,
    pub issued_at: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
pub enum KptMsg {
    /// Routing phase (same hop-record gathering as DIKNN when the KNNB
    /// boundary mode is active).
    Query {
        spec: KptSpec,
        gpsr: GpsrHeader,
        list: Vec<HopRecord>,
    },
    /// Tree-construction flood inside the boundary.
    TreeBuild {
        spec: KptSpec,
        radius: f64,
        parent: NodeId,
        depth: u32,
        height: u32,
    },
    /// Leaf-to-root aggregation.
    Report {
        qid: u32,
        candidates: CandidateSet,
        explored: u32,
    },
    /// Final result routed home → sink.
    Result {
        spec: KptSpec,
        gpsr: GpsrHeader,
        candidates: CandidateSet,
        explored: u32,
        radius: f64,
    },
}

impl KptMsg {
    /// Query id for per-query energy attribution (every KPT frame is
    /// query-scoped).
    fn qid(&self) -> Option<u32> {
        match self {
            KptMsg::Query { spec, .. }
            | KptMsg::TreeBuild { spec, .. }
            | KptMsg::Result { spec, .. } => Some(spec.qid),
            KptMsg::Report { qid, .. } => Some(*qid),
        }
    }

    fn wire_bytes(&self, cfg: &KptConfig) -> usize {
        match self {
            KptMsg::Query { list, .. } => cfg.base_msg_bytes + 10 * list.len(),
            KptMsg::TreeBuild { .. } => cfg.base_msg_bytes + 8,
            KptMsg::Report { candidates, .. } => {
                cfg.base_msg_bytes + candidates.wire_bytes(cfg.response_bytes)
            }
            KptMsg::Result { candidates, .. } => {
                cfg.base_msg_bytes + candidates.wire_bytes(cfg.response_bytes)
            }
        }
    }
}

/// Per-node, per-query tree membership.
struct TreeNode {
    spec: KptSpec,
    parent: NodeId,
    /// Aggregate of own data + children reports received so far.
    agg: CandidateSet,
    explored: u32,
    /// Portion of `explored` already reported upward; re-reports send only
    /// the delta so counts are never double-merged.
    explored_sent: u32,
    reported: bool,
    /// Neighbours that failed to take our report (excluded from further
    /// attempts).
    report_excludes: Vec<NodeId>,
    /// Delivery attempts made for this node's report.
    retry_rounds: u32,
}

struct HomeState {
    spec: KptSpec,
    node: NodeId,
    radius: f64,
    merged: CandidateSet,
    explored: u32,
    done: bool,
}

/// The KPT protocol instance.
pub struct Kpt {
    cfg: KptConfig,
    requests: Vec<QueryRequest>,
    outcomes: Vec<QueryOutcome>,
    /// (qid, node) → tree membership.
    trees: BTreeMap<(u32, u32), TreeNode>,
    homes: BTreeMap<u32, HomeState>,
    sink_done: BTreeSet<u32>,
    query_excludes: BTreeMap<u32, Vec<NodeId>>,
    result_excludes: BTreeMap<u32, Vec<NodeId>>,
    radio_range: f64,
}

impl Kpt {
    pub fn new(cfg: KptConfig, requests: Vec<QueryRequest>) -> Self {
        Kpt {
            cfg,
            requests,
            outcomes: Vec::new(),
            trees: BTreeMap::new(),
            homes: BTreeMap::new(),
            sink_done: BTreeSet::new(),
            query_excludes: BTreeMap::new(),
            result_excludes: BTreeMap::new(),
            radio_range: 0.0,
        }
    }

    fn send(&self, ctx: &mut Ctx<KptMsg>, from: NodeId, to: NodeId, msg: KptMsg) {
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = msg.qid();
        ctx.unicast_flow(from, to, bytes, msg, flow);
    }

    fn broadcast(&self, ctx: &mut Ctx<KptMsg>, from: NodeId, msg: KptMsg) {
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = msg.qid();
        ctx.broadcast_flow(from, bytes, msg, flow);
    }

    fn issue(&mut self, ctx: &mut Ctx<KptMsg>, idx: usize) {
        let req = self.requests[idx];
        let qid = self.outcomes.len() as u32;
        let spec = KptSpec {
            qid,
            sink: req.sink,
            sink_pos: ctx.position(req.sink),
            q: req.q,
            k: req.k.max(1) as u32,
            issued_at: ctx.now(),
        };
        self.outcomes.push(QueryOutcome {
            qid,
            sink: req.sink,
            q: req.q,
            k: req.k,
            issued_at: ctx.now(),
            completed_at: None,
            answer: Vec::new(),
            boundary_radius: 0.0,
            final_radius: 0.0,
            routing_hops: 0,
            parts_expected: 1,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        });
        ctx.set_timer(
            req.sink,
            SimDuration::from_secs_f64(self.cfg.sink_timeout),
            key(K_SINK_TIMEOUT, qid, 0),
        );
        let msg = KptMsg::Query {
            spec,
            gpsr: GpsrHeader::new(req.q),
            list: Vec::new(),
        };
        self.query_arrival(ctx, req.sink, msg, None);
    }

    fn query_arrival(
        &mut self,
        ctx: &mut Ctx<KptMsg>,
        at: NodeId,
        msg: KptMsg,
        from: Option<NodeId>,
    ) {
        let KptMsg::Query {
            spec,
            gpsr,
            mut list,
        } = msg
        else {
            unreachable!()
        };
        self.query_excludes.remove(&spec.qid);
        let neighbors = reliable(ctx, at);
        let prev = list.last().map(|h| h.loc);
        let enc = match prev {
            None => neighbors.len() as u32,
            Some(p) => neighbors
                .iter()
                .filter(|n| n.position.dist(p) > self.radio_range)
                .count() as u32,
        };
        list.push(HopRecord {
            loc: ctx.position(at),
            enc,
        });
        self.forward_query(ctx, at, spec, gpsr, list, from);
    }

    fn forward_query(
        &mut self,
        ctx: &mut Ctx<KptMsg>,
        at: NodeId,
        spec: KptSpec,
        gpsr: GpsrHeader,
        list: Vec<HopRecord>,
        from: Option<NodeId>,
    ) {
        let neighbors = reliable(ctx, at);
        let exclude = self
            .query_excludes
            .get(&spec.qid)
            .cloned()
            .unwrap_or_default();
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev_pos,
            &exclude,
            1.5 * self.radio_range, // home node = closest to q; skip face walks
        ) {
            RouteStep::Forward { next, header } => {
                self.send(
                    ctx,
                    at,
                    next,
                    KptMsg::Query {
                        spec,
                        gpsr: header,
                        list,
                    },
                );
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                self.become_home(ctx, at, spec, &list);
            }
        }
    }

    fn become_home(&mut self, ctx: &mut Ctx<KptMsg>, home: NodeId, spec: KptSpec, l: &[HopRecord]) {
        let field = ctx.config().field;
        let diag = (field.width().powi(2) + field.height().powi(2)).sqrt();
        let radius = match self.cfg.boundary {
            KptBoundary::Knnb => knnb(l, spec.q, self.radio_range, spec.k as usize).radius,
            KptBoundary::Conservative { mean_hop_distance } => {
                kpt_conservative_radius(spec.k as usize, mean_hop_distance)
            }
        }
        .clamp(self.radio_range * 0.5, diag);
        if let Some(o) = self.outcomes.get_mut(spec.qid as usize) {
            o.boundary_radius = radius;
            o.final_radius = radius;
            o.routing_hops = l.len().saturating_sub(1) as u32;
        }
        let height = (radius / (0.7 * self.radio_range)).ceil() as u32 + 1;
        let mut agg = CandidateSet::new(spec.k as usize);
        let my_pos = ctx.position(home);
        agg.insert(Candidate {
            id: home,
            position: my_pos,
            dist: my_pos.dist(spec.q),
        });
        self.homes.insert(
            spec.qid,
            HomeState {
                spec,
                node: home,
                radius,
                merged: CandidateSet::new(spec.k as usize),
                explored: 1,
                done: false,
            },
        );
        self.trees.insert(
            (spec.qid, home.0),
            TreeNode {
                spec,
                parent: home,
                agg,
                explored: 1,
                explored_sent: 0,
                reported: false,
                report_excludes: Vec::new(),
                retry_rounds: 0,
            },
        );
        // Flood the tree-build message.
        self.broadcast(
            ctx,
            home,
            KptMsg::TreeBuild {
                spec,
                radius,
                parent: home,
                depth: 0,
                height,
            },
        );
        // The home node finalises after the full aggregation schedule:
        // all depth slots plus any k-scaled contention budget.
        let spread = self.cfg.per_report_slot * spec.k as f64;
        let wait = self.cfg.agg_slot * (height as f64 + 1.0) + spread + 0.15;
        ctx.set_timer(
            home,
            SimDuration::from_secs_f64(wait),
            key(K_FINALIZE, spec.qid, 0),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn tree_build(
        &mut self,
        ctx: &mut Ctx<KptMsg>,
        at: NodeId,
        spec: KptSpec,
        radius: f64,
        parent: NodeId,
        depth: u32,
        height: u32,
    ) {
        let my_pos = ctx.position(at);
        if my_pos.dist(spec.q) > radius {
            return; // outside the boundary
        }
        if self.trees.contains_key(&(spec.qid, at.0)) {
            return; // already in a tree for this query
        }
        let mut agg = CandidateSet::new(spec.k as usize);
        agg.insert(Candidate {
            id: at,
            position: my_pos,
            dist: my_pos.dist(spec.q),
        });
        self.trees.insert(
            (spec.qid, at.0),
            TreeNode {
                spec,
                parent,
                agg,
                explored: 1,
                explored_sent: 0,
                reported: false,
                report_excludes: Vec::new(),
                retry_rounds: 0,
            },
        );
        // Continue the flood.
        self.broadcast(
            ctx,
            at,
            KptMsg::TreeBuild {
                spec,
                radius,
                parent: at,
                depth: depth + 1,
                height,
            },
        );
        // Schedule this node's upward report: deeper nodes report earlier,
        // jittered within the level slot (plus the optional k-scaled
        // budget of the improved-KPT ablation).
        let slots = (height.saturating_sub(depth + 1)) as f64;
        let spread = self.cfg.per_report_slot * spec.k as f64;
        let jitter: f64 = {
            use rand::Rng;
            ctx.rng().gen_range(0.0..self.cfg.agg_slot.max(spread))
        };
        let wait = self.cfg.agg_slot * slots + jitter;
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(wait),
            key(K_REPORT, spec.qid, 0),
        );
    }

    /// A node's aggregation timer fired: report the partial aggregate to
    /// the parent (re-attaching if the parent has moved away).
    fn report_up(&mut self, ctx: &mut Ctx<KptMsg>, at: NodeId, qid: u32) {
        let Some(node) = self.trees.get_mut(&(qid, at.0)) else {
            return;
        };
        if node.reported {
            return;
        }
        node.reported = true;
        let spec = node.spec;
        // Data is read at report time: refresh our own entry so the
        // reported position is current, not the tree-construction snapshot.
        let my_pos = ctx.position(at);
        node.agg.insert(Candidate {
            id: at,
            position: my_pos,
            dist: my_pos.dist(node.spec.q),
        });
        let candidates = node.agg.clone();
        let explored = node.explored - node.explored_sent;
        node.explored_sent = node.explored;
        let parent = node.parent;
        // The home node reports to itself via the finalize timer instead.
        if self.homes.get(&qid).map(|h| h.node) == Some(at) {
            return;
        }
        let msg = KptMsg::Report {
            qid,
            candidates,
            explored,
        };
        // Tree maintenance: if the recorded parent is no longer a
        // neighbour (or failed before), re-attach to the neighbour closest
        // to q (mobility overhead: the partial data travels again — and
        // again, the paper's "forwarded again and again").
        let excludes = self
            .trees
            .get(&(qid, at.0))
            .map(|n| n.report_excludes.clone())
            .unwrap_or_default();
        let neighbors = reliable(ctx, at);
        let target = if neighbors.iter().any(|n| n.id == parent) && !excludes.contains(&parent) {
            Some(parent)
        } else {
            neighbors
                .iter()
                .filter(|n| !excludes.contains(&n.id))
                .filter(|n| n.position.dist(spec.q) < ctx.position(at).dist(spec.q))
                .min_by(|a, b| {
                    a.position
                        .dist(spec.q)
                        .total_cmp(&b.position.dist(spec.q))
                        .then(a.id.cmp(&b.id))
                })
                .map(|n| n.id)
        };
        if let Some(t) = target {
            self.send(ctx, at, t, msg);
        }
        // else: stranded subtree, data lost (accuracy cost under mobility).
    }

    /// A report arrived at `at`: merge into the local aggregate (or into
    /// the home merge set), forwarding late if already reported.
    fn absorb_report(
        &mut self,
        ctx: &mut Ctx<KptMsg>,
        at: NodeId,
        qid: u32,
        candidates: &CandidateSet,
        explored: u32,
    ) {
        if let Some(home) = self.homes.get_mut(&qid) {
            if home.node == at {
                if !home.done {
                    home.merged.merge(candidates);
                    home.explored += explored;
                } else {
                    // Straggler report after finalisation: lost (the
                    // paper's accuracy cost of long tree latency).
                }
                return;
            }
        }
        let Some(node) = self.trees.get_mut(&(qid, at.0)) else {
            return; // not in this tree: drop
        };
        node.agg.merge(candidates);
        node.explored += explored;
        if node.reported {
            // Late child report after we already reported: forward the
            // delta upward immediately (the paper's re-forwarding
            // overhead).
            node.reported = false;
            self.report_up(ctx, at, qid);
        }
    }

    /// Home's aggregation window ended: merge own subtree and route the
    /// result to the sink.
    fn finalize_home(&mut self, ctx: &mut Ctx<KptMsg>, at: NodeId, qid: u32) {
        let Some(home) = self.homes.get_mut(&qid) else {
            return;
        };
        if home.done {
            return;
        }
        home.done = true;
        let spec = home.spec;
        let radius = home.radius;
        let mut merged = home.merged.clone();
        let explored = home.explored;
        if let Some(own) = self.trees.get(&(qid, at.0)) {
            merged.merge(&own.agg);
        }
        let msg = KptMsg::Result {
            spec,
            gpsr: GpsrHeader::new(spec.sink_pos),
            candidates: merged,
            explored,
            radius,
        };
        self.route_result(ctx, at, msg, None);
    }

    fn route_result(
        &mut self,
        ctx: &mut Ctx<KptMsg>,
        at: NodeId,
        msg: KptMsg,
        from: Option<NodeId>,
    ) {
        let KptMsg::Result { ref spec, .. } = msg else {
            unreachable!()
        };
        let spec = *spec;
        if at == spec.sink {
            return self.sink_receive(ctx, msg);
        }
        let neighbors = reliable(ctx, at);
        if neighbors.iter().any(|n| n.id == spec.sink) {
            return self.send(ctx, at, spec.sink, msg);
        }
        let KptMsg::Result {
            spec,
            gpsr,
            candidates,
            explored,
            radius,
        } = msg
        else {
            unreachable!()
        };
        let exclude = self
            .result_excludes
            .get(&spec.qid)
            .cloned()
            .unwrap_or_default();
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev_pos,
            &exclude,
            self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                self.send(
                    ctx,
                    at,
                    next,
                    KptMsg::Result {
                        spec,
                        gpsr: header,
                        candidates,
                        explored,
                        radius,
                    },
                );
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                // Result lost; the sink timeout will close the query empty.
            }
        }
    }

    fn sink_receive(&mut self, ctx: &mut Ctx<KptMsg>, msg: KptMsg) {
        let KptMsg::Result {
            spec,
            candidates,
            explored,
            radius,
            ..
        } = msg
        else {
            unreachable!()
        };
        if !self.sink_done.insert(spec.qid) {
            return;
        }
        let o = &mut self.outcomes[spec.qid as usize];
        o.completed_at = Some(ctx.now());
        o.answer = candidates.ids();
        o.answer.truncate(o.k);
        o.parts_returned = 1;
        o.explored_nodes = explored;
        o.final_radius = radius;
    }
}

impl Protocol for Kpt {
    type Msg = KptMsg;

    fn on_start(&mut self, ctx: &mut Ctx<KptMsg>) {
        self.radio_range = ctx.config().radio_range;
        for (i, req) in self.requests.clone().into_iter().enumerate() {
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64(req.at),
                key(K_ISSUE, 0, i as u32),
            );
        }
    }

    fn on_timer(&mut self, at: NodeId, timer_key: u64, ctx: &mut Ctx<KptMsg>) {
        let kind = (timer_key >> 56) as u8;
        let qid = ((timer_key >> 24) & 0xFFFF_FFFF) as u32;
        let aux = (timer_key & 0xFF_FFFF) as u32;
        match kind {
            K_ISSUE => self.issue(ctx, aux as usize),
            K_REPORT => self.report_up(ctx, at, qid),
            K_FINALIZE => self.finalize_home(ctx, at, qid),
            K_SINK_TIMEOUT => {
                // Query closes with whatever the sink got (possibly
                // nothing); outcomes already reflect it.
            }
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &KptMsg, ctx: &mut Ctx<KptMsg>) {
        match msg {
            KptMsg::Query { .. } => self.query_arrival(ctx, at, msg.clone(), Some(from)),
            KptMsg::TreeBuild {
                spec,
                radius,
                parent,
                depth,
                height,
            } => self.tree_build(ctx, at, *spec, *radius, *parent, *depth, *height),
            KptMsg::Report {
                qid,
                candidates,
                explored,
            } => self.absorb_report(ctx, at, *qid, candidates, *explored),
            KptMsg::Result { .. } => self.route_result(ctx, at, msg.clone(), Some(from)),
        }
    }

    fn on_send_failed(&mut self, at: NodeId, to: NodeId, msg: &KptMsg, ctx: &mut Ctx<KptMsg>) {
        match msg {
            KptMsg::Query { spec, gpsr, list } => {
                self.query_excludes.entry(spec.qid).or_default().push(to);
                if self.query_excludes[&spec.qid].len() <= 8 {
                    self.forward_query(ctx, at, *spec, *gpsr, list.clone(), None);
                }
            }
            KptMsg::Report {
                qid,
                candidates,
                explored,
            } => {
                // Parent unreachable: re-attach once via the fallback rule.
                if let Some(node) = self.trees.get_mut(&(*qid, at.0)) {
                    // Persistent report delivery — the paper's "large
                    // retransmissions of data in the tree": merge the data
                    // back and retry after a random share of a level slot
                    // (excluding the failed neighbour after repeated
                    // failures), up to 5 rounds.
                    node.retry_rounds += 1;
                    if node.retry_rounds > 2 {
                        node.report_excludes.push(to);
                    }
                    if node.retry_rounds <= 5 {
                        node.reported = false;
                        node.agg.merge(candidates);
                        node.explored_sent = node.explored_sent.saturating_sub(*explored);
                        let jitter: f64 = {
                            use rand::Rng;
                            ctx.rng().gen_range(0.0..self.cfg.agg_slot)
                        };
                        ctx.set_timer(
                            at,
                            SimDuration::from_secs_f64(jitter),
                            key(K_REPORT, *qid, 0),
                        );
                    }
                }
            }
            KptMsg::Result { spec, .. } => {
                let e = self.result_excludes.entry(spec.qid).or_default();
                e.push(to);
                if e.len() <= 8 {
                    self.route_result(ctx, at, msg.clone(), None);
                }
            }
            KptMsg::TreeBuild { .. } => {}
        }
    }
}

impl KnnProtocol for Kpt {
    fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    fn outcomes_mut(&mut self) -> &mut [QueryOutcome] {
        &mut self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_boundary_is_huge() {
        match (KptConfig {
            boundary: KptBoundary::Conservative {
                mean_hop_distance: 15.0,
            },
            ..KptConfig::default()
        })
        .boundary
        {
            KptBoundary::Conservative { mean_hop_distance } => {
                assert_eq!(kpt_conservative_radius(20, mean_hop_distance), 300.0);
            }
            _ => unreachable!(),
        }
    }
}
