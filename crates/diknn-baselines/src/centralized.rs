//! The centralized baseline of the paper's taxonomy (Figure 1): a base
//! station keeps an R-tree index over the positions of *all* sensor nodes,
//! refreshed by periodic position reports, and answers KNN queries from the
//! index.
//!
//! This is the approach the introduction rules out for large mobile
//! networks: "pulling data from a large number of data sources is generally
//! infeasible due to high energy consumption, high communication cost, or
//! long latency". Every node pays a multi-hop report every
//! `report_interval` seconds whether anyone queries or not, and the answers
//! are as stale as the last report.
//!
//! The base station is one extra stationary infrastructure node (appended
//! after the data nodes, like the Peer-tree clusterheads).

use std::collections::BTreeMap;

use diknn_geom::{Point, Rect};
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_rtree::RTree;
use diknn_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};

use diknn_core::{KnnProtocol, QueryOutcome, QueryRequest, QueryStatus};

const K_ISSUE: u8 = 1;
const K_REPORT: u8 = 2;

fn key(kind: u8, qid: u32, aux: u32) -> u64 {
    ((kind as u64) << 56) | ((qid as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

/// Neighbour snapshot filtered by the link-reliability predictor.
fn reliable(ctx: &mut Ctx<CentralMsg>, at: NodeId) -> Vec<diknn_sim::Neighbor> {
    let raw = ctx.neighbors(at);
    diknn_routing::reliable_neighbors(
        ctx.position(at),
        ctx.speed(at),
        ctx.now(),
        &raw,
        ctx.config().radio_range,
    )
}

/// Centralized-index configuration.
#[derive(Debug, Clone)]
pub struct CentralizedConfig {
    /// Position report interval in seconds.
    pub report_interval: f64,
    /// Index entries older than this are dropped.
    pub entry_timeout: f64,
    pub base_msg_bytes: usize,
    pub response_bytes: usize,
}

impl Default for CentralizedConfig {
    fn default() -> Self {
        CentralizedConfig {
            report_interval: 2.0,
            entry_timeout: 6.0,
            base_msg_bytes: 24,
            response_bytes: 10,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CSpec {
    pub qid: u32,
    pub sink: NodeId,
    pub sink_pos: Point,
    pub q: Point,
    pub k: u32,
    pub issued_at: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
pub enum CentralMsg {
    /// Periodic position report node → base station.
    Report {
        node: NodeId,
        position: Point,
        gpsr: GpsrHeader,
    },
    /// Query sink → base station.
    Query { spec: CSpec, gpsr: GpsrHeader },
    /// Answer base station → sink.
    Answer {
        spec: CSpec,
        gpsr: GpsrHeader,
        answer: Vec<NodeId>,
    },
}

impl CentralMsg {
    /// Query id for per-query energy attribution; position `Report`s are
    /// index-maintenance traffic owned by no query.
    fn qid(&self) -> Option<u32> {
        match self {
            CentralMsg::Report { .. } => None,
            CentralMsg::Query { spec, .. } | CentralMsg::Answer { spec, .. } => Some(spec.qid),
        }
    }

    fn wire_bytes(&self, cfg: &CentralizedConfig) -> usize {
        match self {
            CentralMsg::Report { .. } => cfg.base_msg_bytes,
            CentralMsg::Query { .. } => cfg.base_msg_bytes + 8,
            CentralMsg::Answer { answer, .. } => {
                cfg.base_msg_bytes + cfg.response_bytes * answer.len()
            }
        }
    }
}

/// The centralized-index protocol.
pub struct Centralized {
    cfg: CentralizedConfig,
    requests: Vec<QueryRequest>,
    outcomes: Vec<QueryOutcome>,
    data_nodes: usize,
    base_pos: Point,
    /// The base station's index: node → (position, heard time).
    index: BTreeMap<u32, (Point, SimTime)>,
    route_excludes: BTreeMap<(u32, u8), Vec<NodeId>>,
    radio_range: f64,
}

impl Centralized {
    /// The base station sits at the field centre; append one stationary
    /// node there when building the simulator.
    pub fn base_position(field: Rect) -> Point {
        field.center()
    }

    pub fn new(
        cfg: CentralizedConfig,
        field: Rect,
        data_nodes: usize,
        requests: Vec<QueryRequest>,
    ) -> Self {
        Centralized {
            base_pos: Self::base_position(field),
            cfg,
            requests,
            outcomes: Vec::new(),
            data_nodes,
            index: BTreeMap::new(),
            route_excludes: BTreeMap::new(),
            radio_range: 0.0,
        }
    }

    fn base_id(&self) -> NodeId {
        NodeId(self.data_nodes as u32)
    }

    fn send(&self, ctx: &mut Ctx<CentralMsg>, from: NodeId, to: NodeId, msg: CentralMsg) {
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = msg.qid();
        ctx.unicast_flow(from, to, bytes, msg, flow);
    }

    /// Geo-route `msg` toward the header's destination, delivering to
    /// `dest` when adjacent. Returns false if the route died.
    fn geo_forward(
        &mut self,
        ctx: &mut Ctx<CentralMsg>,
        at: NodeId,
        dest: NodeId,
        route_key: (u32, u8),
        msg: CentralMsg,
        from: Option<NodeId>,
    ) -> bool {
        let gpsr = match &msg {
            CentralMsg::Report { gpsr, .. }
            | CentralMsg::Query { gpsr, .. }
            | CentralMsg::Answer { gpsr, .. } => *gpsr,
        };
        let neighbors = reliable(ctx, at);
        if neighbors.iter().any(|n| n.id == dest) {
            self.send(ctx, at, dest, msg);
            return true;
        }
        let exclude = self
            .route_excludes
            .get(&route_key)
            .cloned()
            .unwrap_or_default();
        let prev = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev,
            &exclude,
            self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                let fwd = match msg {
                    CentralMsg::Report { node, position, .. } => CentralMsg::Report {
                        node,
                        position,
                        gpsr: header,
                    },
                    CentralMsg::Query { spec, .. } => CentralMsg::Query { spec, gpsr: header },
                    CentralMsg::Answer { spec, answer, .. } => CentralMsg::Answer {
                        spec,
                        answer,
                        gpsr: header,
                    },
                };
                self.send(ctx, at, next, fwd);
                true
            }
            RouteStep::Arrived | RouteStep::NoRoute => false,
        }
    }

    fn report_tick(&mut self, ctx: &mut Ctx<CentralMsg>, at: NodeId) {
        let pos = ctx.position(at);
        let msg = CentralMsg::Report {
            node: at,
            position: pos,
            gpsr: GpsrHeader::new(self.base_pos),
        };
        let base = self.base_id();
        self.geo_forward(ctx, at, base, (at.0, 0), msg, None);
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(self.cfg.report_interval),
            key(K_REPORT, 0, 0),
        );
    }

    fn issue(&mut self, ctx: &mut Ctx<CentralMsg>, idx: usize) {
        let req = self.requests[idx];
        let qid = self.outcomes.len() as u32;
        let spec = CSpec {
            qid,
            sink: req.sink,
            sink_pos: ctx.position(req.sink),
            q: req.q,
            k: req.k.max(1) as u32,
            issued_at: ctx.now(),
        };
        self.outcomes.push(QueryOutcome {
            qid,
            sink: req.sink,
            q: req.q,
            k: req.k,
            issued_at: ctx.now(),
            completed_at: None,
            answer: Vec::new(),
            boundary_radius: 0.0,
            final_radius: 0.0,
            routing_hops: 0,
            parts_expected: 1,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        });
        let msg = CentralMsg::Query {
            spec,
            gpsr: GpsrHeader::new(self.base_pos),
        };
        let base = self.base_id();
        if req.sink == base {
            self.answer_query(ctx, spec);
        } else {
            self.geo_forward(ctx, req.sink, base, (qid, 1), msg, None);
        }
    }

    /// The base station answers from its index.
    fn answer_query(&mut self, ctx: &mut Ctx<CentralMsg>, spec: CSpec) {
        let now = ctx.now();
        let timeout = self.cfg.entry_timeout;
        self.index
            .retain(|_, (_, t)| (now - *t).as_secs_f64() <= timeout);
        let tree =
            RTree::bulk_load_points(self.index.iter().map(|(&id, &(pos, _))| (pos, NodeId(id))));
        let answer: Vec<NodeId> = tree
            .knn(spec.q, spec.k as usize)
            .into_iter()
            .map(|e| e.item)
            .collect();
        if let Some(o) = self.outcomes.get_mut(spec.qid as usize) {
            o.explored_nodes = self.index.len() as u32;
        }
        let msg = CentralMsg::Answer {
            spec,
            gpsr: GpsrHeader::new(spec.sink_pos),
            answer,
        };
        let base = self.base_id();
        if spec.sink == base {
            self.absorb(ctx, msg);
        } else {
            self.geo_forward(ctx, base, spec.sink, (spec.qid, 2), msg, None);
        }
    }

    fn absorb(&mut self, ctx: &mut Ctx<CentralMsg>, msg: CentralMsg) {
        let CentralMsg::Answer { spec, answer, .. } = msg else {
            unreachable!()
        };
        let o = &mut self.outcomes[spec.qid as usize];
        if o.completed_at.is_none() {
            o.completed_at = Some(ctx.now());
            o.answer = answer;
            o.answer.truncate(o.k);
            o.parts_returned = 1;
        }
    }
}

impl Protocol for Centralized {
    type Msg = CentralMsg;

    fn on_start(&mut self, ctx: &mut Ctx<CentralMsg>) {
        self.radio_range = ctx.config().radio_range;
        assert_eq!(
            ctx.node_count(),
            self.data_nodes + 1,
            "node count must be data_nodes + 1 base station"
        );
        use rand::Rng;
        for i in 0..self.data_nodes {
            let phase: f64 = ctx.rng().gen_range(0.0..self.cfg.report_interval);
            ctx.set_timer(
                NodeId(i as u32),
                SimDuration::from_secs_f64(phase),
                key(K_REPORT, 0, 0),
            );
        }
        for (i, req) in self.requests.clone().into_iter().enumerate() {
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64(req.at),
                key(K_ISSUE, 0, i as u32),
            );
        }
    }

    fn on_timer(&mut self, at: NodeId, timer_key: u64, ctx: &mut Ctx<CentralMsg>) {
        let kind = (timer_key >> 56) as u8;
        let aux = (timer_key & 0xFF_FFFF) as u32;
        match kind {
            K_ISSUE => self.issue(ctx, aux as usize),
            K_REPORT => self.report_tick(ctx, at),
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_message(
        &mut self,
        at: NodeId,
        from: NodeId,
        msg: &CentralMsg,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let base = self.base_id();
        match msg {
            CentralMsg::Report { node, position, .. } => {
                if at == base {
                    self.index.insert(node.0, (*position, ctx.now()));
                } else {
                    let node = *node;
                    self.geo_forward(ctx, at, base, (node.0, 0), msg.clone(), Some(from));
                }
            }
            CentralMsg::Query { spec, .. } => {
                if at == base {
                    self.answer_query(ctx, *spec);
                } else {
                    let qid = spec.qid;
                    self.geo_forward(ctx, at, base, (qid, 1), msg.clone(), Some(from));
                }
            }
            CentralMsg::Answer { spec, .. } => {
                if at == spec.sink {
                    self.absorb(ctx, msg.clone());
                } else {
                    let qid = spec.qid;
                    let sink = spec.sink;
                    self.geo_forward(ctx, at, sink, (qid, 2), msg.clone(), Some(from));
                }
            }
        }
    }

    fn on_send_failed(
        &mut self,
        at: NodeId,
        to: NodeId,
        msg: &CentralMsg,
        ctx: &mut Ctx<CentralMsg>,
    ) {
        let (route_key, dest) = match msg {
            CentralMsg::Report { node, .. } => ((node.0, 0u8), self.base_id()),
            CentralMsg::Query { spec, .. } => ((spec.qid, 1u8), self.base_id()),
            CentralMsg::Answer { spec, .. } => ((spec.qid, 2u8), spec.sink),
        };
        let e = self.route_excludes.entry(route_key).or_default();
        e.push(to);
        if e.len() <= 8 {
            self.geo_forward(ctx, at, dest, route_key, msg.clone(), None);
        } else {
            self.route_excludes.remove(&route_key);
        }
    }
}

impl KnnProtocol for Centralized {
    fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    fn outcomes_mut(&mut self) -> &mut [QueryOutcome] {
        &mut self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_sits_at_field_center() {
        let f = Rect::new(0.0, 0.0, 100.0, 100.0);
        assert_eq!(Centralized::base_position(f), Point::new(50.0, 50.0));
    }

    #[test]
    fn base_id_follows_data_nodes() {
        let c = Centralized::new(
            CentralizedConfig::default(),
            Rect::new(0.0, 0.0, 100.0, 100.0),
            200,
            vec![],
        );
        assert_eq!(c.base_id(), NodeId(200));
    }
}
