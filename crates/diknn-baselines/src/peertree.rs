//! Peer-tree — the decentralized R-tree baseline (Demirbas &
//! Ferhatosmanoglu [7]), set up exactly as the paper's evaluation (§5.1):
//!
//! * the field is partitioned into a `g×g` grid (5×5 by default) of MBRs;
//! * a **stationary clusterhead** is pre-located in each cell and its
//!   address is known to every node; the centre cell's head doubles as the
//!   hierarchy root;
//! * every sensor node periodically notifies its closest clusterhead of its
//!   existence/position, plus an immediate notification whenever it crosses
//!   into a new cell (this is the index maintenance that grows with
//!   mobility);
//! * a clusterhead that has not heard from a member for a while deletes it;
//! * a KNN query routes sink → own head → root → the head whose MBR covers
//!   `q`; that head picks candidates from its member table (using an R-tree
//!   over the cell MBRs to pick which neighbouring heads to consult when
//!   its own cell cannot satisfy `k`), collects responses from the
//!   candidate nodes by unicast, and routes the aggregate back to the sink.
//!
//! Mobility hurts in the two ways the paper describes: stale member
//! positions make candidate collection fail (queries to departed nodes are
//! dropped), and cell crossings inflate maintenance traffic.
//!
//! Clusterheads are *extra infrastructure nodes*: the caller appends
//! `grid²` stationary nodes after the `data_nodes` sensor nodes (see
//! [`PeerTree::clusterhead_positions`]). They never answer queries
//! themselves.

use std::collections::{BTreeMap, BTreeSet};

use diknn_geom::{Point, Rect};
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_rtree::RTree;
use diknn_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};

use diknn_core::{Candidate, CandidateSet, KnnProtocol, QueryOutcome, QueryRequest, QueryStatus};

const K_ISSUE: u8 = 1;
const K_NOTIFY: u8 = 2;
const K_SINK_TIMEOUT: u8 = 3;
const K_COLLECT_DONE: u8 = 4;
const K_COLLECT_REPLY: u8 = 5;
const K_ASK: u8 = 6;
const K_ASK_STEP: u8 = 7;
const K_SUBREPLY: u8 = 8;
const K_CROSSING: u8 = 9;

/// Neighbour snapshot filtered by the link-reliability predictor
/// ([`diknn_routing::reliable_neighbors`]): avoids unicasting to entries
/// that have likely drifted out of range.
fn reliable(ctx: &mut Ctx<PtMsg>, at: NodeId) -> Vec<diknn_sim::Neighbor> {
    let raw = ctx.neighbors(at);
    diknn_routing::reliable_neighbors(
        ctx.position(at),
        ctx.speed(at),
        ctx.now(),
        &raw,
        ctx.config().radio_range,
    )
}

fn key(kind: u8, qid: u32, aux: u32) -> u64 {
    ((kind as u64) << 56) | ((qid as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

/// Peer-tree configuration.
#[derive(Debug, Clone)]
pub struct PeerTreeConfig {
    /// Grid dimension `g` (the paper partitions into 5×5).
    pub grid: usize,
    /// Periodic membership notification interval in seconds.
    pub notify_interval: f64,
    /// How often a node checks whether it crossed into a new cell (a
    /// crossing triggers an immediate notification to the new head).
    pub crossing_check_interval: f64,
    /// Member entries older than this are deleted by their clusterhead.
    pub member_timeout: f64,
    /// Window for gathering sub-replies from neighbouring heads before the
    /// k nearest candidates are determined and informed.
    pub subquery_window: f64,
    /// Fixed slack a query head adds on top of the k-scaled reply window
    /// before returning the aggregate (routing time for the collect
    /// round-trips).
    pub collect_slack: f64,
    /// Per-candidate reply jitter slot in seconds (the reply window is
    /// `k × per_collect_slot`).
    pub per_collect_slot: f64,
    pub response_bytes: usize,
    pub base_msg_bytes: usize,
    /// Sink gives up after this many seconds.
    pub sink_timeout: f64,
}

impl Default for PeerTreeConfig {
    fn default() -> Self {
        PeerTreeConfig {
            grid: 5,
            notify_interval: 2.0,
            crossing_check_interval: 0.5,
            member_timeout: 5.0,
            subquery_window: 0.8,
            collect_slack: 0.6,
            per_collect_slot: 0.018,
            response_bytes: 10,
            base_msg_bytes: 24,
            sink_timeout: 20.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtSpec {
    pub qid: u32,
    pub sink: NodeId,
    pub sink_pos: Point,
    pub q: Point,
    pub k: u32,
    pub issued_at: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PtMsg {
    /// Membership notification node → clusterhead.
    Notify { node: NodeId, position: Point },
    /// Query riding the hierarchy (gpsr-routed between heads).
    Query {
        spec: PtSpec,
        gpsr: GpsrHeader,
        /// Hierarchy stage: 0 = to own head, 1 = to root, 2 = to target head.
        stage: u8,
    },
    /// Query head → neighbouring head: send your members near `q`.
    SubQuery {
        qid: u32,
        q: Point,
        k: u32,
        reply_to: NodeId,
        reply_pos: Point,
        gpsr: GpsrHeader,
    },
    /// Neighbouring head → query head: members near `q`.
    SubReply {
        qid: u32,
        members: Vec<(NodeId, Point)>,
        gpsr: GpsrHeader,
        to: NodeId,
    },
    /// Query head → candidate node: report your data (geo-routed to the
    /// node's last known position).
    Collect {
        qid: u32,
        head: NodeId,
        head_pos: Point,
        target: NodeId,
        gpsr: GpsrHeader,
        /// Reply-jitter window in seconds: the candidate delays its reply
        /// uniformly within it so bursts of replies do not collide.
        window: f64,
    },
    /// Candidate node → query head (geo-routed back).
    CollectReply {
        qid: u32,
        node: NodeId,
        position: Point,
        to: NodeId,
        gpsr: GpsrHeader,
    },
    /// Aggregate result head → sink.
    Result {
        spec: PtSpec,
        gpsr: GpsrHeader,
        candidates: CandidateSet,
        explored: u32,
    },
}

impl PtMsg {
    /// Query id for per-query energy attribution; `Notify` is maintenance
    /// traffic owned by no query.
    fn qid(&self) -> Option<u32> {
        match self {
            PtMsg::Notify { .. } => None,
            PtMsg::Query { spec, .. } | PtMsg::Result { spec, .. } => Some(spec.qid),
            PtMsg::SubQuery { qid, .. }
            | PtMsg::SubReply { qid, .. }
            | PtMsg::Collect { qid, .. }
            | PtMsg::CollectReply { qid, .. } => Some(*qid),
        }
    }

    fn wire_bytes(&self, cfg: &PeerTreeConfig) -> usize {
        match self {
            PtMsg::Notify { .. } => cfg.base_msg_bytes,
            PtMsg::Query { .. } => cfg.base_msg_bytes + 8,
            PtMsg::SubQuery { .. } => cfg.base_msg_bytes + 8,
            PtMsg::SubReply { members, .. } => cfg.base_msg_bytes + 10 * members.len(),
            PtMsg::Collect { .. } => cfg.base_msg_bytes,
            PtMsg::CollectReply { .. } => cfg.base_msg_bytes + cfg.response_bytes,
            PtMsg::Result { candidates, .. } => {
                cfg.base_msg_bytes + candidates.wire_bytes(cfg.response_bytes)
            }
        }
    }
}

/// A clusterhead's view of one member.
#[derive(Debug, Clone, Copy)]
struct Member {
    position: Point,
    heard_at: SimTime,
}

/// An in-progress candidate collection at a query head.
struct Collection {
    spec: PtSpec,
    head: NodeId,
    candidates: CandidateSet,
    pending_subqueries: u32,
    collected: u32,
    /// Believed member positions gathered from the own cell and subreplies;
    /// the k best are informed once the gathering window closes.
    pool: Vec<(NodeId, Point)>,
    /// Candidates awaiting their staggered Collect message.
    to_ask: Vec<(NodeId, Point)>,
    /// Candidates actually informed.
    asked: u32,
}

/// The Peer-tree protocol instance.
pub struct PeerTree {
    cfg: PeerTreeConfig,
    requests: Vec<QueryRequest>,
    outcomes: Vec<QueryOutcome>,
    /// Number of data (sensor) nodes; ids ≥ this are clusterheads.
    data_nodes: usize,
    /// Static clusterhead positions (index = cell index, row-major).
    head_positions: Vec<Point>,
    /// Cell rectangles, row-major; an R-tree over them picks target cells.
    cell_index: RTree<usize>,
    /// Per-head member tables: head cell idx → members.
    members: Vec<BTreeMap<u32, Member>>,
    /// Each data node's last known cell (for crossing-triggered notifies).
    last_cell: Vec<Option<usize>>,
    collections: BTreeMap<u32, Collection>,
    pending_replies: BTreeMap<(u32, u32), (NodeId, Point)>,
    /// Subreplies scheduled at neighbouring heads, staggered to avoid
    /// colliding at the query head.
    pending_subreplies: BTreeMap<(u32, u32), PtMsg>,
    sink_done: BTreeSet<u32>,
    route_excludes: BTreeMap<(u32, u8), Vec<NodeId>>,
    radio_range: f64,
    field: Rect,
    /// Diagnostics: per-query (pool size, asked, subreplies pending at ask
    /// time).
    pub ask_stats: Vec<(u32, usize, u32, u32)>,
}

impl PeerTree {
    /// Clusterhead positions for a `grid×grid` partition of `field`
    /// (row-major cell centres). Append stationary nodes at these positions
    /// *after* the data nodes when building the simulator.
    pub fn clusterhead_positions(field: Rect, grid: usize) -> Vec<Point> {
        diknn_mobility_grid(field, grid)
    }

    pub fn new(
        cfg: PeerTreeConfig,
        field: Rect,
        data_nodes: usize,
        requests: Vec<QueryRequest>,
    ) -> Self {
        let g = cfg.grid;
        let head_positions = Self::clusterhead_positions(field, g);
        let dx = field.width() / g as f64;
        let dy = field.height() / g as f64;
        let mut cells = Vec::with_capacity(g * g);
        for j in 0..g {
            for i in 0..g {
                let rect = Rect::new(
                    field.min_x + i as f64 * dx,
                    field.min_y + j as f64 * dy,
                    field.min_x + (i + 1) as f64 * dx,
                    field.min_y + (j + 1) as f64 * dy,
                );
                cells.push((rect, j * g + i));
            }
        }
        PeerTree {
            members: vec![BTreeMap::new(); g * g],
            cell_index: RTree::bulk_load(cells),
            last_cell: vec![None; data_nodes],
            cfg,
            requests,
            outcomes: Vec::new(),
            data_nodes,
            head_positions,
            collections: BTreeMap::new(),
            pending_replies: BTreeMap::new(),
            pending_subreplies: BTreeMap::new(),
            sink_done: BTreeSet::new(),
            ask_stats: Vec::new(),
            route_excludes: BTreeMap::new(),
            radio_range: 0.0,
            field,
        }
    }

    /// Reply-jitter window for a query of `k` candidates.
    fn reply_window(&self, k: u32) -> f64 {
        (self.cfg.per_collect_slot * k as f64).clamp(0.05, 2.0)
    }

    fn cell_of(&self, p: Point) -> usize {
        let g = self.cfg.grid;
        let fx = ((p.x - self.field.min_x) / self.field.width().max(1e-9) * g as f64) as usize;
        let fy = ((p.y - self.field.min_y) / self.field.height().max(1e-9) * g as f64) as usize;
        fy.min(g - 1) * g + fx.min(g - 1)
    }

    fn head_id(&self, cell: usize) -> NodeId {
        NodeId((self.data_nodes + cell) as u32)
    }

    fn is_head(&self, n: NodeId) -> bool {
        n.index() >= self.data_nodes
    }

    fn root_cell(&self) -> usize {
        let g = self.cfg.grid;
        (g / 2) * g + g / 2
    }

    fn send(&self, ctx: &mut Ctx<PtMsg>, from: NodeId, to: NodeId, msg: PtMsg) {
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = msg.qid();
        ctx.unicast_flow(from, to, bytes, msg, flow);
    }

    /// Geo-route `msg` toward `dest_pos`, delivering when `dest` is
    /// adjacent or we run out of route. `route_key` identifies the flow for
    /// failure exclusions.
    #[allow(clippy::too_many_arguments)]
    fn geo_forward(
        &mut self,
        ctx: &mut Ctx<PtMsg>,
        at: NodeId,
        dest: NodeId,
        gpsr: &GpsrHeader,
        route_key: (u32, u8),
        from: Option<NodeId>,
        rebuild: impl FnOnce(GpsrHeader) -> PtMsg,
    ) -> bool {
        let neighbors = reliable(ctx, at);
        if neighbors.iter().any(|n| n.id == dest) {
            let msg = rebuild(*gpsr);
            self.send(ctx, at, dest, msg);
            return true;
        }
        let exclude = self
            .route_excludes
            .get(&route_key)
            .cloned()
            .unwrap_or_default();
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            gpsr,
            &neighbors,
            prev_pos,
            &exclude,
            self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                let msg = rebuild(header);
                self.send(ctx, at, next, msg);
                true
            }
            RouteStep::Arrived | RouteStep::NoRoute => false,
        }
    }

    // ---------- maintenance -------------------------------------------

    fn notify_tick(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId) {
        let pos = ctx.position(at);
        let cell = self.cell_of(pos);
        self.last_cell[at.index()] = Some(cell);
        let head = self.head_id(cell);
        if head != at {
            self.send(
                ctx,
                at,
                head,
                PtMsg::Notify {
                    node: at,
                    position: pos,
                },
            );
        }
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(self.cfg.notify_interval),
            key(K_NOTIFY, 0, 0),
        );
        // Crossing detection piggybacks on a fast sub-timer: rather than a
        // separate mechanism, notifications also fire early when the node's
        // beacon-rate movement crosses a cell border — approximated by
        // checking at notify time (cheap) plus the immediate notify below
        // when a query-time check notices a crossing.
    }

    /// Immediate notification on cell crossing (called opportunistically
    /// when the node handles any message).
    fn maybe_crossing_notify(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId) {
        if self.is_head(at) || at.index() >= self.last_cell.len() {
            return;
        }
        let pos = ctx.position(at);
        let cell = self.cell_of(pos);
        if self.last_cell[at.index()] != Some(cell) {
            self.last_cell[at.index()] = Some(cell);
            let head = self.head_id(cell);
            self.send(
                ctx,
                at,
                head,
                PtMsg::Notify {
                    node: at,
                    position: pos,
                },
            );
        }
    }

    fn head_record_member(&mut self, at: NodeId, node: NodeId, position: Point, now: SimTime) {
        let cell = at.index() - self.data_nodes;
        let table = &mut self.members[cell];
        table.insert(
            node.0,
            Member {
                position,
                heard_at: now,
            },
        );
        // Expire stale members ("deletes the node and updates the MBR").
        let timeout = self.cfg.member_timeout;
        table.retain(|_, m| (now - m.heard_at).as_secs_f64() <= timeout);
    }

    // ---------- query path ---------------------------------------------

    fn issue(&mut self, ctx: &mut Ctx<PtMsg>, idx: usize) {
        let req = self.requests[idx];
        let qid = self.outcomes.len() as u32;
        let spec = PtSpec {
            qid,
            sink: req.sink,
            sink_pos: ctx.position(req.sink),
            q: req.q,
            k: req.k.max(1) as u32,
            issued_at: ctx.now(),
        };
        self.outcomes.push(QueryOutcome {
            qid,
            sink: req.sink,
            q: req.q,
            k: req.k,
            issued_at: ctx.now(),
            completed_at: None,
            answer: Vec::new(),
            boundary_radius: 0.0,
            final_radius: 0.0,
            routing_hops: 0,
            parts_expected: 1,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        });
        ctx.set_timer(
            req.sink,
            SimDuration::from_secs_f64(self.cfg.sink_timeout),
            key(K_SINK_TIMEOUT, qid, 0),
        );
        // Stage 0: to my clusterhead.
        let my_head = self.head_id(self.cell_of(ctx.position(req.sink)));
        let gpsr = GpsrHeader::new(self.head_positions[my_head.index() - self.data_nodes]);
        let msg = PtMsg::Query {
            spec,
            gpsr,
            stage: 0,
        };
        if req.sink == my_head {
            self.query_at_head(ctx, my_head, spec, 0);
        } else {
            self.forward_query(ctx, req.sink, msg, None);
        }
    }

    fn forward_query(
        &mut self,
        ctx: &mut Ctx<PtMsg>,
        at: NodeId,
        msg: PtMsg,
        from: Option<NodeId>,
    ) {
        let PtMsg::Query { spec, gpsr, stage } = msg else {
            unreachable!()
        };
        let dest_cell = match stage {
            0 => self.cell_of(gpsr.dest), // dest is the issuing head's position
            1 => self.root_cell(),
            _ => self.cell_of(spec.q),
        };
        let dest = self.head_id(dest_cell);
        let delivered = self.geo_forward(
            ctx,
            at,
            dest,
            &gpsr,
            (spec.qid, 10 + stage),
            from,
            move |h| PtMsg::Query {
                spec,
                gpsr: h,
                stage,
            },
        );
        if !delivered && self.is_head(at) && stage < 2 {
            // We are a head already; short-circuit the hierarchy locally.
            // Stage 2 has no further level to escalate to: `query_at_head`
            // would route right back here (mutual recursion until stack
            // overflow when the neighbour table is starved), so a routeless
            // final-stage query is dropped and ages out at the sink.
            self.query_at_head(ctx, at, spec, stage);
        }
    }

    /// A query reached a clusterhead at hierarchy `stage`.
    fn query_at_head(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId, spec: PtSpec, stage: u8) {
        let q_cell = self.cell_of(spec.q);
        let target_head = self.head_id(q_cell);
        if at == target_head {
            return self.execute_knn_at_head(ctx, at, spec);
        }
        let (next_stage, dest) = match stage {
            // Own head forwards to the root (unless it already covers q).
            0 => (1u8, self.head_id(self.root_cell())),
            // Root forwards down to the covering head.
            _ => (2u8, target_head),
        };
        if at == dest {
            // e.g. own head *is* the root.
            return self.query_at_head(ctx, at, spec, next_stage);
        }
        let gpsr = GpsrHeader::new(self.head_positions[dest.index() - self.data_nodes]);
        let msg = PtMsg::Query {
            spec,
            gpsr,
            stage: next_stage,
        };
        self.forward_query(ctx, at, msg, None);
    }

    /// The head covering `q` runs the KNN: local members plus subqueries to
    /// neighbouring heads whose MBR may hold closer members.
    fn execute_knn_at_head(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId, spec: PtSpec) {
        let own_cell = at.index() - self.data_nodes;
        let k = spec.k as usize;
        let mut coll = Collection {
            spec,
            head: at,
            candidates: CandidateSet::new(k),
            pending_subqueries: 0,
            collected: 0,
            pool: Vec::new(),
            to_ask: Vec::new(),
            asked: 0,
        };
        // Local candidate snapshot seeds the pool.
        let local: Vec<(NodeId, Point)> = self.members[own_cell]
            .iter()
            .map(|(&id, m)| (NodeId(id), m.position))
            .collect();
        coll.pool.extend(local.iter().copied());
        // Search radius: distance to the k-th local member, or the cell
        // diagonal when the cell alone cannot satisfy k.
        let mut dists: Vec<f64> = local.iter().map(|(_, p)| p.dist(spec.q)).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let g = self.cfg.grid as f64;
        let cell_diag =
            ((self.field.width() / g).powi(2) + (self.field.height() / g).powi(2)).sqrt();
        let radius = if dists.len() >= k {
            dists[k - 1].max(1.0)
        } else {
            cell_diag * 1.5
        };
        // Neighbouring cells whose MBR intersects the search circle.
        let nearby = self.cell_index.within_distance(spec.q, radius);
        let subcells: Vec<usize> = nearby
            .into_iter()
            .map(|(_, c)| c)
            .filter(|&c| c != own_cell)
            .collect();
        for cell in subcells {
            let head = self.head_id(cell);
            let gpsr = GpsrHeader::new(self.head_positions[cell]);
            coll.pending_subqueries += 1;
            let msg = PtMsg::SubQuery {
                qid: spec.qid,
                q: spec.q,
                k: spec.k,
                reply_to: at,
                reply_pos: ctx.position(at),
                gpsr,
            };
            let dest = head;
            self.forward_subquery(ctx, at, dest, msg, None);
        }
        let no_subqueries = coll.pending_subqueries == 0;
        self.collections.insert(spec.qid, coll);
        // Once the subreplies are in (or immediately if none were needed),
        // determine the k nearest believed candidates and inform them.
        let gather = if no_subqueries {
            0.0
        } else {
            self.cfg.subquery_window
        };
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(gather),
            key(K_ASK, spec.qid, 0),
        );
    }

    /// The gathering window closed: inform exactly the k best believed
    /// candidates and start the reply window.
    fn ask_candidates(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId, qid: u32) {
        let Some(coll) = self.collections.get_mut(&qid) else {
            return;
        };
        let spec = coll.spec;
        // Dedup the pool by node id (a node may appear in two heads'
        // tables around a border), keeping the freshest entry order.
        let mut pool = std::mem::take(&mut coll.pool);
        let pending = coll.pending_subqueries;
        let mut seen = std::collections::BTreeSet::new();
        pool.retain(|(id, _)| seen.insert(*id));
        self.ask_stats
            .push((qid, pool.len(), spec.k.min(pool.len() as u32), pending));
        // Keep only the k best by believed distance and inform them one per
        // collect slot (bursting k unicasts at once collides their replies).
        pool.sort_by(|a, b| {
            a.1.dist(spec.q)
                .total_cmp(&b.1.dist(spec.q))
                .then(a.0.cmp(&b.0))
        });
        pool.truncate(spec.k as usize);
        pool.retain(|(id, _)| *id != at);
        if let Some(coll) = self.collections.get_mut(&qid) {
            coll.to_ask = pool;
        }
        self.ask_step(ctx, at, qid);
        let wait = self.cfg.collect_slack + self.reply_window(spec.k);
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(wait),
            key(K_COLLECT_DONE, spec.qid, 0),
        );
    }

    /// Send the next queued Collect and reschedule.
    fn ask_step(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId, qid: u32) {
        let Some(coll) = self.collections.get_mut(&qid) else {
            return;
        };
        let Some((node, believed_pos)) = coll.to_ask.pop() else {
            return;
        };
        coll.asked += 1;
        let head_pos = ctx.position(at);
        let msg = PtMsg::Collect {
            qid,
            head: at,
            head_pos,
            target: node,
            gpsr: GpsrHeader::new(believed_pos),
            window: 0.0,
        };
        self.forward_collect(ctx, at, msg, None);
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(self.cfg.per_collect_slot),
            key(K_ASK_STEP, qid, 0),
        );
    }

    fn forward_subquery(
        &mut self,
        ctx: &mut Ctx<PtMsg>,
        at: NodeId,
        dest: NodeId,
        msg: PtMsg,
        from: Option<NodeId>,
    ) {
        let (qid, gpsr) = match &msg {
            PtMsg::SubQuery { qid, gpsr, .. } => (*qid, *gpsr),
            _ => unreachable!(),
        };
        let m2 = msg.clone();
        self.geo_forward(ctx, at, dest, &gpsr, (qid, 20), from, move |h| match m2 {
            PtMsg::SubQuery {
                qid,
                q,
                k,
                reply_to,
                reply_pos,
                ..
            } => PtMsg::SubQuery {
                qid,
                q,
                k,
                reply_to,
                reply_pos,
                gpsr: h,
            },
            _ => unreachable!(),
        });
    }

    /// Collection window over: return the aggregate to the sink.
    fn finish_collection(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId, qid: u32) {
        let Some(coll) = self.collections.remove(&qid) else {
            return;
        };
        let spec = coll.spec;
        let msg = PtMsg::Result {
            spec,
            gpsr: GpsrHeader::new(spec.sink_pos),
            candidates: coll.candidates,
            explored: coll.collected,
        };
        self.route_result(ctx, at, msg, None);
    }

    fn route_result(&mut self, ctx: &mut Ctx<PtMsg>, at: NodeId, msg: PtMsg, from: Option<NodeId>) {
        let PtMsg::Result { spec, gpsr, .. } = &msg else {
            unreachable!()
        };
        let spec = *spec;
        if at == spec.sink {
            return self.sink_receive(ctx, msg);
        }
        let gpsr = *gpsr;
        let m2 = msg.clone();
        let delivered = self.geo_forward(
            ctx,
            at,
            spec.sink,
            &gpsr,
            (spec.qid, 30),
            from,
            move |h| match m2 {
                PtMsg::Result {
                    spec,
                    candidates,
                    explored,
                    ..
                } => PtMsg::Result {
                    spec,
                    gpsr: h,
                    candidates,
                    explored,
                },
                _ => unreachable!(),
            },
        );
        let _ = delivered;
    }

    fn sink_receive(&mut self, ctx: &mut Ctx<PtMsg>, msg: PtMsg) {
        let PtMsg::Result {
            spec,
            candidates,
            explored,
            ..
        } = msg
        else {
            unreachable!()
        };
        if !self.sink_done.insert(spec.qid) {
            return;
        }
        let o = &mut self.outcomes[spec.qid as usize];
        o.completed_at = Some(ctx.now());
        o.answer = candidates.ids();
        o.answer.truncate(o.k);
        o.parts_returned = 1;
        o.explored_nodes = explored;
    }
}

/// Row-major grid of cell centres (kept free of the mobility crate to avoid
/// a dependency cycle; mirrors `diknn_mobility::placement::grid`).
fn diknn_mobility_grid(field: Rect, g: usize) -> Vec<Point> {
    let dx = field.width() / g as f64;
    let dy = field.height() / g as f64;
    let mut pts = Vec::with_capacity(g * g);
    for j in 0..g {
        for i in 0..g {
            pts.push(Point::new(
                field.min_x + (i as f64 + 0.5) * dx,
                field.min_y + (j as f64 + 0.5) * dy,
            ));
        }
    }
    pts
}

impl Protocol for PeerTree {
    type Msg = PtMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PtMsg>) {
        self.radio_range = ctx.config().radio_range;
        assert_eq!(
            ctx.node_count(),
            self.data_nodes + self.cfg.grid * self.cfg.grid,
            "node count must be data_nodes + grid² clusterheads"
        );
        // Stagger the periodic notifications, and start the fast
        // cell-crossing detector that makes maintenance traffic grow with
        // mobility ("more sensor nodes move across MBRs, which results in
        // excessive information updates", §5.4).
        use rand::Rng;
        for i in 0..self.data_nodes {
            let phase: f64 = ctx.rng().gen_range(0.0..self.cfg.notify_interval);
            ctx.set_timer(
                NodeId(i as u32),
                SimDuration::from_secs_f64(phase),
                key(K_NOTIFY, 0, 0),
            );
            let cphase: f64 = ctx.rng().gen_range(0.0..self.cfg.crossing_check_interval);
            ctx.set_timer(
                NodeId(i as u32),
                SimDuration::from_secs_f64(cphase),
                key(K_CROSSING, 0, 0),
            );
        }
        for (i, req) in self.requests.clone().into_iter().enumerate() {
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64(req.at),
                key(K_ISSUE, 0, i as u32),
            );
        }
    }

    fn on_timer(&mut self, at: NodeId, timer_key: u64, ctx: &mut Ctx<PtMsg>) {
        let kind = (timer_key >> 56) as u8;
        let qid = ((timer_key >> 24) & 0xFFFF_FFFF) as u32;
        let aux = (timer_key & 0xFF_FFFF) as u32;
        match kind {
            K_ISSUE => self.issue(ctx, aux as usize),
            K_NOTIFY => self.notify_tick(ctx, at),
            K_CROSSING => {
                self.maybe_crossing_notify(ctx, at);
                let interval = self.cfg.crossing_check_interval;
                ctx.set_timer(
                    at,
                    SimDuration::from_secs_f64(interval),
                    key(K_CROSSING, 0, 0),
                );
            }
            K_COLLECT_DONE => self.finish_collection(ctx, at, qid),
            K_ASK => self.ask_candidates(ctx, at, qid),
            K_ASK_STEP => self.ask_step(ctx, at, qid),
            K_SUBREPLY => {
                if let Some(reply) = self.pending_subreplies.remove(&(qid, at.0)) {
                    self.forward_subreply(ctx, at, reply, None);
                }
            }
            K_COLLECT_REPLY => {
                if let Some((head, head_pos)) = self.pending_replies.remove(&(qid, at.0)) {
                    let reply = PtMsg::CollectReply {
                        qid,
                        node: at,
                        position: ctx.position(at),
                        to: head,
                        gpsr: GpsrHeader::new(head_pos),
                    };
                    self.forward_collect_reply(ctx, at, reply, None);
                }
            }
            K_SINK_TIMEOUT => { /* outcome stays incomplete */ }
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &PtMsg, ctx: &mut Ctx<PtMsg>) {
        self.maybe_crossing_notify(ctx, at);
        match msg {
            PtMsg::Notify { node, position } => {
                if self.is_head(at) {
                    self.head_record_member(at, *node, *position, ctx.now());
                }
            }
            PtMsg::Query { spec, stage, .. } => {
                let q_dest = match stage {
                    0 => self.head_id(self.cell_of(ctx.position(at))),
                    1 => self.head_id(self.root_cell()),
                    _ => self.head_id(self.cell_of(spec.q)),
                };
                if self.is_head(at) && at == q_dest {
                    self.query_at_head(ctx, at, *spec, *stage);
                } else if self.is_head(at) {
                    // A head on the path: climb the hierarchy from here.
                    self.query_at_head(ctx, at, *spec, *stage);
                } else {
                    self.forward_query(ctx, at, msg.clone(), Some(from));
                }
            }
            PtMsg::SubQuery {
                qid,
                q,
                k,
                reply_to,
                reply_pos,
                gpsr,
            } => {
                if self.is_head(at) {
                    // Answer with my members nearest q, after a random
                    // share of the gathering window so the many subreplies
                    // do not collide at the query head.
                    let cell = at.index() - self.data_nodes;
                    let mut members: Vec<(NodeId, Point)> = self.members[cell]
                        .iter()
                        .map(|(&id, m)| (NodeId(id), m.position))
                        .collect();
                    members
                        .sort_by(|a, b| a.1.dist(*q).total_cmp(&b.1.dist(*q)).then(a.0.cmp(&b.0)));
                    members.truncate(*k as usize);
                    let reply = PtMsg::SubReply {
                        qid: *qid,
                        members,
                        gpsr: GpsrHeader::new(*reply_pos),
                        to: *reply_to,
                    };
                    self.pending_subreplies.insert((*qid, at.0), reply);
                    let jitter: f64 = {
                        use rand::Rng;
                        ctx.rng().gen_range(0.0..self.cfg.subquery_window * 0.6)
                    };
                    ctx.set_timer(
                        at,
                        SimDuration::from_secs_f64(jitter),
                        key(K_SUBREPLY, *qid, 0),
                    );
                } else {
                    // Relay toward the target head.
                    let dest_cell = self.cell_of(gpsr.dest);
                    let dest = self.head_id(dest_cell);
                    self.forward_subquery(ctx, at, dest, msg.clone(), Some(from));
                }
            }
            PtMsg::SubReply {
                qid, members, to, ..
            } => {
                if at == *to {
                    // Query head: fold the believed positions into the pool.
                    if let Some(coll) = self.collections.get_mut(qid) {
                        coll.pool.extend(members.iter().copied());
                        coll.pending_subqueries = coll.pending_subqueries.saturating_sub(1);
                    }
                } else {
                    self.forward_subreply(ctx, at, msg.clone(), Some(from));
                }
            }
            PtMsg::Collect {
                qid,
                head,
                head_pos,
                target,
                window,
                ..
            } => {
                if at == *target {
                    if *window <= 0.0 {
                        // Staggered collects: reply immediately.
                        let reply = PtMsg::CollectReply {
                            qid: *qid,
                            node: at,
                            position: ctx.position(at),
                            to: *head,
                            gpsr: GpsrHeader::new(*head_pos),
                        };
                        self.forward_collect_reply(ctx, at, reply, None);
                    } else {
                        // Burst collects: answer after a random share of
                        // the reply window.
                        self.pending_replies
                            .insert((*qid, at.0), (*head, *head_pos));
                        let jitter: f64 = {
                            use rand::Rng;
                            ctx.rng().gen_range(0.0..*window)
                        };
                        ctx.set_timer(
                            at,
                            SimDuration::from_secs_f64(jitter),
                            key(K_COLLECT_REPLY, *qid, 0),
                        );
                    }
                } else {
                    self.forward_collect(ctx, at, msg.clone(), Some(from));
                }
            }
            PtMsg::CollectReply {
                qid,
                node,
                position,
                to,
                ..
            } => {
                if at == *to {
                    if let Some(coll) = self.collections.get_mut(qid) {
                        if coll.head == at {
                            coll.candidates.insert(Candidate {
                                id: *node,
                                position: *position,
                                dist: position.dist(coll.spec.q),
                            });
                            coll.collected += 1;
                        }
                    }
                } else {
                    self.forward_collect_reply(ctx, at, msg.clone(), Some(from));
                }
            }
            PtMsg::Result { .. } => self.route_result(ctx, at, msg.clone(), Some(from)),
        }
    }

    fn on_send_failed(&mut self, at: NodeId, to: NodeId, msg: &PtMsg, ctx: &mut Ctx<PtMsg>) {
        match msg {
            PtMsg::Query { spec, stage, .. } => {
                let e = self
                    .route_excludes
                    .entry((spec.qid, 10 + stage))
                    .or_default();
                e.push(to);
                if e.len() <= 8 {
                    self.forward_query(ctx, at, msg.clone(), None);
                }
            }
            PtMsg::Result { spec, .. } => {
                let e = self.route_excludes.entry((spec.qid, 30)).or_default();
                e.push(to);
                if e.len() <= 8 {
                    self.route_result(ctx, at, msg.clone(), None);
                }
            }
            // Lost notifications/collects are the staleness cost.
            _ => {}
        }
    }
}

impl PeerTree {
    fn forward_collect(
        &mut self,
        ctx: &mut Ctx<PtMsg>,
        at: NodeId,
        msg: PtMsg,
        from: Option<NodeId>,
    ) {
        let PtMsg::Collect {
            qid, target, gpsr, ..
        } = &msg
        else {
            unreachable!()
        };
        let (qid, target, gpsr) = (*qid, *target, *gpsr);
        let m2 = msg.clone();
        let delivered =
            self.geo_forward(ctx, at, target, &gpsr, (qid, 40), from, move |h| match m2 {
                PtMsg::Collect {
                    qid,
                    head,
                    head_pos,
                    target,
                    window,
                    ..
                } => PtMsg::Collect {
                    qid,
                    head,
                    head_pos,
                    target,
                    gpsr: h,
                    window,
                },
                _ => unreachable!(),
            });
        if !delivered {
            // Arrived at the believed position but the member is not in the
            // local table (it moved since its last notification). Last
            // resort: transmit to it directly — MAC retries reach it if it
            // is still within radio range; otherwise the candidate is lost,
            // which is exactly the staleness cost of the index.
            self.send(ctx, at, target, msg);
        }
    }

    fn forward_collect_reply(
        &mut self,
        ctx: &mut Ctx<PtMsg>,
        at: NodeId,
        msg: PtMsg,
        from: Option<NodeId>,
    ) {
        let PtMsg::CollectReply { qid, to, gpsr, .. } = &msg else {
            unreachable!()
        };
        let (qid, to, gpsr) = (*qid, *to, *gpsr);
        let m2 = msg.clone();
        self.geo_forward(ctx, at, to, &gpsr, (qid, 41), from, move |h| match m2 {
            PtMsg::CollectReply {
                qid,
                node,
                position,
                to,
                ..
            } => PtMsg::CollectReply {
                qid,
                node,
                position,
                to,
                gpsr: h,
            },
            _ => unreachable!(),
        });
    }

    fn forward_subreply(
        &mut self,
        ctx: &mut Ctx<PtMsg>,
        at: NodeId,
        msg: PtMsg,
        from: Option<NodeId>,
    ) {
        let PtMsg::SubReply { qid, gpsr, to, .. } = &msg else {
            unreachable!()
        };
        let (qid, gpsr, to) = (*qid, *gpsr, *to);
        let m2 = msg.clone();
        self.geo_forward(ctx, at, to, &gpsr, (qid, 21), from, move |h| match m2 {
            PtMsg::SubReply {
                qid, members, to, ..
            } => PtMsg::SubReply {
                qid,
                members,
                gpsr: h,
                to,
            },
            _ => unreachable!(),
        });
    }
}

impl KnnProtocol for PeerTree {
    fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    fn outcomes_mut(&mut self) -> &mut [QueryOutcome] {
        &mut self.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_indexing_is_row_major() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pt = PeerTree::new(PeerTreeConfig::default(), field, 10, vec![]);
        assert_eq!(pt.cell_of(Point::new(5.0, 5.0)), 0);
        assert_eq!(pt.cell_of(Point::new(95.0, 5.0)), 4);
        assert_eq!(pt.cell_of(Point::new(5.0, 95.0)), 20);
        assert_eq!(pt.cell_of(Point::new(50.0, 50.0)), 12);
        assert_eq!(pt.root_cell(), 12);
        // Boundary clamping.
        assert_eq!(pt.cell_of(Point::new(100.0, 100.0)), 24);
    }

    #[test]
    fn clusterhead_positions_are_cell_centres() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pos = PeerTree::clusterhead_positions(field, 5);
        assert_eq!(pos.len(), 25);
        assert_eq!(pos[0], Point::new(10.0, 10.0));
        assert_eq!(pos[24], Point::new(90.0, 90.0));
    }

    #[test]
    fn head_ids_follow_data_nodes() {
        let field = Rect::new(0.0, 0.0, 100.0, 100.0);
        let pt = PeerTree::new(PeerTreeConfig::default(), field, 200, vec![]);
        assert_eq!(pt.head_id(0), NodeId(200));
        assert_eq!(pt.head_id(24), NodeId(224));
        assert!(pt.is_head(NodeId(200)));
        assert!(!pt.is_head(NodeId(199)));
    }
}
