//! The naive infrastructure-free baseline the paper dismisses in §3.3:
//! flood the query inside the boundary; every in-boundary node routes its
//! response *independently* back to the sink, end-to-end. "Extremely
//! resource-consuming ... because of the excessive number of independent
//! routing paths"; included for the ablation benches that quantify exactly
//! that.

use std::collections::{BTreeMap, BTreeSet};

use diknn_geom::Point;
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};

use diknn_core::knnb::{knnb, HopRecord};
use diknn_core::{Candidate, CandidateSet, KnnProtocol, QueryOutcome, QueryRequest, QueryStatus};

const K_ISSUE: u8 = 1;
const K_CLOSE: u8 = 2;
const K_RESPOND: u8 = 3;

/// Neighbour snapshot filtered by the link-reliability predictor
/// ([`diknn_routing::reliable_neighbors`]): avoids unicasting to entries
/// that have likely drifted out of range.
fn reliable(ctx: &mut Ctx<FloodMsg>, at: NodeId) -> Vec<diknn_sim::Neighbor> {
    let raw = ctx.neighbors(at);
    diknn_routing::reliable_neighbors(
        ctx.position(at),
        ctx.speed(at),
        ctx.now(),
        &raw,
        ctx.config().radio_range,
    )
}

fn key(kind: u8, qid: u32, aux: u32) -> u64 {
    ((kind as u64) << 56) | ((qid as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

/// Flooding baseline configuration.
#[derive(Debug, Clone)]
pub struct FloodConfig {
    /// The sink closes the query this many seconds after issuing.
    pub close_after: f64,
    /// Per-expected-responder jitter budget in seconds: each responder
    /// delays uniformly in `[0, k × per_response_slot)` so the flood of
    /// independent responses does not leave as one burst.
    pub per_response_slot: f64,
    pub response_bytes: usize,
    pub base_msg_bytes: usize,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            close_after: 10.0,
            per_response_slot: 0.018,
            response_bytes: 10,
            base_msg_bytes: 24,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodSpec {
    pub qid: u32,
    pub sink: NodeId,
    pub sink_pos: Point,
    pub q: Point,
    pub k: u32,
    pub issued_at: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
pub enum FloodMsg {
    /// Routing phase toward the home node (KNNB list gathering).
    Query {
        spec: FloodSpec,
        gpsr: GpsrHeader,
        list: Vec<HopRecord>,
    },
    /// In-boundary flood.
    Flood { spec: FloodSpec, radius: f64 },
    /// Per-node response routed end-to-end to the sink.
    Response {
        spec: FloodSpec,
        gpsr: GpsrHeader,
        node: NodeId,
        position: Point,
    },
}

impl FloodMsg {
    /// Query id for per-query energy attribution (every flood frame is
    /// query-scoped).
    fn qid(&self) -> Option<u32> {
        match self {
            FloodMsg::Query { spec, .. }
            | FloodMsg::Flood { spec, .. }
            | FloodMsg::Response { spec, .. } => Some(spec.qid),
        }
    }

    fn wire_bytes(&self, cfg: &FloodConfig) -> usize {
        match self {
            FloodMsg::Query { list, .. } => cfg.base_msg_bytes + 10 * list.len(),
            FloodMsg::Flood { .. } => cfg.base_msg_bytes + 4,
            FloodMsg::Response { .. } => cfg.base_msg_bytes + cfg.response_bytes,
        }
    }
}

/// The naive flooding protocol.
pub struct Flood {
    cfg: FloodConfig,
    requests: Vec<QueryRequest>,
    outcomes: Vec<QueryOutcome>,
    merged: BTreeMap<u32, (CandidateSet, u32, SimTime)>,
    seen_flood: BTreeSet<(u32, u32)>,
    pending: BTreeMap<(u32, u32), FloodSpec>,
    radio_range: f64,
}

impl Flood {
    pub fn new(cfg: FloodConfig, requests: Vec<QueryRequest>) -> Self {
        Flood {
            cfg,
            requests,
            outcomes: Vec::new(),
            merged: BTreeMap::new(),
            seen_flood: BTreeSet::new(),
            pending: BTreeMap::new(),
            radio_range: 0.0,
        }
    }

    fn send(&self, ctx: &mut Ctx<FloodMsg>, from: NodeId, to: NodeId, msg: FloodMsg) {
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = msg.qid();
        ctx.unicast_flow(from, to, bytes, msg, flow);
    }

    fn issue(&mut self, ctx: &mut Ctx<FloodMsg>, idx: usize) {
        let req = self.requests[idx];
        let qid = self.outcomes.len() as u32;
        let spec = FloodSpec {
            qid,
            sink: req.sink,
            sink_pos: ctx.position(req.sink),
            q: req.q,
            k: req.k.max(1) as u32,
            issued_at: ctx.now(),
        };
        self.outcomes.push(QueryOutcome {
            qid,
            sink: req.sink,
            q: req.q,
            k: req.k,
            issued_at: ctx.now(),
            completed_at: None,
            answer: Vec::new(),
            boundary_radius: 0.0,
            final_radius: 0.0,
            routing_hops: 0,
            parts_expected: 0,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        });
        self.merged
            .insert(qid, (CandidateSet::new(req.k.max(1)), 0, ctx.now()));
        ctx.set_timer(
            req.sink,
            SimDuration::from_secs_f64(self.cfg.close_after),
            key(K_CLOSE, qid, 0),
        );
        let msg = FloodMsg::Query {
            spec,
            gpsr: GpsrHeader::new(req.q),
            list: Vec::new(),
        };
        self.query_arrival(ctx, req.sink, msg, None);
    }

    fn query_arrival(
        &mut self,
        ctx: &mut Ctx<FloodMsg>,
        at: NodeId,
        msg: FloodMsg,
        from: Option<NodeId>,
    ) {
        let FloodMsg::Query {
            spec,
            gpsr,
            mut list,
        } = msg
        else {
            unreachable!()
        };
        let neighbors = reliable(ctx, at);
        let prev = list.last().map(|h| h.loc);
        let enc = match prev {
            None => neighbors.len() as u32,
            Some(p) => neighbors
                .iter()
                .filter(|n| n.position.dist(p) > self.radio_range)
                .count() as u32,
        };
        list.push(HopRecord {
            loc: ctx.position(at),
            enc,
        });
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev_pos,
            &[],
            1.5 * self.radio_range, // home node = closest to q; skip face walks
        ) {
            RouteStep::Forward { next, header } => {
                self.send(
                    ctx,
                    at,
                    next,
                    FloodMsg::Query {
                        spec,
                        gpsr: header,
                        list,
                    },
                );
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                let radius = knnb(&list, spec.q, self.radio_range, spec.k as usize)
                    .radius
                    .max(self.radio_range * 0.5);
                if let Some(o) = self.outcomes.get_mut(spec.qid as usize) {
                    o.boundary_radius = radius;
                    o.final_radius = radius;
                    o.routing_hops = list.len().saturating_sub(1) as u32;
                }
                self.flood_arrival(ctx, at, spec, radius);
            }
        }
    }

    fn flood_arrival(&mut self, ctx: &mut Ctx<FloodMsg>, at: NodeId, spec: FloodSpec, radius: f64) {
        if !self.seen_flood.insert((spec.qid, at.0)) {
            return;
        }
        let pos = ctx.position(at);
        if pos.dist(spec.q) > radius {
            return;
        }
        // Rebroadcast, then route our own response independently to the
        // sink after a random share of the jitter budget.
        let flood = FloodMsg::Flood { spec, radius };
        let bytes = flood.wire_bytes(&self.cfg);
        ctx.broadcast_flow(at, bytes, flood, Some(spec.qid));
        self.pending.insert((spec.qid, at.0), spec);
        let jitter: f64 = {
            use rand::Rng;
            ctx.rng()
                .gen_range(0.0..self.cfg.per_response_slot * spec.k as f64 + 1e-6)
        };
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(jitter),
            key(K_RESPOND, spec.qid, 0),
        );
    }

    fn respond(&mut self, ctx: &mut Ctx<FloodMsg>, at: NodeId, qid: u32) {
        let Some(spec) = self.pending.remove(&(qid, at.0)) else {
            return;
        };
        let resp = FloodMsg::Response {
            spec,
            gpsr: GpsrHeader::new(spec.sink_pos),
            node: at,
            position: ctx.position(at),
        };
        self.route_response(ctx, at, resp, None);
    }

    fn route_response(
        &mut self,
        ctx: &mut Ctx<FloodMsg>,
        at: NodeId,
        msg: FloodMsg,
        from: Option<NodeId>,
    ) {
        let FloodMsg::Response { spec, gpsr, .. } = &msg else {
            unreachable!()
        };
        let spec = *spec;
        if at == spec.sink {
            return self.absorb_response(ctx, msg);
        }
        let neighbors = reliable(ctx, at);
        if neighbors.iter().any(|n| n.id == spec.sink) {
            return self.send(ctx, at, spec.sink, msg);
        }
        let gpsr = *gpsr;
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev_pos,
            &[],
            self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                let FloodMsg::Response {
                    spec,
                    node,
                    position,
                    ..
                } = msg
                else {
                    unreachable!()
                };
                self.send(
                    ctx,
                    at,
                    next,
                    FloodMsg::Response {
                        spec,
                        gpsr: header,
                        node,
                        position,
                    },
                );
            }
            RouteStep::Arrived | RouteStep::NoRoute => {}
        }
    }

    fn absorb_response(&mut self, ctx: &mut Ctx<FloodMsg>, msg: FloodMsg) {
        let FloodMsg::Response {
            spec,
            node,
            position,
            ..
        } = msg
        else {
            unreachable!()
        };
        if let Some((set, count, last)) = self.merged.get_mut(&spec.qid) {
            set.insert(Candidate {
                id: node,
                position,
                dist: position.dist(spec.q),
            });
            *count += 1;
            *last = ctx.now();
        }
    }

    fn close(&mut self, qid: u32) {
        let Some((set, count, last)) = self.merged.remove(&qid) else {
            return;
        };
        let o = &mut self.outcomes[qid as usize];
        o.explored_nodes = count;
        o.parts_returned = count;
        o.parts_expected = count;
        o.answer = set.ids();
        o.answer.truncate(o.k);
        if count > 0 {
            o.completed_at = Some(last);
        }
    }
}

impl Protocol for Flood {
    type Msg = FloodMsg;

    fn on_start(&mut self, ctx: &mut Ctx<FloodMsg>) {
        self.radio_range = ctx.config().radio_range;
        for (i, req) in self.requests.clone().into_iter().enumerate() {
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64(req.at),
                key(K_ISSUE, 0, i as u32),
            );
        }
    }

    fn on_timer(&mut self, at: NodeId, timer_key: u64, ctx: &mut Ctx<FloodMsg>) {
        let kind = (timer_key >> 56) as u8;
        let qid = ((timer_key >> 24) & 0xFFFF_FFFF) as u32;
        let aux = (timer_key & 0xFF_FFFF) as u32;
        match kind {
            K_ISSUE => self.issue(ctx, aux as usize),
            K_CLOSE => self.close(qid),
            K_RESPOND => self.respond(ctx, at, qid),
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &FloodMsg, ctx: &mut Ctx<FloodMsg>) {
        match msg {
            FloodMsg::Query { .. } => self.query_arrival(ctx, at, msg.clone(), Some(from)),
            FloodMsg::Flood { spec, radius } => self.flood_arrival(ctx, at, *spec, *radius),
            FloodMsg::Response { .. } => self.route_response(ctx, at, msg.clone(), Some(from)),
        }
    }
}

impl KnnProtocol for Flood {
    fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    fn outcomes_mut(&mut self) -> &mut [QueryOutcome] {
        &mut self.outcomes
    }
}
