//! Property-based tests over the geometry primitives.

use diknn_geom::{angle, Circle, Point, Polyline, Rect, Sector, Segment, Vec2, TAU};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-6);
    }

    #[test]
    fn dist_nonnegative_symmetric(a in point(), b in point()) {
        prop_assert!(a.dist(b) >= 0.0);
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
    }

    #[test]
    fn polar_offset_has_requested_distance(p in point(), theta in 0.0..TAU, d in 0.0..500.0f64) {
        let q = p.polar_offset(theta, d);
        prop_assert!((p.dist(q) - d).abs() < 1e-6);
    }

    #[test]
    fn angle_normalize_in_range(theta in -100.0..100.0f64) {
        let n = angle::normalize(theta);
        prop_assert!((0.0..TAU).contains(&n));
        // Same direction.
        prop_assert!(angle::diff(n, theta) < 1e-6);
    }

    #[test]
    fn angle_diff_bounded(a in -50.0..50.0f64, b in -50.0..50.0f64) {
        let d = angle::diff(a, b);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&d));
        prop_assert!((angle::diff(b, a) - d).abs() < 1e-9);
    }

    #[test]
    fn sector_index_consistent_with_partition(
        theta in 0.0..TAU,
        origin in 0.0..TAU,
        s in 1usize..32,
    ) {
        let idx = angle::sector_index(theta, origin, s);
        prop_assert!(idx < s);
        let sectors = Sector::partition(Point::ORIGIN, 10.0, s, origin);
        let p = Point::ORIGIN.polar_offset(theta, 5.0);
        prop_assert!(sectors[idx].contains(p));
    }

    #[test]
    fn rect_union_contains_both(
        a in (point(), point()).prop_map(|(p, q)| Rect::new(p.x, p.y, q.x, q.y)),
        b in (point(), point()).prop_map(|(p, q)| Rect::new(p.x, p.y, q.x, q.y)),
    ) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn rect_min_dist_zero_iff_contains(
        r in (point(), point()).prop_map(|(p, q)| Rect::new(p.x, p.y, q.x, q.y)),
        p in point(),
    ) {
        let d = r.min_dist(p);
        if r.contains(p) {
            prop_assert!(d == 0.0);
        } else {
            prop_assert!(d > 0.0);
            // Clamped point realises the distance.
            prop_assert!((r.clamp(p).dist(p) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn circle_contains_consistent_with_dist(c in point(), rad in 0.0..500.0f64, p in point()) {
        let circle = Circle::new(c, rad);
        prop_assert_eq!(circle.contains(p), c.dist(p) <= rad + 1e-12);
    }

    #[test]
    fn segment_closest_point_is_closest(a in point(), b in point(), p in point(), t in 0.0..1.0f64) {
        let s = Segment::new(a, b);
        let best = s.dist_to_point(p);
        let other = a.lerp(b, t);
        prop_assert!(best <= other.dist(p) + 1e-9);
    }

    #[test]
    fn polyline_point_at_lies_on_polyline(
        pts in prop::collection::vec(point(), 2..8),
        frac in 0.0..1.0f64,
    ) {
        let poly = Polyline::new(pts);
        let s = frac * poly.length();
        let p = poly.point_at(s);
        prop_assert!(poly.dist_to_point(p) < 1e-6);
    }

    #[test]
    fn polyline_projection_roundtrip(
        pts in prop::collection::vec(point(), 2..8),
        frac in 0.0..1.0f64,
    ) {
        let poly = Polyline::new(pts);
        let s = frac * poly.length();
        let p = poly.point_at(s);
        let proj = poly.project(p);
        // The projected point must be as close (distance ~0).
        prop_assert!(proj.dist < 1e-6);
    }

    #[test]
    fn polyline_project_from_monotone(
        pts in prop::collection::vec(point(), 2..8),
        p in point(),
        frac in 0.0..1.0f64,
    ) {
        let poly = Polyline::new(pts);
        let from = frac * poly.length();
        let proj = poly.project_from(p, from);
        prop_assert!(proj.arclen + 1e-9 >= from);
        prop_assert!(proj.arclen <= poly.length() + 1e-9);
    }

    #[test]
    fn vec2_rotation_preserves_norm(x in coord(), y in coord(), theta in -10.0..10.0f64) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotated(theta).norm() - v.norm()).abs() < 1e-6);
    }

    #[test]
    fn sector_dist_to_border_at_most_apex_dist(
        origin in 0.0..TAU,
        span_frac in 0.01..1.0f64,
        theta in 0.0..TAU,
        d in 0.0..100.0f64,
    ) {
        let sector = Sector::new(Point::ORIGIN, origin, span_frac * TAU, 200.0);
        let p = Point::ORIGIN.polar_offset(theta, d);
        prop_assert!(sector.dist_to_border(p) <= d + 1e-9);
    }
}
