use crate::{angle, Point, TAU};

/// Angular tolerance for sector-border membership, in radians.
///
/// Sector borders are computed as `normalize(origin + i·span)`, so two
/// adjacent sectors (and in particular the last sector and the partition
/// origin, across the 0/2π seam) disagree about the shared border by a few
/// ULPs. Without a tolerance that rounding opens a sliver of directions
/// `contains` rejects for *every* sector of a partition — a node sitting
/// exactly on the seam would be claimed by no sub-itinerary. 1e-12 rad is
/// ~9 orders of magnitude above the ULP noise yet under a nanometre of arc
/// at any radius the protocol uses.
const SEAM_EPS: f64 = 1e-12;

/// A cone-shaped area: the region between two rays from `apex`, clipped to
/// radius `radius`. DIKNN partitions its circular KNN boundary into `S` of
/// these, one sub-itinerary per sector (paper §3.3, Figure 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sector {
    /// Cone apex — for DIKNN always the query point `q`.
    pub apex: Point,
    /// Angle of the counter-clockwise start border, in `[0, 2π)`.
    pub start_angle: f64,
    /// Angular width in radians, in `(0, 2π]`.
    pub span: f64,
    /// Radial extent (the KNN boundary radius `R`).
    pub radius: f64,
}

impl Sector {
    pub fn new(apex: Point, start_angle: f64, span: f64, radius: f64) -> Self {
        debug_assert!(span > 0.0 && span <= TAU, "sector span out of range");
        debug_assert!(radius >= 0.0, "negative sector radius");
        Sector {
            apex,
            start_angle: angle::normalize(start_angle),
            span,
            radius,
        }
    }

    /// Partition the circle of `radius` around `apex` into `sectors` equal
    /// sectors, the first starting at angle `origin`.
    pub fn partition(apex: Point, radius: f64, sectors: usize, origin: f64) -> Vec<Sector> {
        assert!(sectors > 0, "cannot partition into zero sectors");
        let span = TAU / sectors as f64;
        (0..sectors)
            .map(|i| Sector::new(apex, origin + i as f64 * span, span, radius))
            .collect()
    }

    /// Angle of the counter-clockwise end border.
    #[inline]
    pub fn end_angle(&self) -> f64 {
        angle::normalize(self.start_angle + self.span)
    }

    /// Angle of the bisector ray.
    #[inline]
    pub fn bisector(&self) -> f64 {
        angle::normalize(self.start_angle + self.span * 0.5)
    }

    /// Whether `p` lies inside the sector (inclusive of borders and of the
    /// apex itself). Borders are inclusive with [`SEAM_EPS`] angular
    /// tolerance on both edges, so the sectors of a [`Sector::partition`]
    /// cover every direction despite per-sector border rounding — adjacent
    /// sectors may both claim an exact border point, but no point is
    /// orphaned.
    pub fn contains(&self, p: Point) -> bool {
        let d = self.apex.dist(p);
        if d > self.radius {
            return false;
        }
        if d <= crate::EPS {
            return true;
        }
        let off = angle::ccw_sweep(self.start_angle, self.apex.angle_to(p));
        // `off` near 2π means the direction is within a rounding error
        // *clockwise* of the start border (the wrap seam).
        off <= self.span + SEAM_EPS || off >= TAU - SEAM_EPS
    }

    /// Area of the circular sector.
    #[inline]
    pub fn area(&self) -> f64 {
        0.5 * self.span * self.radius * self.radius
    }

    /// Distance from `p` to the nearest of the two border rays, measured
    /// perpendicular to the ray. Only meaningful for points whose direction
    /// is inside the cone; used to define the adj-segment corridor
    /// ("distance less than w/2 to either side of a sector's border").
    pub fn dist_to_border(&self, p: Point) -> f64 {
        let d = self.apex.dist(p);
        if d <= crate::EPS {
            return 0.0;
        }
        let theta = self.apex.angle_to(p);
        let to_start = angle::diff(theta, self.start_angle);
        let to_end = angle::diff(theta, self.end_angle());
        let nearest = to_start.min(to_end);
        // Perpendicular distance to a ray at angular offset φ is d·sin(φ)
        // when φ ≤ π/2, and d (the apex is the closest ray point) beyond.
        if nearest >= std::f64::consts::FRAC_PI_2 {
            d
        } else {
            d * nearest.sin()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn quadrant() -> Sector {
        // First quadrant, radius 10, apex at origin.
        Sector::new(Point::ORIGIN, 0.0, FRAC_PI_2, 10.0)
    }

    #[test]
    fn partition_covers_circle_disjointly() {
        let parts = Sector::partition(Point::new(1.0, 2.0), 5.0, 8, 0.3);
        assert_eq!(parts.len(), 8);
        let total_span: f64 = parts.iter().map(|s| s.span).sum();
        assert!((total_span - TAU).abs() < 1e-9);
        // Any interior point lies in exactly one sector.
        let p = Point::new(2.5, 3.5);
        let n = parts.iter().filter(|s| s.contains(p)).count();
        assert_eq!(n, 1);
    }

    #[test]
    fn contains_respects_radius_and_angle() {
        let s = quadrant();
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(s.contains(Point::new(10.0, 0.0)));
        assert!(!s.contains(Point::new(10.1, 0.0)));
        assert!(!s.contains(Point::new(-1.0, 1.0)));
        assert!(s.contains(Point::ORIGIN));
    }

    #[test]
    fn bisector_and_end() {
        let s = quadrant();
        assert!((s.bisector() - FRAC_PI_2 / 2.0).abs() < 1e-12);
        assert!((s.end_angle() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn area_of_half_circle() {
        let s = Sector::new(Point::ORIGIN, 0.0, PI, 2.0);
        assert!((s.area() - 2.0 * PI).abs() < 1e-9);
    }

    #[test]
    fn dist_to_border_perpendicular() {
        let s = quadrant();
        // Point (3, 1): distance to the x-axis border is 1.
        assert!((s.dist_to_border(Point::new(3.0, 1.0)) - 1.0).abs() < 1e-9);
        // Point on the bisector at distance d: both borders at d·sin(45°).
        let d = 4.0;
        let p = Point::ORIGIN.polar_offset(s.bisector(), d);
        assert!((s.dist_to_border(p) - d * (FRAC_PI_2 / 2.0).sin()).abs() < 1e-9);
    }

    #[test]
    fn wrapping_sector_contains() {
        // Sector straddling angle 0.
        let s = Sector::new(Point::ORIGIN, TAU - 0.5, 1.0, 10.0);
        assert!(s.contains(Point::new(5.0, 0.0)));
        assert!(s.contains(Point::ORIGIN.polar_offset(TAU - 0.3, 3.0)));
        assert!(!s.contains(Point::new(0.0, 5.0)));
    }

    /// Next representable angle below `a` (assumes `a > 0`).
    fn ulp_down(a: f64) -> f64 {
        if a == 0.0 {
            // Just below 0 wraps to just below 2π.
            f64::from_bits(TAU.to_bits() - 1)
        } else {
            f64::from_bits(a.to_bits() - 1)
        }
    }

    /// Next representable angle above `a`.
    fn ulp_up(a: f64) -> f64 {
        f64::from_bits(a.to_bits() + 1)
    }

    #[test]
    fn border_points_are_inside_their_sector() {
        // A point exactly on the start border and exactly on the end border
        // belongs to the sector (borders are inclusive) — including for a
        // sector that spans the 0/2π seam.
        for s in [
            quadrant(),
            Sector::new(Point::new(12.0, -3.0), TAU - 0.5, 1.0, 10.0), // spans the seam
            Sector::new(Point::ORIGIN, TAU - 1e-12, 0.7, 10.0),        // start hugs the seam
        ] {
            for a in [s.start_angle, s.end_angle()] {
                let p = s.apex.polar_offset(a, s.radius * 0.5);
                assert!(
                    s.contains(p),
                    "border point at angle {a} escaped sector {s:?}"
                );
            }
        }
    }

    #[test]
    fn partition_has_no_dead_gap_at_any_seam() {
        // Every direction must land in at least one sector of a partition —
        // including directions a ULP either side of every border. Rounding
        // in the per-sector `normalize(origin + i·span)` used to open
        // ULP-wide gaps (typically at the partition-origin wrap seam) where
        // `contains` was false for every sector.
        let apex = Point::new(37.2, -11.5);
        for sectors in [1usize, 3, 4, 5, 7, 8, 12] {
            for origin in [0.0, 0.3, 1.234_567, PI, 5.5, TAU - 1e-9, -0.25] {
                let parts = Sector::partition(apex, 50.0, sectors, origin);
                for s in &parts {
                    for a in [s.start_angle, s.end_angle()] {
                        for dir in [ulp_down(a), a, ulp_up(a)] {
                            let p = apex.polar_offset(dir, 30.0);
                            let n = parts.iter().filter(|s| s.contains(p)).count();
                            assert!(
                                n >= 1,
                                "S={sectors} origin={origin}: direction {dir} \
                                 (border {a}) lies in no sector"
                            );
                        }
                    }
                }
            }
        }
    }
}
