use crate::{Point, Rect};

/// A circle: DIKNN's KNN search boundary is a circle centred at the query
/// point, and radio coverage is a disc around each node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "negative circle radius");
        Circle { center, radius }
    }

    /// Whether `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Axis-aligned bounding box of the circle.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// Whether this circle and `other` overlap (closed discs).
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.dist_sq(other.center) <= r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary_and_interior() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(c.contains(Point::new(3.0, 1.0)));
        assert!(!c.contains(Point::new(3.1, 1.0)));
    }

    #[test]
    fn area_matches_formula() {
        let c = Circle::new(Point::ORIGIN, 3.0);
        assert!((c.area() - 9.0 * std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn bounding_rect_encloses() {
        let c = Circle::new(Point::new(5.0, -2.0), 1.5);
        let r = c.bounding_rect();
        assert_eq!(r, Rect::new(3.5, -3.5, 6.5, -0.5));
    }

    #[test]
    fn intersection_by_center_distance() {
        let a = Circle::new(Point::ORIGIN, 1.0);
        let b = Circle::new(Point::new(2.0, 0.0), 1.0);
        let c = Circle::new(Point::new(2.1, 0.0), 1.0);
        assert!(a.intersects(&b)); // tangent counts
        assert!(!a.intersects(&c));
    }
}
