//! 2D geometry primitives used throughout the DIKNN reproduction.
//!
//! Everything in the system — radio ranges, GPSR faces, R-tree rectangles,
//! itinerary arcs — bottoms out in the small set of types defined here:
//!
//! * [`Point`] / [`Vec2`] — positions and displacements in metres.
//! * [`Rect`] — axis-aligned rectangles (MBRs for the R-tree, field bounds).
//! * [`Circle`] — search boundaries.
//! * [`Sector`] — the cone-shaped areas DIKNN partitions its boundary into.
//! * [`Segment`] — line segments with point-distance and projection.
//! * [`Polyline`] — arc-length parameterised paths; itineraries are polylines.
//! * [`angle`] — helpers for working with angles in `[0, 2π)`.
//!
//! All coordinates are `f64` metres; all angles are radians.
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod angle;
mod circle;
mod point;
mod polyline;
mod rect;
mod sector;
mod segment;

pub use circle::Circle;
pub use point::{Point, Vec2};
pub use polyline::Polyline;
pub use rect::Rect;
pub use sector::Sector;
pub use segment::Segment;

/// 2π, the full turn, used pervasively by sector math.
pub const TAU: f64 = std::f64::consts::TAU;

/// Comparison slack for geometric predicates, in metres.
///
/// Field sizes in the paper are on the order of 100 m and radio ranges 20 m,
/// so a nanometre of slack is far below anything physically meaningful while
/// absorbing `f64` rounding in chained transforms.
pub const EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_is_two_pi() {
        assert!((TAU - 2.0 * std::f64::consts::PI).abs() < EPS);
    }
}
