use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement in the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

diknn_snap::snap_struct!(Point { x, y });
diknn_snap::snap_struct!(Vec2 { x, y });

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance; cheaper when only comparing.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: `t = 0` is `self`, `t = 1` is `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Angle of the direction from `self` toward `other`, in `[0, 2π)`.
    #[inline]
    pub fn angle_to(self, other: Point) -> f64 {
        crate::angle::normalize((other - self).angle())
    }

    /// The point at `dist` metres from `self` in direction `theta` (radians).
    #[inline]
    pub fn polar_offset(self, theta: f64, dist: f64) -> Point {
        Point::new(self.x + dist * theta.cos(), self.y + dist * theta.sin())
    }

    /// Both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector in direction `theta` (radians).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Direction of this vector in radians, in `(-π, π]` (`atan2` range).
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The same direction with unit length. Returns `Vec2::ZERO` for the zero
    /// vector rather than NaN, which keeps downstream math total.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= f64::MIN_POSITIVE {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Rotate counter-clockwise by `theta` radians.
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (counter-clockwise 90° rotation).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS;

    #[test]
    fn dist_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(b) - 5.0).abs() < EPS);
        assert!((b.dist(a) - 5.0).abs() < EPS);
        assert!((a.dist_sq(b) - 25.0).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(5.0, 10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(3.0, 6.0));
    }

    #[test]
    fn polar_offset_round_trip() {
        let p = Point::new(2.0, -1.0);
        for i in 0..16 {
            let theta = i as f64 * crate::TAU / 16.0;
            let q = p.polar_offset(theta, 7.5);
            assert!((p.dist(q) - 7.5).abs() < 1e-9);
            assert!(crate::angle::diff(p.angle_to(q), crate::angle::normalize(theta)) < 1e-9);
        }
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(1.0, 0.0);
        let w = Vec2::new(0.0, 2.0);
        assert!((v.dot(w)).abs() < EPS);
        assert!((v.cross(w) - 2.0).abs() < EPS);
        assert!((w.cross(v) + 2.0).abs() < EPS);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.234);
        assert!((r.norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let v = Vec2::new(0.0, -3.0).normalized();
        assert!((v.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn angle_to_quadrants() {
        let o = Point::ORIGIN;
        assert!((o.angle_to(Point::new(1.0, 0.0)) - 0.0).abs() < EPS);
        assert!((o.angle_to(Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((o.angle_to(Point::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < EPS);
        assert!(
            (o.angle_to(Point::new(0.0, -1.0)) - 3.0 * std::f64::consts::FRAC_PI_2).abs() < EPS
        );
    }
}
