//! Angle arithmetic on the circle `[0, 2π)`.
//!
//! Sector membership, rendezvous placement and itinerary arcs all reason about
//! angles around the query point, so the conventions live in one place:
//! angles are radians, normalised into `[0, 2π)`, and "between" is always
//! measured counter-clockwise.

use crate::TAU;

/// Normalise an angle into `[0, 2π)`.
#[inline]
pub fn normalize(theta: f64) -> f64 {
    let r = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself for inputs within a ULP below 0.
    if r >= TAU {
        0.0
    } else {
        r
    }
}

/// Counter-clockwise sweep from `from` to `to`, in `[0, 2π)`.
#[inline]
pub fn ccw_sweep(from: f64, to: f64) -> f64 {
    normalize(to - from)
}

/// Smallest absolute difference between two angles, in `[0, π]`.
#[inline]
pub fn diff(a: f64, b: f64) -> f64 {
    let d = normalize(a - b);
    d.min(TAU - d)
}

/// Whether `theta` lies in the counter-clockwise interval from `start`
/// spanning `span` radians. The start edge is inclusive; for a full-circle
/// span every angle is inside.
#[inline]
pub fn in_ccw_interval(theta: f64, start: f64, span: f64) -> bool {
    if span >= TAU {
        return true;
    }
    ccw_sweep(start, theta) <= span
}

/// Index of the sector containing `theta` when the circle is divided into
/// `sectors` equal cones with sector 0 starting at `start`.
///
/// Returns a value in `0..sectors`. `sectors` must be non-zero.
#[inline]
pub fn sector_index(theta: f64, start: f64, sectors: usize) -> usize {
    debug_assert!(sectors > 0);
    let span = TAU / sectors as f64;
    let idx = (ccw_sweep(start, theta) / span) as usize;
    idx.min(sectors - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn normalize_wraps_both_directions() {
        assert!((normalize(-PI / 2.0) - 1.5 * PI).abs() < 1e-12);
        assert!((normalize(2.5 * TAU) - 0.5 * TAU).abs() < 1e-9);
        assert_eq!(normalize(0.0), 0.0);
        assert!(normalize(-1e-18) < TAU);
    }

    #[test]
    fn diff_is_symmetric_and_bounded() {
        assert!((diff(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((diff(PI, 0.0) - PI).abs() < 1e-12);
        assert!((diff(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn interval_membership() {
        assert!(in_ccw_interval(0.5, 0.0, 1.0));
        assert!(!in_ccw_interval(1.5, 0.0, 1.0));
        // Interval crossing zero.
        assert!(in_ccw_interval(0.1, TAU - 0.5, 1.0));
        assert!(in_ccw_interval(TAU - 0.2, TAU - 0.5, 1.0));
        assert!(!in_ccw_interval(PI, TAU - 0.5, 1.0));
        // Full circle.
        assert!(in_ccw_interval(3.0, 1.0, TAU));
    }

    #[test]
    fn sector_indexing_partitions_circle() {
        let s = 8;
        for i in 0..s {
            let mid = (i as f64 + 0.5) * TAU / s as f64;
            assert_eq!(sector_index(mid, 0.0, s), i);
        }
        // Boundary angle belongs to the starting sector.
        assert_eq!(sector_index(0.0, 0.0, s), 0);
        // Rotated partition origin.
        assert_eq!(sector_index(0.1, 0.05, 4), 0);
        assert_eq!(sector_index(0.04, 0.05, 4), 3);
    }
}
