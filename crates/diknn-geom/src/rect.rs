use crate::Point;

/// An axis-aligned rectangle (minimum bounding rectangle).
///
/// Used as the field boundary of the simulation, as the MBR type of the
/// R-tree substrate, and as the grid cells of the Peer-tree baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

diknn_snap::snap_struct!(Rect {
    min_x,
    min_y,
    max_x,
    max_y
});

impl Rect {
    /// Construct from corner coordinates. Coordinates are reordered so the
    /// result is always a valid (possibly degenerate) rectangle.
    #[inline]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect {
            min_x: x0.min(x1),
            min_y: y0.min(y1),
            max_x: x0.max(x1),
            max_y: y0.max(y1),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// An "empty" rectangle that acts as the identity for [`Rect::union`].
    #[inline]
    pub fn empty() -> Self {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half the perimeter; the classic R-tree "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Whether `p` lies inside or on the rectangle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether `other` lies fully inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.min_x >= self.min_x
                && other.max_x <= self.max_x
                && other.min_y >= self.min_y
                && other.max_y <= self.max_y)
    }

    /// Whether the closed rectangles overlap.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || other.min_x > self.max_x
            || other.max_x < self.min_x
            || other.min_y > self.max_y
            || other.max_y < self.min_y)
    }

    /// Smallest rectangle covering both.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// How much [`Rect::area`] would grow if expanded to cover `other`.
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum Euclidean distance from `p` to the rectangle (0 if inside).
    /// This is the R-tree `MINDIST` used to order KNN traversal.
    #[inline]
    pub fn min_dist(&self, p: Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared [`Rect::min_dist`].
    #[inline]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// Clamp a point into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min_x, self.max_x),
            p.y.clamp(self.min_y, self.max_y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_reorders_corners() {
        let r = Rect::new(5.0, 7.0, 1.0, 2.0);
        assert_eq!(r, Rect::new(1.0, 2.0, 5.0, 7.0));
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 5.0);
        assert_eq!(r.area(), 20.0);
        assert_eq!(r.margin(), 9.0);
    }

    #[test]
    fn empty_is_union_identity() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let r = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&r), r);
        assert_eq!(r.union(&e), r);
    }

    #[test]
    fn containment_and_intersection() {
        let big = Rect::new(0.0, 0.0, 10.0, 10.0);
        let small = Rect::new(2.0, 2.0, 3.0, 3.0);
        let outside = Rect::new(11.0, 0.0, 12.0, 1.0);
        let touching = Rect::new(10.0, 0.0, 12.0, 1.0);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&outside));
        assert!(big.intersects(&touching));
        assert!(big.contains(Point::new(10.0, 10.0)));
        assert!(!big.contains(Point::new(10.0, 10.1)));
    }

    #[test]
    fn min_dist_inside_edge_corner() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.min_dist(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(r.min_dist(Point::new(3.0, 1.0)), 1.0);
        assert!((r.min_dist(Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        let inner = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(r.enlargement(&inner), 0.0);
        let outer = Rect::new(0.0, 0.0, 8.0, 4.0);
        assert_eq!(r.enlargement(&outer), 16.0);
    }

    #[test]
    fn clamp_projects_onto_rect() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.clamp(Point::new(-1.0, 5.0)), Point::new(0.0, 2.0));
        assert_eq!(r.clamp(Point::new(1.0, 1.0)), Point::new(1.0, 1.0));
    }
}
