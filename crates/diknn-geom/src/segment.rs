use crate::{Point, Vec2};

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    #[inline]
    pub fn direction(&self) -> Vec2 {
        (self.b - self.a).normalized()
    }

    /// The parameter `t ∈ [0, 1]` of the point on the segment closest to `p`.
    #[inline]
    pub fn closest_t(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq <= f64::MIN_POSITIVE {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.closest_t(p))
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// The point at arc length `s` from `a` (clamped to the segment).
    #[inline]
    pub fn point_at(&self, s: f64) -> Point {
        let len = self.length();
        if len <= f64::MIN_POSITIVE {
            return self.a;
        }
        self.a.lerp(self.b, (s / len).clamp(0.0, 1.0))
    }

    /// Whether the two closed segments intersect (including collinear
    /// overlap and shared endpoints). Used by the Gabriel-graph face routing
    /// tests and the coverage checker.
    pub fn intersects(&self, other: &Segment) -> bool {
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(a: Point, b: Point, c: Point) -> bool {
            c.x >= a.x.min(b.x) && c.x <= a.x.max(b.x) && c.y >= a.y.min(b.y) && c.y <= a.y.max(b.y)
        }
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p3, p4, p1);
        let d2 = orient(p3, p4, p2);
        let d3 = orient(p1, p2, p3);
        let d4 = orient(p1, p2, p4);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(p3, p4, p1))
            || (d2 == 0.0 && on_segment(p3, p4, p2))
            || (d3 == 0.0 && on_segment(p1, p2, p3))
            || (d4 == 0.0 && on_segment(p1, p2, p4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_point_cases() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Perpendicular foot inside the segment.
        assert_eq!(s.closest_point(Point::new(3.0, 4.0)), Point::new(3.0, 0.0));
        assert!((s.dist_to_point(Point::new(3.0, 4.0)) - 4.0).abs() < 1e-12);
        // Beyond either endpoint clamps.
        assert_eq!(s.closest_point(Point::new(-5.0, 1.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(15.0, 1.0)),
            Point::new(10.0, 0.0)
        );
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(1.0, 1.0));
        assert_eq!(s.point_at(3.0), Point::new(1.0, 1.0));
    }

    #[test]
    fn point_at_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        assert_eq!(s.point_at(-1.0), Point::new(0.0, 0.0));
        assert_eq!(s.point_at(2.0), Point::new(2.0, 0.0));
        assert_eq!(s.point_at(99.0), Point::new(4.0, 0.0));
    }

    #[test]
    fn segment_intersection() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        let c = Segment::new(Point::new(3.0, 3.0), Point::new(4.0, 4.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Shared endpoint counts as intersection.
        let d = Segment::new(Point::new(2.0, 2.0), Point::new(5.0, 0.0));
        assert!(a.intersects(&d));
        // Collinear overlap.
        let e = Segment::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        assert!(a.intersects(&e));
    }
}
