use crate::{Point, Segment};

/// A path through a sequence of waypoints, parameterised by arc length.
///
/// DIKNN itineraries (init/peri/adj segments, with arcs discretised into
/// short chords) are represented as polylines. Q-node selection projects the
/// current node onto the polyline and advances the traversal frontier by arc
/// length, so projection and `point_at` are the workhorse operations.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
    /// Cumulative arc length up to each waypoint; `cum[0] == 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Build from waypoints. Consecutive duplicate points are dropped so
    /// every internal segment has positive length. At least one point is
    /// required.
    pub fn new(waypoints: impl IntoIterator<Item = Point>) -> Self {
        let mut points: Vec<Point> = Vec::new();
        for p in waypoints {
            debug_assert!(p.is_finite(), "non-finite polyline waypoint");
            if points.last().is_none_or(|&last| last.dist_sq(p) > 0.0) {
                points.push(p);
            }
        }
        assert!(!points.is_empty(), "polyline needs at least one waypoint");
        let mut cum = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for w in points.windows(2) {
            acc += w[0].dist(w[1]);
            cum.push(acc);
        }
        Polyline { points, cum }
    }

    /// Total arc length.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("non-empty")
    }

    #[inline]
    pub fn waypoints(&self) -> &[Point] {
        &self.points
    }

    #[inline]
    pub fn start(&self) -> Point {
        self.points[0]
    }

    #[inline]
    pub fn end(&self) -> Point {
        *self.points.last().expect("non-empty")
    }

    /// Iterate the constituent segments (empty for a single-point polyline).
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    /// The point at arc length `s` from the start, clamped to `[0, length]`.
    pub fn point_at(&self, s: f64) -> Point {
        if self.points.len() == 1 || s <= 0.0 {
            return self.points[0];
        }
        let total = self.length();
        if s >= total {
            return self.end();
        }
        // Binary search for the segment containing arc length s.
        let i = match self.cum.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let i = i.min(self.points.len() - 2);
        let seg_len = self.cum[i + 1] - self.cum[i];
        let t = if seg_len <= f64::MIN_POSITIVE {
            0.0
        } else {
            (s - self.cum[i]) / seg_len
        };
        self.points[i].lerp(self.points[i + 1], t)
    }

    /// Arc length of the point on the polyline closest to `p`, together with
    /// the distance from `p` to that point.
    ///
    /// When several locations are equally close, the smallest arc length
    /// wins, which keeps itinerary traversal monotone.
    pub fn project(&self, p: Point) -> Projection {
        if self.points.len() == 1 {
            return Projection {
                arclen: 0.0,
                dist: self.points[0].dist(p),
            };
        }
        let mut best = Projection {
            arclen: 0.0,
            dist: f64::INFINITY,
        };
        for (i, seg) in self.segments().enumerate() {
            let t = seg.closest_t(p);
            let q = seg.a.lerp(seg.b, t);
            let d = q.dist(p);
            if d < best.dist - crate::EPS {
                best = Projection {
                    arclen: self.cum[i] + t * (self.cum[i + 1] - self.cum[i]),
                    dist: d,
                };
            }
        }
        best
    }

    /// Like [`Polyline::project`] but only considers arc lengths `>= from`,
    /// so a traversal frontier can never move backwards along the itinerary.
    pub fn project_from(&self, p: Point, from: f64) -> Projection {
        let from = from.clamp(0.0, self.length());
        if self.points.len() == 1 || from >= self.length() {
            return Projection {
                arclen: self.length(),
                dist: self.end().dist(p),
            };
        }
        let mut best = Projection {
            arclen: from,
            dist: self.point_at(from).dist(p),
        };
        for (i, seg) in self.segments().enumerate() {
            if self.cum[i + 1] < from {
                continue;
            }
            let t = seg.closest_t(p);
            let mut arclen = self.cum[i] + t * (self.cum[i + 1] - self.cum[i]);
            let q = if arclen < from {
                arclen = from;
                self.point_at(from)
            } else {
                seg.a.lerp(seg.b, t)
            };
            let d = q.dist(p);
            if d < best.dist - crate::EPS {
                best = Projection { arclen, dist: d };
            }
        }
        best
    }

    /// Minimum distance from `p` to the polyline.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.project(p).dist
    }

    /// Concatenate another polyline onto the end of this one.
    pub fn extend(&mut self, other: &Polyline) {
        let mut acc = self.length();
        let mut last = self.end();
        for &p in other.waypoints() {
            if last.dist_sq(p) > 0.0 {
                acc += last.dist(p);
                self.points.push(p);
                self.cum.push(acc);
                last = p;
            }
        }
    }
}

/// Result of projecting a point onto a [`Polyline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// Arc length of the closest polyline point.
    pub arclen: f64,
    /// Distance from the query point to that polyline point.
    pub dist: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new([
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
    }

    #[test]
    fn length_and_endpoints() {
        let p = l_shape();
        assert!((p.length() - 20.0).abs() < 1e-12);
        assert_eq!(p.start(), Point::new(0.0, 0.0));
        assert_eq!(p.end(), Point::new(10.0, 10.0));
        assert_eq!(p.segments().count(), 2);
    }

    #[test]
    fn point_at_interpolates_across_joints() {
        let p = l_shape();
        assert_eq!(p.point_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.point_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.point_at(15.0), Point::new(10.0, 5.0));
        assert_eq!(p.point_at(-3.0), p.start());
        assert_eq!(p.point_at(99.0), p.end());
    }

    #[test]
    fn duplicate_waypoints_are_dropped() {
        let p = Polyline::new([
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
        ]);
        assert_eq!(p.waypoints().len(), 2);
        assert!((p.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_polyline() {
        let p = Polyline::new([Point::new(2.0, 3.0)]);
        assert_eq!(p.length(), 0.0);
        assert_eq!(p.point_at(5.0), Point::new(2.0, 3.0));
        let proj = p.project(Point::new(2.0, 7.0));
        assert_eq!(proj.arclen, 0.0);
        assert!((proj.dist - 4.0).abs() < 1e-12);
    }

    #[test]
    fn projection_finds_closest_segment() {
        let p = l_shape();
        // Closest to the vertical segment.
        let proj = p.project(Point::new(12.0, 5.0));
        assert!((proj.arclen - 15.0).abs() < 1e-9);
        assert!((proj.dist - 2.0).abs() < 1e-9);
        // Closest to the horizontal segment.
        let proj = p.project(Point::new(5.0, -1.0));
        assert!((proj.arclen - 5.0).abs() < 1e-9);
        assert!((proj.dist - 1.0).abs() < 1e-9);
    }

    #[test]
    fn project_from_is_monotone() {
        let p = l_shape();
        // A point near the start, but with the frontier already past it.
        let proj = p.project_from(Point::new(1.0, 1.0), 12.0);
        assert!(proj.arclen >= 12.0);
        // Without the floor it would project near arclen 1.
        let free = p.project(Point::new(1.0, 1.0));
        assert!(free.arclen < 2.0);
    }

    #[test]
    fn extend_concatenates() {
        let mut p = Polyline::new([Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let q = Polyline::new([Point::new(1.0, 0.0), Point::new(1.0, 2.0)]);
        p.extend(&q);
        assert!((p.length() - 3.0).abs() < 1e-12);
        assert_eq!(p.end(), Point::new(1.0, 2.0));
        assert_eq!(p.waypoints().len(), 3);
    }
}
