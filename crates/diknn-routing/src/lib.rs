//! GPSR — Greedy Perimeter Stateless Routing (Karp & Kung, MOBICOM 2000).
//!
//! All three protocols in this reproduction route query messages
//! geographically: DIKNN's routing phase sends the query from the sink
//! toward the query point `q` (§4.1), KPT routes to the home node, Peer-tree
//! unicasts between clusterheads, and every protocol routes results back to
//! the sink. The paper states "any geographic face routing protocol is
//! compatible with DIKNN" and uses GPSR in the evaluation.
//!
//! This implementation is a *pure routing planner*: [`plan_next_hop`] maps
//! (my position, my neighbour table, packet header) to a routing decision,
//! with all mutable state carried in the [`GpsrHeader`] that travels inside
//! protocol messages. That keeps GPSR stateless at the nodes (its defining
//! property) and makes the planner unit-testable without a simulator.
//!
//! Covered:
//! * greedy forwarding to the neighbour closest to the destination;
//! * perimeter mode on a Gabriel-graph planarization of the local
//!   neighbourhood, right-hand rule, with recovery back to greedy as soon
//!   as a node closer than the perimeter entry point is reached;
//! * loop/TTL termination: a perimeter walk that re-traverses its first
//!   edge (destination unreachable) terminates at the current node, which
//!   is the standard "home node" behaviour for location-addressed packets.
//!
//! Simplification vs. the full paper protocol: we do not implement the
//! face-change bookkeeping (`Lf` intersection points); the first-edge loop
//! rule plus greedy recovery is the GFG-style variant, which is sufficient
//! on the connected networks the evaluation uses and fails safe (terminates
//! at a nearby node) otherwise.
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

mod planar;

pub use planar::gabriel_neighbors;

use diknn_sim::SimTime;

/// Filter a neighbour snapshot down to entries whose link is predicted to
/// still exist: the advertised position plus the worst-case drift since the
/// beacon (`(now − heard_at) · (their speed + my speed)`) must stay inside
/// the radio range.
///
/// Under mobility, table entries are up to a beacon interval stale; blindly
/// unicasting to a departed neighbour burns a full ARQ cycle. All protocols
/// in this reproduction pre-filter their unicast targets with this
/// predictor, falling back to the raw table when it empties (better a risky
/// link than none).
pub fn reliable_neighbors(
    my_pos: Point,
    my_speed: f64,
    now: SimTime,
    neighbors: &[Neighbor],
    radio_range: f64,
) -> Vec<Neighbor> {
    let filtered: Vec<Neighbor> = neighbors
        .iter()
        .filter(|n| {
            let staleness = (now - n.heard_at).as_secs_f64();
            let drift = staleness * (n.speed + my_speed);
            n.position.dist(my_pos) + drift <= radio_range
        })
        .copied()
        .collect();
    if filtered.is_empty() {
        neighbors.to_vec()
    } else {
        filtered
    }
}

use diknn_geom::Point;
use diknn_sim::{Neighbor, NodeId};

/// Routing mode carried in the packet header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpsrMode {
    /// Greedy geographic forwarding.
    Greedy,
    /// Perimeter (face) traversal entered at a local minimum.
    Perimeter {
        /// Distance from the perimeter entry node to the destination;
        /// greedy resumes at any node strictly closer than this.
        entry_dist: f64,
        /// First edge taken on the perimeter (from, to); re-traversing it
        /// means the walk looped and the destination is unreachable.
        first_edge: (NodeId, NodeId),
    },
}

/// The GPSR state that travels with a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsrHeader {
    /// Geographic destination.
    pub dest: Point,
    pub mode: GpsrMode,
    /// Hops taken so far.
    pub hops: u32,
    /// Remaining hop budget; the packet terminates where it is when this
    /// reaches zero (fail-safe against pathological topologies).
    pub ttl: u32,
    /// Smallest *true* distance to the destination observed at any node the
    /// packet has visited. With beacon-stale tables, greedy can cycle
    /// between nodes that each believe another is closer; a node that does
    /// not improve on this bound is treated as a local minimum, which cuts
    /// such cycles after one lap.
    pub best_dist: f64,
}

diknn_snap::snap_enum!(GpsrMode {
    0 => Greedy,
    1 => Perimeter { entry_dist, first_edge },
});
diknn_snap::snap_struct!(GpsrHeader {
    dest,
    mode,
    hops,
    ttl,
    best_dist
});

impl GpsrHeader {
    /// A fresh greedy header toward `dest` with the default TTL.
    pub fn new(dest: Point) -> Self {
        GpsrHeader {
            dest,
            mode: GpsrMode::Greedy,
            hops: 0,
            ttl: 128,
            best_dist: f64::INFINITY,
        }
    }

    pub fn with_ttl(dest: Point, ttl: u32) -> Self {
        GpsrHeader {
            ttl,
            ..Self::new(dest)
        }
    }
}

/// Decision produced by [`plan_next_hop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteStep {
    /// Forward to this neighbour with the updated header.
    Forward { next: NodeId, header: GpsrHeader },
    /// This node terminates the route: it is the local minimum for the
    /// destination (the "home node" for a location-addressed packet), or
    /// the TTL expired, or a perimeter loop proved the destination
    /// unreachable.
    Arrived,
    /// No usable neighbour at all (isolated node).
    NoRoute,
}

/// Decide the next hop at node `me` for a packet with `header`.
///
/// * `prev` — id and position of the node the packet arrived from (None at
///   the originator). The position feeds the right-hand rule; the id is
///   excluded from greedy choices — with beacon-stale tables two nodes can
///   each believe the other is closer and ping-pong the packet, so greedy
///   never hands a packet straight back.
/// * `exclude` — neighbours to skip (e.g. ones that just failed at the link
///   layer); pass `&[]` normally.
/// * `home_radius` — location-addressed termination rule: a greedy local
///   minimum within this distance of the destination *is* the home node and
///   the route ends there instead of probing the face perimeter. Protocols
///   pass the radio range `r`; pass `0.0` to always probe voids.
pub fn plan_next_hop(
    me: NodeId,
    my_pos: Point,
    header: &GpsrHeader,
    neighbors: &[Neighbor],
    prev: Option<(NodeId, Point)>,
    exclude: &[NodeId],
    home_radius: f64,
) -> RouteStep {
    if header.ttl == 0 {
        return Arrived_or_noroute(neighbors, exclude);
    }
    let usable: Vec<&Neighbor> = neighbors
        .iter()
        .filter(|n| n.id != me && !exclude.contains(&n.id))
        .collect();
    if usable.is_empty() {
        return RouteStep::NoRoute;
    }
    let my_dist = my_pos.dist(header.dest);
    let prev_pos = prev.map(|(_, p)| p);

    match header.mode {
        GpsrMode::Greedy => {
            // Stagnation rule: this node is no closer than the best point
            // the packet has already reached — stale tables are cycling it.
            // Treat as a local minimum.
            let stagnant = my_dist >= header.best_dist - 1e-9;
            // Closest neighbour to the destination, if strictly closer than
            // this node. Never straight back to the previous hop.
            let candidate = usable
                .iter()
                .filter(|n| prev.map(|(id, _)| id) != Some(n.id))
                .min_by(|a, b| {
                    a.position
                        .dist(header.dest)
                        .total_cmp(&b.position.dist(header.dest))
                        .then(a.id.cmp(&b.id))
                })
                .filter(|n| n.position.dist(header.dest) < my_dist);
            if let Some(best) = candidate.filter(|_| !stagnant) {
                return RouteStep::Forward {
                    next: best.id,
                    header: GpsrHeader {
                        hops: header.hops + 1,
                        ttl: header.ttl - 1,
                        best_dist: header.best_dist.min(my_dist),
                        ..*header
                    },
                };
            }
            // Local minimum. If the destination is already inside this
            // node's radio disc no other node can be meaningfully closer:
            // this is the home node.
            if my_dist <= home_radius {
                return RouteStep::Arrived;
            }
            // Otherwise enter perimeter mode on the planar subgraph.
            let planar = gabriel_neighbors(my_pos, &usable);
            if planar.is_empty() {
                return RouteStep::Arrived;
            }
            // First perimeter edge: right-hand rule relative to the
            // direction toward the destination.
            let Some(next) = right_hand_next(my_pos, header.dest, &planar, None) else {
                return RouteStep::Arrived;
            };
            RouteStep::Forward {
                next: next.id,
                header: GpsrHeader {
                    mode: GpsrMode::Perimeter {
                        entry_dist: my_dist,
                        first_edge: (me, next.id),
                    },
                    hops: header.hops + 1,
                    ttl: header.ttl - 1,
                    ..*header
                },
            }
        }
        GpsrMode::Perimeter {
            entry_dist,
            first_edge,
        } => {
            // Progress rule: closer than the entry point → back to greedy.
            if my_dist < entry_dist {
                let greedy_header = GpsrHeader {
                    mode: GpsrMode::Greedy,
                    ..*header
                };
                return plan_next_hop(
                    me,
                    my_pos,
                    &greedy_header,
                    neighbors,
                    prev,
                    exclude,
                    home_radius,
                );
            }
            let planar = gabriel_neighbors(my_pos, &usable);
            if planar.is_empty() {
                return RouteStep::Arrived;
            }
            let Some(next) = right_hand_next(my_pos, header.dest, &planar, prev_pos) else {
                return RouteStep::Arrived;
            };
            // Loop detection: we are about to re-traverse the first edge.
            if (me, next.id) == first_edge {
                return RouteStep::Arrived;
            }
            RouteStep::Forward {
                next: next.id,
                header: GpsrHeader {
                    hops: header.hops + 1,
                    ttl: header.ttl - 1,
                    ..*header
                },
            }
        }
    }
}

#[allow(non_snake_case)]
fn Arrived_or_noroute(neighbors: &[Neighbor], exclude: &[NodeId]) -> RouteStep {
    if neighbors.iter().any(|n| !exclude.contains(&n.id)) {
        RouteStep::Arrived
    } else {
        RouteStep::NoRoute
    }
}

/// Right-hand rule: the next edge is the first one counter-clockwise about
/// this node from the reference direction (the reversed incoming edge, or
/// the direction toward the destination when entering perimeter mode).
fn right_hand_next<'a>(
    my_pos: Point,
    dest: Point,
    planar: &[&'a Neighbor],
    prev_pos: Option<Point>,
) -> Option<&'a Neighbor> {
    let ref_angle = match prev_pos {
        Some(p) if p != my_pos => my_pos.angle_to(p),
        _ => my_pos.angle_to(dest),
    };
    planar
        .iter()
        .filter(|n| n.position != my_pos)
        .min_by(|a, b| {
            let sa = sweep_key(my_pos, ref_angle, a.position);
            let sb = sweep_key(my_pos, ref_angle, b.position);
            sa.total_cmp(&sb).then(a.id.cmp(&b.id))
        })
        .copied()
}

/// Counter-clockwise sweep from the reference direction, with the exact
/// reference direction itself (the node we came from) placed *last*
/// so it is only chosen when it is the sole planar option.
fn sweep_key(my_pos: Point, ref_angle: f64, to: Point) -> f64 {
    let sweep = diknn_geom::angle::ccw_sweep(ref_angle, my_pos.angle_to(to));
    if sweep <= 1e-12 {
        diknn_geom::TAU
    } else {
        sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diknn_sim::SimTime;

    fn nb(id: u32, x: f64, y: f64) -> Neighbor {
        Neighbor {
            id: NodeId(id),
            position: Point::new(x, y),
            speed: 0.0,
            heard_at: SimTime::ZERO,
        }
    }

    #[test]
    fn greedy_picks_closest_to_dest() {
        let header = GpsrHeader::new(Point::new(100.0, 0.0));
        let nbs = vec![nb(1, 10.0, 0.0), nb(2, 15.0, 0.0), nb(3, 5.0, 10.0)];
        let step = plan_next_hop(NodeId(0), Point::ORIGIN, &header, &nbs, None, &[], 0.0);
        match step {
            RouteStep::Forward { next, header } => {
                assert_eq!(next, NodeId(2));
                assert_eq!(header.hops, 1);
                assert_eq!(header.mode, GpsrMode::Greedy);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn local_minimum_with_no_planar_neighbors_terminates() {
        let header = GpsrHeader::new(Point::new(0.0, 0.0));
        // This node is at the destination already; all neighbours farther.
        let nbs = vec![nb(1, 10.0, 0.0)];
        let step = plan_next_hop(
            NodeId(0),
            Point::new(1.0, 0.0),
            &header,
            &nbs,
            None,
            &[],
            0.0,
        );
        // Neighbour 1 is farther from dest; perimeter starts.
        match step {
            RouteStep::Forward { header, .. } => {
                assert!(matches!(header.mode, GpsrMode::Perimeter { .. }));
            }
            RouteStep::Arrived => {}
            RouteStep::NoRoute => panic!("has a neighbour"),
        }
    }

    #[test]
    fn no_neighbors_is_noroute() {
        let header = GpsrHeader::new(Point::new(100.0, 0.0));
        let step = plan_next_hop(NodeId(0), Point::ORIGIN, &header, &[], None, &[], 0.0);
        assert_eq!(step, RouteStep::NoRoute);
    }

    #[test]
    fn exclusion_skips_failed_neighbor() {
        let header = GpsrHeader::new(Point::new(100.0, 0.0));
        let nbs = vec![nb(1, 15.0, 0.0), nb(2, 10.0, 0.0)];
        let step = plan_next_hop(
            NodeId(0),
            Point::ORIGIN,
            &header,
            &nbs,
            None,
            &[NodeId(1)],
            0.0,
        );
        match step {
            RouteStep::Forward { next, .. } => assert_eq!(next, NodeId(2)),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn ttl_zero_arrives_in_place() {
        let mut header = GpsrHeader::new(Point::new(100.0, 0.0));
        header.ttl = 0;
        let nbs = vec![nb(1, 10.0, 0.0)];
        let step = plan_next_hop(NodeId(0), Point::ORIGIN, &header, &nbs, None, &[], 0.0);
        assert_eq!(step, RouteStep::Arrived);
    }

    #[test]
    fn perimeter_recovers_to_greedy_when_closer() {
        let header = GpsrHeader {
            dest: Point::new(100.0, 0.0),
            mode: GpsrMode::Perimeter {
                entry_dist: 90.0,
                first_edge: (NodeId(9), NodeId(8)),
            },
            hops: 3,
            ttl: 60,
            best_dist: f64::INFINITY,
        };
        // This node is at distance 80 (< entry 90): greedy resumes.
        let nbs = vec![nb(1, 30.0, 0.0)];
        let step = plan_next_hop(
            NodeId(0),
            Point::new(20.0, 0.0),
            &header,
            &nbs,
            Some((NodeId(99), Point::new(15.0, 5.0))),
            &[],
            0.0,
        );
        match step {
            RouteStep::Forward { next, header } => {
                assert_eq!(next, NodeId(1));
                assert_eq!(header.mode, GpsrMode::Greedy);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn perimeter_loop_terminates() {
        let header = GpsrHeader {
            dest: Point::new(100.0, 100.0),
            mode: GpsrMode::Perimeter {
                entry_dist: 10.0,
                first_edge: (NodeId(0), NodeId(1)),
            },
            hops: 5,
            ttl: 60,
            best_dist: f64::INFINITY,
        };
        // Only planar neighbour is 1 and we'd re-traverse the first edge.
        let nbs = vec![nb(1, 10.0, 0.0)];
        let step = plan_next_hop(
            NodeId(0),
            Point::new(0.0, 0.0),
            &header,
            &nbs,
            Some((NodeId(1), Point::new(10.0, 0.0))),
            &[],
            0.0,
        );
        assert_eq!(step, RouteStep::Arrived);
    }
}

#[cfg(test)]
mod reliability_tests {
    use super::*;
    use diknn_sim::SimTime;

    fn nb(id: u32, x: f64, speed: f64, heard_s: f64) -> Neighbor {
        Neighbor {
            id: NodeId(id),
            position: Point::new(x, 0.0),
            speed,
            heard_at: SimTime::from_secs_f64(heard_s),
        }
    }

    #[test]
    fn fresh_close_neighbors_survive() {
        let now = SimTime::from_secs_f64(10.0);
        let nbs = vec![nb(1, 5.0, 10.0, 9.9), nb(2, 19.0, 10.0, 9.0)];
        let kept = reliable_neighbors(Point::ORIGIN, 0.0, now, &nbs, 20.0);
        // Neighbor 1: 5 + 0.1×10 = 6 ≤ 20 ✓. Neighbor 2: 19 + 1×10 = 29 ✗.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, NodeId(1));
    }

    #[test]
    fn falls_back_to_raw_table_when_all_risky() {
        let now = SimTime::from_secs_f64(10.0);
        let nbs = vec![nb(1, 19.0, 30.0, 8.0)];
        let kept = reliable_neighbors(Point::ORIGIN, 10.0, now, &nbs, 20.0);
        assert_eq!(kept.len(), 1, "must not leave the caller stranded");
    }

    #[test]
    fn own_speed_counts_toward_drift() {
        let now = SimTime::from_secs_f64(1.0);
        let nbs = vec![nb(1, 15.0, 0.0, 0.0), nb(2, 3.0, 0.0, 0.0)];
        // One second stale; my speed 10 m/s: 15 + 10 > 20 drops id 1.
        let kept = reliable_neighbors(Point::ORIGIN, 10.0, now, &nbs, 20.0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, NodeId(2));
    }
}
