//! Local planarization of the neighbourhood graph.
//!
//! Perimeter mode must run on a planar subgraph or the right-hand rule can
//! jump between crossing edges and loop forever. GPSR planarizes with the
//! Gabriel graph (GG) or the Relative Neighborhood Graph (RNG) computed
//! *locally*: node `u` keeps edge `(u, v)` iff no witness `w` among `u`'s
//! known neighbours violates the criterion.

use diknn_geom::Point;
use diknn_sim::Neighbor;

/// Neighbours kept by the Gabriel criterion: `(u, v)` survives iff no
/// witness `w` lies strictly inside the circle with diameter `uv`
/// (`|mw|² < (|uv|/2)²`, `m` the midpoint).
pub fn gabriel_neighbors<'a>(u: Point, neighbors: &[&'a Neighbor]) -> Vec<&'a Neighbor> {
    neighbors
        .iter()
        .filter(|v| {
            let m = u.midpoint(v.position);
            let rad_sq = u.dist_sq(v.position) / 4.0;
            !neighbors
                .iter()
                .any(|w| w.id != v.id && m.dist_sq(w.position) < rad_sq - 1e-12)
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diknn_sim::{NodeId, SimTime};

    fn nb(id: u32, x: f64, y: f64) -> Neighbor {
        Neighbor {
            id: NodeId(id),
            position: Point::new(x, y),
            speed: 0.0,
            heard_at: SimTime::ZERO,
        }
    }

    #[test]
    fn witness_inside_diameter_circle_removes_edge() {
        let u = Point::ORIGIN;
        let far = nb(1, 10.0, 0.0);
        let witness = nb(2, 5.0, 1.0); // well inside the circle over (u, far)
        let nbs = vec![&far, &witness];
        let kept = gabriel_neighbors(u, &nbs);
        let ids: Vec<u32> = kept.iter().map(|n| n.id.0).collect();
        // Edge to 1 is removed (witness 2); edge to 2 survives.
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn no_witness_keeps_all_edges() {
        let u = Point::ORIGIN;
        let a = nb(1, 10.0, 0.0);
        let b = nb(2, 0.0, 10.0);
        let nbs = vec![&a, &b];
        let kept = gabriel_neighbors(u, &nbs);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn boundary_witness_does_not_remove_edge() {
        // Witness exactly on the circle boundary is not "strictly inside".
        let u = Point::ORIGIN;
        let v = nb(1, 10.0, 0.0);
        let w = nb(2, 5.0, 5.0); // |mw| = 5 = radius
        let nbs = vec![&v, &w];
        let kept = gabriel_neighbors(u, &nbs);
        assert!(kept.iter().any(|n| n.id == NodeId(1)));
    }

    #[test]
    fn long_edge_with_interior_witness_is_dropped() {
        // Edge u-(10,10) has witness (6,4) strictly inside its diameter
        // circle, so it is dropped; the short edge to the witness survives.
        let u = Point::ORIGIN;
        let diag = nb(1, 10.0, 10.0);
        let witness = nb(2, 6.0, 4.0);
        let nbs = vec![&diag, &witness];
        let kept = gabriel_neighbors(u, &nbs);
        let ids: Vec<u32> = kept.iter().map(|n| n.id.0).collect();
        assert_eq!(ids, vec![2]);
    }

    #[test]
    fn square_diagonal_is_boundary_case_and_kept() {
        // In a perfect unit square the corner witnesses lie exactly on the
        // diameter circle of the diagonal — the Gabriel criterion is
        // strict, so the diagonal survives.
        let u = Point::ORIGIN;
        let right = nb(1, 10.0, 0.0);
        let up = nb(2, 0.0, 10.0);
        let diag = nb(3, 10.0, 10.0);
        let nbs = vec![&right, &up, &diag];
        let kept = gabriel_neighbors(u, &nbs);
        assert_eq!(kept.len(), 3);
    }
}
