//! Perimeter-mode edge cases: degenerate geometry into the planarizer and
//! full greedy→perimeter→greedy recovery walks over explicit topologies.
//!
//! `routing_paths.rs` covers random connected networks statistically; the
//! point here is *constructed* worst cases — collinear and duplicate
//! points (witness exactly on the Gabriel circle), a concave wall that
//! forces a face walk, and a ring around an unreachable destination.

use diknn_geom::Point;
use diknn_routing::{gabriel_neighbors, plan_next_hop, GpsrHeader, GpsrMode, RouteStep};
use diknn_sim::{Neighbor, NodeId, SimTime};

const RADIO_RANGE: f64 = 15.0;

fn nb(id: u32, x: f64, y: f64) -> Neighbor {
    Neighbor {
        id: NodeId(id),
        position: Point::new(x, y),
        speed: 0.0,
        heard_at: SimTime::ZERO,
    }
}

// ---------- planarization degeneracies --------------------------------

#[test]
fn collinear_witness_drops_the_far_edge() {
    // u, w, v collinear: w sits strictly inside the circle over (u, v),
    // so only the near edge survives — the face walk never shortcuts
    // across a node it should route through.
    let u = Point::ORIGIN;
    let far = nb(1, 10.0, 0.0);
    let near = nb(2, 5.0, 0.0);
    let nbs = vec![&far, &near];
    let ids: Vec<u32> = gabriel_neighbors(u, &nbs).iter().map(|n| n.id.0).collect();
    assert_eq!(ids, vec![2]);
}

#[test]
fn collinear_chain_keeps_only_nearest() {
    let u = Point::ORIGIN;
    let a = nb(1, 4.0, 0.0);
    let b = nb(2, 8.0, 0.0);
    let c = nb(3, 12.0, 0.0);
    let nbs = vec![&a, &b, &c];
    let ids: Vec<u32> = gabriel_neighbors(u, &nbs).iter().map(|n| n.id.0).collect();
    assert_eq!(ids, vec![1], "chain must planarize to the nearest link");
}

#[test]
fn duplicate_point_neighbors_both_survive() {
    // Two beacons claiming the same position (stale table during a crash
    // + re-placement): the duplicate witness lies exactly ON the circle
    // (|mw| = radius), the strict criterion keeps both, and ties stay
    // deterministic downstream via the id order.
    let u = Point::ORIGIN;
    let a = nb(1, 5.0, 5.0);
    let b = nb(2, 5.0, 5.0);
    let nbs = vec![&a, &b];
    let kept = gabriel_neighbors(u, &nbs);
    assert_eq!(kept.len(), 2);
}

#[test]
fn neighbor_at_own_position_does_not_break_planning() {
    // A neighbour co-located with this node (zero-length edge) must be
    // survivable: the planner filters it from the right-hand sweep rather
    // than dividing an angle by a zero-length vector.
    let header = GpsrHeader::new(Point::new(100.0, 0.0));
    let me = Point::new(10.0, 0.0);
    let nbs = vec![nb(1, 10.0, 0.0), nb(2, 20.0, 0.0)];
    let step = plan_next_hop(NodeId(0), me, &header, &nbs, None, &[], 0.0);
    match step {
        RouteStep::Forward { next, .. } => assert_eq!(next, NodeId(2)),
        other => panic!("expected forward to the real neighbour, got {other:?}"),
    }
}

#[test]
fn only_colocated_neighbor_terminates_cleanly() {
    // Pathological: the co-located node is the ONLY neighbour. Greedy has
    // no progress, the planar sweep has no usable edge — the route must
    // end here, not loop or panic.
    let header = GpsrHeader::new(Point::new(100.0, 0.0));
    let me = Point::new(10.0, 0.0);
    let nbs = vec![nb(1, 10.0, 0.0)];
    let step = plan_next_hop(NodeId(0), me, &header, &nbs, None, &[], 0.0);
    assert_eq!(step, RouteStep::Arrived);
}

// ---------- full walks over constructed topologies ---------------------

/// Walk a packet over a static topology until it stops; returns the node
/// ids visited (starting node first) and whether perimeter mode was ever
/// entered / left again.
fn walk(nodes: &[Point], start: usize, dest: Point, home_radius: f64) -> (Vec<usize>, bool, bool) {
    let neighbor_table = |of: usize| -> Vec<Neighbor> {
        nodes
            .iter()
            .enumerate()
            .filter(|&(i, p)| i != of && p.dist(nodes[of]) <= RADIO_RANGE)
            .map(|(i, p)| nb(i as u32, p.x, p.y))
            .collect()
    };
    let mut header = GpsrHeader::new(dest);
    let mut cur = start;
    let mut prev: Option<(NodeId, Point)> = None;
    let mut visited = vec![start];
    let mut entered_perimeter = false;
    let mut recovered_to_greedy = false;
    for _ in 0..nodes.len() * 4 {
        let step = plan_next_hop(
            NodeId(cur as u32),
            nodes[cur],
            &header,
            &neighbor_table(cur),
            prev,
            &[],
            home_radius,
        );
        match step {
            RouteStep::Forward { next, header: h } => {
                match (header.mode, h.mode) {
                    (GpsrMode::Greedy, GpsrMode::Perimeter { .. }) => entered_perimeter = true,
                    (GpsrMode::Perimeter { .. }, GpsrMode::Greedy) => recovered_to_greedy = true,
                    _ => {}
                }
                prev = Some((NodeId(cur as u32), nodes[cur]));
                header = h;
                cur = next.index();
                visited.push(cur);
            }
            RouteStep::Arrived => return (visited, entered_perimeter, recovered_to_greedy),
            RouteStep::NoRoute => panic!("isolated node mid-route at {cur}"),
        }
    }
    panic!("route did not terminate: {visited:?}");
}

#[test]
fn wall_forces_perimeter_then_recovers_to_greedy() {
    // A straight corridor toward the destination blocked by a concave
    // wall; the only way around climbs *away* from the destination first.
    // Greedy must stall at the wall foot, perimeter mode must carry the
    // packet over the top, and greedy must resume on the far side.
    let nodes: Vec<Point> = [
        (0.0, 0.0),   // 0: source
        (10.0, 0.0),  // 1
        (20.0, 0.0),  // 2
        (30.0, 0.0),  // 3: wall foot (local minimum)
        (24.0, 12.0), // 4: climbs backwards
        (30.0, 24.0), // 5
        (42.0, 30.0), // 6: over the top (progress resumes here)
        (54.0, 24.0), // 7
        (60.0, 12.0), // 8
        (60.0, 0.0),  // 9
        (70.0, 0.0),  // 10
        (80.0, 0.0),  // 11
        (90.0, 0.0),  // 12
        (100.0, 0.0), // 13: destination node
    ]
    .iter()
    .map(|&(x, y)| Point::new(x, y))
    .collect();
    let dest = nodes[13];

    let (visited, entered, recovered) = walk(&nodes, 0, dest, RADIO_RANGE);
    assert!(entered, "route never entered perimeter mode: {visited:?}");
    assert!(recovered, "route never recovered to greedy: {visited:?}");
    assert_eq!(
        *visited.last().expect("nonempty"),
        13,
        "route must reach the destination node: {visited:?}"
    );
    assert!(
        visited.contains(&3) && visited.contains(&4),
        "route must stall at the wall foot and climb it: {visited:?}"
    );
}

#[test]
fn ring_around_unreachable_destination_terminates() {
    // Sparse ring, destination in the (empty) middle and farther than any
    // radio disc: every node is a local minimum, the perimeter walk laps
    // the ring once, and the first-edge loop rule stops it — no infinite
    // face walk, no TTL exhaustion needed.
    let n = 16;
    let ring: Vec<Point> = (0..n)
        .map(|i| {
            let a = diknn_geom::TAU * i as f64 / n as f64;
            Point::new(50.0 + 30.0 * a.cos(), 50.0 + 30.0 * a.sin())
        })
        .collect();
    let dest = Point::new(50.0, 50.0);

    let (visited, entered, _) = walk(&ring, 0, dest, 0.0);
    assert!(entered, "void probe must enter perimeter mode");
    assert!(
        visited.len() <= n + 2,
        "walk should stop after at most one lap: {visited:?}"
    );
}
