//! End-to-end route walks over static topologies (no simulator): repeatedly
//! apply the planner until the packet terminates, checking loop-freedom and
//! delivery quality.

use diknn_geom::{Point, Rect};
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_sim::{Neighbor, NodeId, SimTime};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Walk a packet from `start` toward `dest` over the given static nodes
/// with unit-disc connectivity of `range`. Returns the terminal node and
/// hop count, or None for NoRoute.
fn walk(nodes: &[Point], range: f64, start: usize, dest: Point) -> Option<(usize, u32)> {
    let neighbor_tables: Vec<Vec<Neighbor>> = nodes
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            nodes
                .iter()
                .enumerate()
                .filter(|&(j, &q)| j != i && p.dist(q) <= range)
                .map(|(j, &q)| Neighbor {
                    id: NodeId(j as u32),
                    position: q,
                    speed: 0.0,
                    heard_at: SimTime::ZERO,
                })
                .collect()
        })
        .collect();

    let mut at = start;
    let mut prev: Option<(NodeId, Point)> = None;
    let mut header = GpsrHeader::new(dest);
    let mut hops = 0u32;
    loop {
        match plan_next_hop(
            NodeId(at as u32),
            nodes[at],
            &header,
            &neighbor_tables[at],
            prev,
            &[],
            20.0,
        ) {
            RouteStep::Forward { next, header: h } => {
                prev = Some((NodeId(at as u32), nodes[at]));
                at = next.index();
                header = h;
                hops += 1;
                assert!(hops <= 500, "runaway route");
            }
            RouteStep::Arrived => return Some((at, hops)),
            RouteStep::NoRoute => return None,
        }
    }
}

#[test]
fn straight_line_chain_routes_end_to_end() {
    let nodes: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 15.0, 0.0)).collect();
    let (end, hops) = walk(&nodes, 20.0, 0, Point::new(135.0, 0.0)).unwrap();
    assert_eq!(end, 9);
    assert_eq!(hops, 9);
}

#[test]
fn terminates_at_closest_node_to_offgrid_destination() {
    let nodes: Vec<Point> = (0..10).map(|i| Point::new(i as f64 * 15.0, 0.0)).collect();
    // Destination between nodes 5 and 6, slightly nearer 5.
    let dest = Point::new(81.0, 3.0);
    let (end, _) = walk(&nodes, 20.0, 0, dest).unwrap();
    assert_eq!(end, 5);
}

#[test]
fn isolated_start_has_no_route() {
    let nodes = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
    assert_eq!(walk(&nodes, 20.0, 0, Point::new(100.0, 0.0)), None);
}

#[test]
fn perimeter_mode_escapes_a_void() {
    // A "C"-shaped corridor: greedy from the left tip toward the right tip
    // hits the void; perimeter walks around the C.
    let mut nodes = Vec::new();
    // Bottom arm.
    for i in 0..8 {
        nodes.push(Point::new(i as f64 * 12.0, 0.0));
    }
    // Right column.
    for j in 1..8 {
        nodes.push(Point::new(84.0, j as f64 * 12.0));
    }
    // Top arm (leftward).
    for i in (0..8).rev() {
        nodes.push(Point::new(i as f64 * 12.0, 84.0));
    }
    let start = 0;
    // Destination: just above the start, across the void (start of top arm).
    let dest = Point::new(0.0, 84.0);
    let (end, hops) = walk(&nodes, 15.0, start, dest).unwrap();
    assert_eq!(nodes[end], dest, "should reach the node across the void");
    // The route must have gone the long way round (≥ 20 hops).
    assert!(hops >= 20, "suspiciously short route: {hops} hops");
}

#[test]
fn dense_uniform_network_reaches_global_home_node() {
    // On a dense uniform network greedy almost always reaches the true
    // closest node to the destination. Check a large sample.
    let field = Rect::new(0.0, 0.0, 115.0, 115.0);
    let mut ok = 0;
    let mut total = 0;
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = diknn_mobility::placement::uniform(field, 200, &mut rng);
        for qseed in 0..5 {
            let dest = Point::new(
                10.0 + (qseed as f64 * 23.0) % 95.0,
                10.0 + (qseed as f64 * 37.0) % 95.0,
            );
            let Some((end, _)) = walk(&nodes, 20.0, 0, dest) else {
                continue;
            };
            let best = (0..nodes.len())
                .min_by(|&a, &b| {
                    nodes[a]
                        .dist(dest)
                        .partial_cmp(&nodes[b].dist(dest))
                        .unwrap()
                })
                .unwrap();
            total += 1;
            if end == best {
                ok += 1;
            } else {
                // Accept near misses: terminal within one radio range of
                // the optimum (GPSR guarantees local optimality only).
                assert!(
                    nodes[end].dist(dest) <= nodes[best].dist(dest) + 20.0,
                    "terminated far from the home node"
                );
            }
        }
    }
    assert!(
        ok as f64 >= 0.8 * total as f64,
        "only {ok}/{total} routes reached the exact home node"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Termination: any placement, any destination — the walk never
    /// exceeds the TTL-bounded hop budget and never panics.
    #[test]
    fn routing_always_terminates(
        seed in 0u64..1000,
        n in 2usize..120,
        dx in 0.0..115.0f64,
        dy in 0.0..115.0f64,
    ) {
        let field = Rect::new(0.0, 0.0, 115.0, 115.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = diknn_mobility::placement::uniform(field, n, &mut rng);
        let dest = Point::new(dx, dy);
        let _ = walk(&nodes, 20.0, 0, dest); // must not loop forever
    }

    /// Greedy progress: hop counts on connected line-of-sight routes are
    /// bounded by ~distance/minimum-progress.
    #[test]
    fn hop_count_reasonable_on_dense_networks(seed in 0u64..200) {
        let field = Rect::new(0.0, 0.0, 115.0, 115.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = diknn_mobility::placement::uniform(field, 250, &mut rng);
        let dest = Point::new(110.0, 110.0);
        if let Some((end, hops)) = walk(&nodes, 20.0, 0, dest) {
            // Straight-line distance ~155 m, range 20 m: a sane route is
            // well under 60 hops on a dense network.
            prop_assert!(hops < 60, "inflated route: {hops} hops");
            prop_assert!(nodes[end].dist(dest) < 25.0,
                "terminated {} m from dest", nodes[end].dist(dest));
        }
    }
}
