//! Deterministic snapshot serialization for the resident service mode.
//!
//! The simulator's restore-equivalence law (`run(2h) ≡ run(1h) + snapshot +
//! restore + run(1h)`, checked by flight-recorder bit-identity) needs a
//! byte format with no room for platform or library drift, so this crate
//! implements one by hand instead of pulling in serde:
//!
//! * every integer is fixed-width little-endian,
//! * every `f64` round-trips through [`f64::to_bits`] (NaN payloads and
//!   signed zeros survive exactly),
//! * every collection is length-prefixed,
//! * enums carry explicit one-byte tags chosen at the impl site (never
//!   derived from declaration order, so reordering variants cannot silently
//!   change the format).
//!
//! Two traits split the work: [`Snap`] for values the reader can build from
//! scratch, and [`SnapState`] for stateful objects (the simulator, the
//! protocol) whose static inputs — configs, mobility plans, closures — are
//! re-supplied by the caller at restore time and only the *mutable* state
//! travels through the snapshot.
//!
//! ## Format versioning rule
//!
//! A snapshot stream starts with [`MAGIC`] plus a `u32` format version
//! written by [`write_header`]. [`read_header`] rejects any mismatch:
//! snapshots are *not* forward- or backward-compatible, on purpose. Any
//! change to any `Snap`/`SnapState` impl that alters the byte stream must
//! bump the owning crate's snapshot version constant (the simulator's is
//! `diknn_sim::SNAP_VERSION`), invalidating old snapshots loudly rather
//! than misreading them quietly.

#![forbid(unsafe_code)]

use std::fmt;

/// Leading magic bytes of every snapshot stream.
pub const MAGIC: [u8; 4] = *b"DSNP";

/// Why a snapshot stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The reader ran off the end of the buffer.
    Eof,
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's format version does not match the reader's.
    BadVersion { found: u32, expected: u32 },
    /// An enum tag byte matched no variant of the named type.
    BadTag { ty: &'static str, tag: u8 },
    /// A decoded value violated a structural constraint.
    Corrupt(&'static str),
    /// Decoding finished with unread bytes left in the stream.
    TrailingBytes(usize),
    /// A fingerprint of a restore-time input (config, mobility plan)
    /// disagrees with the one recorded at snapshot time.
    FingerprintMismatch(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated: unexpected end of stream"),
            SnapError::BadMagic => write!(f, "not a snapshot stream (bad magic)"),
            SnapError::BadVersion { found, expected } => write!(
                f,
                "snapshot format version {found} does not match expected {expected}"
            ),
            SnapError::BadTag { ty, tag } => {
                write!(f, "unknown tag {tag} for enum {ty}")
            }
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::TrailingBytes(n) => {
                write!(f, "snapshot decoded with {n} trailing bytes unread")
            }
            SnapError::FingerprintMismatch(what) => write!(
                f,
                "restore input mismatch: {what} differs from the snapshotted run"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only byte sink for snapshot encoding.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        SnapWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over a snapshot byte stream.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the stream was consumed exactly.
    pub fn finish(self) -> Result<(), SnapError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(SnapError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn take_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.take_u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::Corrupt("length exceeds usize"))?;
        self.take(n)
    }

    /// Decode a length prefix, bounded by the bytes actually remaining so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let n = self.take_u64()?;
        let n = usize::try_from(n).map_err(|_| SnapError::Corrupt("length exceeds usize"))?;
        if n > self.remaining() {
            return Err(SnapError::Corrupt("length prefix exceeds remaining bytes"));
        }
        Ok(n)
    }
}

/// Write the stream header: [`MAGIC`] then the format version.
pub fn write_header(w: &mut SnapWriter, version: u32) {
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(version);
}

/// Check the stream header, rejecting any magic or version mismatch (the
/// snapshot versioning rule: no cross-version reads, ever).
pub fn read_header(r: &mut SnapReader<'_>, expected: u32) -> Result<(), SnapError> {
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let found = r.take_u32()?;
    if found != expected {
        return Err(SnapError::BadVersion { found, expected });
    }
    Ok(())
}

/// A value that can be encoded into and rebuilt from a snapshot stream.
pub trait Snap: Sized {
    fn snap(&self, w: &mut SnapWriter);
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// A stateful object whose mutable state travels through the snapshot while
/// its static inputs are re-supplied by the caller: `restore_state`
/// overwrites state in place on a freshly constructed instance.
pub trait SnapState {
    fn snap_state(&self, w: &mut SnapWriter);
    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

impl Snap for u8 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.take_u8()
    }
}

impl Snap for u32 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u32(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.take_u32()
    }
}

impl Snap for u64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.take_u64()
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        usize::try_from(r.take_u64()?).map_err(|_| SnapError::Corrupt("usize overflow"))
    }
}

impl Snap for i64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.take_u64()? as i64)
    }
}

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::BadTag { ty: "bool", tag }),
        }
    }
}

impl Snap for f64 {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_f64(*self);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.take_f64()
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_bytes(self.as_bytes());
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let bytes = r.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("invalid utf-8"))
    }
}

impl Snap for [u64; 4] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            w.put_u64(*v);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok([r.take_u64()?, r.take_u64()?, r.take_u64()?, r.take_u64()?])
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            tag => Err(SnapError::BadTag { ty: "Option", tag }),
        }
    }
}

impl<T: Snap> Snap for Box<T> {
    fn snap(&self, w: &mut SnapWriter) {
        T::snap(self, w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::unsnap(r)?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        // An element costs at least one byte on the wire, so take_len's
        // remaining-bytes bound caps the pre-allocation safely.
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for std::collections::BTreeMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = std::collections::BTreeMap::new();
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord> Snap for std::collections::BTreeSet<K> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for k in self {
            k.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = std::collections::BTreeSet::new();
        for _ in 0..n {
            out.insert(K::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for std::collections::VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = std::collections::VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

/// Implement [`Snap`] for a struct by encoding the listed fields in order.
/// The field list is part of the wire format: adding, removing or reordering
/// entries requires a snapshot version bump.
#[macro_export]
macro_rules! snap_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn snap(&self, w: &mut $crate::SnapWriter) {
                $( $crate::Snap::snap(&self.$field, w); )+
            }
            fn unsnap(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                Ok($ty { $( $field: $crate::Snap::unsnap(r)? ),+ })
            }
        }
    };
}

/// Internal helper for [`snap_enum!`] tuple variants: decodes one field per
/// binding ident.
#[doc(hidden)]
#[macro_export]
macro_rules! __snap_tuple_field {
    ($r:ident, $binding:ident) => {
        $crate::Snap::unsnap($r)?
    };
}

/// Implement [`Snap`] for an enum with explicit per-variant tags. Supports
/// unit variants (`3 => Done`), struct variants (`1 => Hop { from, to }`)
/// and tuple variants (`2 => Wrap(inner)`). Tags are part of the wire
/// format and must never be reused or renumbered without a version bump.
#[macro_export]
macro_rules! snap_enum {
    ($ty:ident { $($tag:literal => $var:ident $({ $($f:ident),* $(,)? })? $(( $($t:ident),+ $(,)? ))? ),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn snap(&self, w: &mut $crate::SnapWriter) {
                match self {
                    $(
                        $ty::$var $({ $($f),* })? $(( $($t),+ ))? => {
                            w.put_u8($tag);
                            $( $( $crate::Snap::snap($f, w); )* )?
                            $( $( $crate::Snap::snap($t, w); )+ )?
                        }
                    )+
                }
            }
            fn unsnap(r: &mut $crate::SnapReader<'_>) -> Result<Self, $crate::SnapError> {
                match r.take_u8()? {
                    $(
                        $tag => Ok($ty::$var
                            $({ $($f: $crate::Snap::unsnap(r)?),* })?
                            $(( $($crate::__snap_tuple_field!(r, $t)),+ ))?
                        ),
                    )+
                    tag => Err($crate::SnapError::BadTag { ty: stringify!($ty), tag }),
                }
            }
        }
    };
}

/// A deterministic 64-bit FNV-1a hash of a byte string, used to fingerprint
/// restore-time inputs (configs, mobility plans) that are deliberately not
/// serialized. Stable across platforms and releases.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).expect("unsnap");
        assert_eq!(&back, v);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&0xDEAD_BEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&(-42i64));
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&String::from("snapshot"));
        roundtrip(&[1u64, 2, 3, 4]);
    }

    #[test]
    fn f64_roundtrips_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let mut w = SnapWriter::new();
            v.snap(&mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            let back = f64::unsnap(&mut r).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bit drift for {v}");
        }
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&Box::new(9u64));
        roundtrip(&(1u8, 2u32));
        roundtrip(&(1u8, 2u32, 3.5f64));
        roundtrip(&vec![(1u8, 2u32), (3, 4)]);
        let map: std::collections::BTreeMap<u32, f64> =
            [(1, 0.5), (9, -3.25)].into_iter().collect();
        roundtrip(&map);
        let set: std::collections::BTreeSet<u64> = [4, 1, 9].into_iter().collect();
        roundtrip(&set);
        let dq: std::collections::VecDeque<u32> = [5, 6, 7].into_iter().collect();
        roundtrip(&dq);
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: f64,
        c: Vec<u8>,
    }
    snap_struct!(Demo { a, b, c });

    #[derive(Debug, PartialEq)]
    enum DemoEnum {
        Unit,
        Struct { x: u32, y: bool },
        Tuple(u64, f64),
    }
    snap_enum!(DemoEnum {
        0 => Unit,
        1 => Struct { x, y },
        2 => Tuple(a, b),
    });

    #[test]
    fn macros_roundtrip() {
        roundtrip(&Demo {
            a: 3,
            b: -0.5,
            c: vec![1, 2],
        });
        roundtrip(&DemoEnum::Unit);
        roundtrip(&DemoEnum::Struct { x: 9, y: true });
        roundtrip(&DemoEnum::Tuple(11, 2.25));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut r = SnapReader::new(&[99]);
        assert_eq!(
            DemoEnum::unsnap(&mut r),
            Err(SnapError::BadTag {
                ty: "DemoEnum",
                tag: 99
            })
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let mut w = SnapWriter::new();
        0xAABB_CCDDu32.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..3]);
        assert_eq!(u32::unsnap(&mut r), Err(SnapError::Eof));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::unsnap(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let r = SnapReader::new(&[0, 1, 2]);
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes(3)));
    }

    #[test]
    fn header_enforces_magic_and_version() {
        let mut w = SnapWriter::new();
        write_header(&mut w, 3);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(read_header(&mut r, 3), Ok(()));
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            read_header(&mut r, 4),
            Err(SnapError::BadVersion {
                found: 3,
                expected: 4
            })
        );
        let mut garbage = bytes.clone();
        garbage[0] = b'X';
        let mut r = SnapReader::new(&garbage);
        assert_eq!(read_header(&mut r, 3), Err(SnapError::BadMagic));
    }

    #[test]
    fn fingerprint_is_stable() {
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"diknn"), fingerprint(b"diknn"));
        assert_ne!(fingerprint(b"diknn"), fingerprint(b"dikNN"));
    }
}
