//! End-to-end DIKNN runs over the simulator: accuracy against exact ground
//! truth, mobility behaviour, configuration variants, determinism. Every
//! run records a flight-recorder trace and is replayed against the
//! protocol invariants (`diknn_workloads::invariants`) before any metric
//! assertion — a wrong-but-lucky execution fails here even if the answer
//! happens to be accurate.

use std::sync::Arc;

use diknn_core::{CollectionScheme, Diknn, DiknnConfig, KnnProtocol, QueryRequest};
use diknn_geom::{Point, Rect};
use diknn_mobility::{placement, RandomWaypoint, RwpConfig, StaticMobility};
use diknn_sim::{NodeId, SharedMobility, SimConfig, SimDuration, Simulator, TraceConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Classify still-pending queries, then replay the recorded trace against
/// all protocol laws. Call after every `sim.run()`.
fn finish_and_check<P: KnnProtocol>(sim: &mut Simulator<P>) {
    let (proto, ctx) = sim.split_mut();
    proto.finish(ctx);
    diknn_workloads::invariants::assert_clean(ctx.trace(), proto.outcomes());
}

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 115.0,
    max_y: 115.0,
};

fn static_network(n: usize, seed: u64) -> (Vec<SharedMobility>, Vec<Point>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = placement::uniform(FIELD, n, &mut rng);
    let mob = pts
        .iter()
        .map(|&p| Arc::new(StaticMobility::new(p)) as SharedMobility)
        .collect();
    (mob, pts)
}

fn mobile_network(n: usize, max_speed: f64, seed: u64) -> Vec<SharedMobility> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = placement::uniform(FIELD, n, &mut rng);
    pts.into_iter()
        .map(|p| {
            Arc::new(RandomWaypoint::new(
                p,
                &RwpConfig::new(FIELD, max_speed, 120.0),
                &mut rng,
            )) as SharedMobility
        })
        .collect()
}

fn exact_knn(positions: &[Point], q: Point, k: usize, exclude: Option<usize>) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..positions.len())
        .filter(|&i| Some(i) != exclude)
        .collect();
    idx.sort_by(|&a, &b| {
        positions[a]
            .dist(q)
            .partial_cmp(&positions[b].dist(q))
            .unwrap()
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

fn accuracy(answer: &[NodeId], truth: &[usize]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = answer.iter().filter(|n| truth.contains(&n.index())).count();
    hits as f64 / truth.len() as f64
}

fn sim_config(seconds: f64) -> SimConfig {
    SimConfig {
        time_limit: SimDuration::from_secs_f64(seconds),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    }
}

#[test]
fn static_network_high_accuracy() {
    let (mob, pts) = static_network(200, 11);
    let q = Point::new(60.0, 55.0);
    let k = 10;
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q,
        k,
    };
    let mut sim = Simulator::new(
        sim_config(30.0),
        mob,
        Diknn::new(DiknnConfig::default(), vec![req]),
        11,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let o = &sim.protocol().outcomes()[0];
    assert!(o.completed_at.is_some(), "query never completed");
    let truth = exact_knn(&pts, q, k, None);
    let acc = accuracy(&o.answer, &truth);
    assert!(acc >= 0.9, "static accuracy {acc} too low: {o:?}");
    assert!(o.parts_returned >= 6, "lost sectors: {}", o.parts_returned);
}

#[test]
fn several_queries_static_accuracy_above_90_percent() {
    let (mob, pts) = static_network(200, 23);
    let queries: Vec<QueryRequest> = (0..5)
        .map(|i| QueryRequest {
            at: 0.5 + i as f64 * 4.0,
            sink: NodeId(i as u32 * 7),
            q: Point::new(20.0 + i as f64 * 18.0, 95.0 - i as f64 * 16.0),
            k: 20,
        })
        .collect();
    let mut sim = Simulator::new(
        sim_config(40.0),
        mob,
        Diknn::new(DiknnConfig::default(), queries.clone()),
        23,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let outcomes = sim.protocol().outcomes();
    assert_eq!(outcomes.len(), 5);
    let mut accs = Vec::new();
    for (o, req) in outcomes.iter().zip(&queries) {
        assert!(o.completed_at.is_some(), "query {} incomplete", o.qid);
        let truth = exact_knn(&pts, req.q, req.k, None);
        accs.push(accuracy(&o.answer, &truth));
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    assert!(mean >= 0.88, "mean static accuracy {mean}: {accs:?}");
}

#[test]
fn latency_is_subsecond_scale_on_static_network() {
    let (mob, _) = static_network(200, 31);
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(3),
        q: Point::new(90.0, 90.0),
        k: 20,
    };
    let mut sim = Simulator::new(
        sim_config(30.0),
        mob,
        Diknn::new(DiknnConfig::default(), vec![req]),
        31,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let o = &sim.protocol().outcomes()[0];
    let lat = o.latency().expect("completed");
    // The paper reports DIKNN latencies of roughly 0.5–2 s for k up to 100;
    // a k=20 query should be comfortably under 5 s.
    assert!(lat < 5.0, "latency {lat}s is out of scale");
    assert!(lat > 0.01, "latency {lat}s is implausibly small");
}

#[test]
fn mobile_network_still_answers_with_good_accuracy() {
    let mob = mobile_network(200, 10.0, 41);
    let oracle = mobile_network(200, 10.0, 41); // same seed = same plans
    let q = Point::new(55.0, 60.0);
    let k = 10;
    let req = QueryRequest {
        at: 2.0,
        sink: NodeId(1),
        q,
        k,
    };
    let mut sim = Simulator::new(
        sim_config(40.0),
        mob,
        Diknn::new(DiknnConfig::default(), vec![req]),
        41,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let o = &sim.protocol().outcomes()[0];
    assert!(o.completed_at.is_some(), "mobile query never completed");
    // Post-accuracy: ground truth at completion time.
    let t = o.completed_at.unwrap().as_secs_f64();
    let positions: Vec<Point> = oracle.iter().map(|m| m.position_at(t)).collect();
    let truth = exact_knn(&positions, q, k, None);
    let acc = accuracy(&o.answer, &truth);
    assert!(acc >= 0.6, "mobile post-accuracy {acc} too low");
}

#[test]
fn deterministic_outcomes_per_seed() {
    let run = |seed: u64| {
        let mob = mobile_network(120, 10.0, seed);
        let req = QueryRequest {
            at: 1.0,
            sink: NodeId(2),
            q: Point::new(70.0, 40.0),
            k: 15,
        };
        let mut sim = Simulator::new(
            sim_config(30.0),
            mob,
            Diknn::new(DiknnConfig::default(), vec![req]),
            seed,
        );
        sim.warm_neighbor_tables();
        sim.run();
        finish_and_check(&mut sim);
        let o = &sim.protocol().outcomes()[0];
        (o.answer.clone(), o.completed_at, o.boundary_radius)
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn boundary_radius_grows_with_k() {
    let (mob, _) = static_network(200, 55);
    let queries: Vec<QueryRequest> = [5usize, 20, 60]
        .iter()
        .enumerate()
        .map(|(i, &k)| QueryRequest {
            at: 0.5 + i as f64 * 8.0,
            sink: NodeId(0),
            q: Point::new(57.0, 57.0),
            k,
        })
        .collect();
    let mut sim = Simulator::new(
        sim_config(40.0),
        mob,
        Diknn::new(DiknnConfig::default(), queries),
        55,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let radii: Vec<f64> = sim
        .protocol()
        .outcomes()
        .iter()
        .map(|o| o.boundary_radius)
        .collect();
    assert!(radii[0] < radii[2], "boundary must grow with k: {radii:?}");
}

#[test]
fn all_collection_schemes_work() {
    for scheme in [
        CollectionScheme::Contention,
        CollectionScheme::TokenRing,
        CollectionScheme::Combined,
    ] {
        let (mob, pts) = static_network(200, 77);
        let q = Point::new(45.0, 70.0);
        let req = QueryRequest {
            at: 0.5,
            sink: NodeId(4),
            q,
            k: 10,
        };
        let cfg = DiknnConfig {
            collection: scheme,
            ..DiknnConfig::default()
        };
        let mut sim = Simulator::new(sim_config(30.0), mob, Diknn::new(cfg, vec![req]), 77);
        sim.warm_neighbor_tables();
        sim.run();
        finish_and_check(&mut sim);
        let o = &sim.protocol().outcomes()[0];
        assert!(
            o.completed_at.is_some(),
            "{scheme:?}: query never completed"
        );
        let truth = exact_knn(&pts, q, 10, None);
        let acc = accuracy(&o.answer, &truth);
        assert!(acc >= 0.8, "{scheme:?}: accuracy {acc}");
    }
}

#[test]
fn rendezvous_off_still_completes() {
    let (mob, pts) = static_network(200, 88);
    let q = Point::new(60.0, 60.0);
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q,
        k: 15,
    };
    let cfg = DiknnConfig {
        rendezvous: false,
        ..DiknnConfig::default()
    };
    let mut sim = Simulator::new(sim_config(30.0), mob, Diknn::new(cfg, vec![req]), 88);
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let o = &sim.protocol().outcomes()[0];
    assert!(o.completed_at.is_some());
    let truth = exact_knn(&pts, q, 15, None);
    assert!(accuracy(&o.answer, &truth) >= 0.8);
}

#[test]
fn different_sector_counts_work() {
    for sectors in [1usize, 2, 4, 8, 16] {
        let (mob, pts) = static_network(200, 101);
        let q = Point::new(57.0, 50.0);
        let req = QueryRequest {
            at: 0.5,
            sink: NodeId(9),
            q,
            k: 10,
        };
        let cfg = DiknnConfig {
            sectors,
            ..DiknnConfig::default()
        };
        let mut sim = Simulator::new(sim_config(40.0), mob, Diknn::new(cfg, vec![req]), 101);
        sim.warm_neighbor_tables();
        sim.run();
        finish_and_check(&mut sim);
        let o = &sim.protocol().outcomes()[0];
        assert!(o.completed_at.is_some(), "S={sectors}: incomplete");
        let truth = exact_knn(&pts, q, 10, None);
        let acc = accuracy(&o.answer, &truth);
        assert!(acc >= 0.7, "S={sectors}: accuracy {acc}");
    }
}

#[test]
fn query_at_field_corner_completes() {
    // Boundary clipped by the field edge: sectors facing outside find no
    // nodes; the query must still terminate and answer.
    let (mob, pts) = static_network(200, 113);
    let q = Point::new(5.0, 5.0);
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q,
        k: 10,
    };
    let mut sim = Simulator::new(
        sim_config(30.0),
        mob,
        Diknn::new(DiknnConfig::default(), vec![req]),
        113,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let o = &sim.protocol().outcomes()[0];
    assert!(o.completed_at.is_some(), "corner query never completed");
    let truth = exact_knn(&pts, q, 10, None);
    let acc = accuracy(&o.answer, &truth);
    assert!(acc >= 0.6, "corner accuracy {acc}");
}

#[test]
fn packet_loss_degrades_gracefully() {
    let (mob, pts) = static_network(200, 131);
    let q = Point::new(55.0, 55.0);
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q,
        k: 10,
    };
    let cfg = SimConfig {
        loss_rate: 0.15,
        ..sim_config(40.0)
    };
    let mut sim = Simulator::new(cfg, mob, Diknn::new(DiknnConfig::default(), vec![req]), 131);
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let o = &sim.protocol().outcomes()[0];
    // Under 15% loss the query should still complete (ARQ + timeout), with
    // possibly reduced accuracy — but never a crash or hang.
    if o.completed_at.is_some() {
        let truth = exact_knn(&pts, q, 10, None);
        let acc = accuracy(&o.answer, &truth);
        assert!(acc >= 0.4, "lossy accuracy collapsed: {acc}");
    }
}

#[test]
fn energy_and_traffic_are_attributed_to_protocol() {
    let (mob, _) = static_network(200, 149);
    let req = QueryRequest {
        at: 0.5,
        sink: NodeId(0),
        q: Point::new(60.0, 60.0),
        k: 20,
    };
    let mut sim = Simulator::new(
        sim_config(20.0),
        mob,
        Diknn::new(DiknnConfig::default(), vec![req]),
        149,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let e = sim.ctx().total_protocol_energy_j();
    assert!(e > 0.0, "no protocol energy recorded");
    assert!(e < 5.0, "energy {e} J out of scale for one query");
    assert!(sim.ctx().stats().tx_protocol_frames > 20);
}

#[test]
fn larger_k_costs_more_energy_and_latency() {
    let run = |k: usize| {
        let (mob, _) = static_network(200, 163);
        let req = QueryRequest {
            at: 0.5,
            sink: NodeId(0),
            q: Point::new(57.0, 57.0),
            k,
        };
        let mut sim = Simulator::new(
            sim_config(30.0),
            mob,
            Diknn::new(DiknnConfig::default(), vec![req]),
            163,
        );
        sim.warm_neighbor_tables();
        sim.run();
        finish_and_check(&mut sim);
        let o = &sim.protocol().outcomes()[0];
        (
            o.latency().unwrap_or(f64::INFINITY),
            sim.ctx().total_protocol_energy_j(),
        )
    };
    let (lat_small, e_small) = run(5);
    let (lat_big, e_big) = run(80);
    assert!(
        e_big > e_small,
        "energy should grow with k: {e_small} !< {e_big}"
    );
    assert!(
        lat_big > lat_small * 0.8,
        "latency collapsed with larger k: {lat_small} vs {lat_big}"
    );
}
