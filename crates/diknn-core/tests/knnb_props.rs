//! KNNB vs. exact ground truth (satellite of the flight-recorder PR).
//!
//! `core_props.rs` checks KNNB's *algebraic* laws on synthetic hop lists;
//! here the estimator faces real geometry: uniform random placements, a
//! greedy routing walk producing the hop list `L` exactly the way the
//! protocol's routing phase does (encounter counts relative to the
//! previous hop), and the exact k-th-neighbour distance from the
//! [`GroundTruth`] oracle as the yardstick.
//!
//! KNNB is a density *estimate*, not a guarantee — the protocol's dynamic
//! boundary extension (§4.3) covers underestimates at run time, and
//! `DiknnConfig::max_radius_growth` (default 1.6) bounds how far a token
//! may stretch the boundary. So the law checked is the one the protocol
//! relies on: the estimate, after the same clamp `begin_dissemination`
//! applies, must put the true k-th neighbour within reach of one extension
//! budget — and must not degenerate into flooding (the failure mode of the
//! conservative KPT boundary the paper criticises).

use std::sync::Arc;

use diknn_core::knnb::{knnb, HopRecord};
use diknn_geom::{Point, Rect};
use diknn_mobility::{placement, StaticMobility};
use diknn_sim::SharedMobility;
use diknn_workloads::GroundTruth;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const RADIO_RANGE: f64 = 20.0;
const FIELD_SIDE: f64 = 115.0;

/// Greedy walk from the node nearest `sink` toward `q`, recording hop
/// records the way the routing phase does: `enc` is the number of
/// neighbours (within radio range) farther than the radio range from the
/// previous hop's location (§4.1); the first hop counts all neighbours.
fn greedy_hop_list(nodes: &[Point], sink: Point, q: Point) -> Vec<HopRecord> {
    let nearest = |p: Point| -> usize {
        let mut best = 0;
        for (i, n) in nodes.iter().enumerate() {
            if n.dist_sq(p) < nodes[best].dist_sq(p) {
                best = i;
            }
        }
        best
    };
    let mut list = Vec::new();
    let mut cur = nearest(sink);
    let mut prev_loc: Option<Point> = None;
    loop {
        let here = nodes[cur];
        let neighbors: Vec<Point> = nodes
            .iter()
            .enumerate()
            .filter(|&(i, n)| i != cur && n.dist(here) <= RADIO_RANGE)
            .map(|(_, n)| *n)
            .collect();
        let enc = match prev_loc {
            None => neighbors.len() as u32,
            Some(p) => neighbors.iter().filter(|n| n.dist(p) > RADIO_RANGE).count() as u32,
        };
        list.push(HopRecord { loc: here, enc });
        // Greedy next hop: the neighbour strictly closest to q.
        let mut next = None;
        let mut best_d = here.dist(q);
        for (i, n) in nodes.iter().enumerate() {
            if i != cur && n.dist(here) <= RADIO_RANGE && n.dist(q) < best_d {
                best_d = n.dist(q);
                next = Some(i);
            }
        }
        match next {
            Some(i) => {
                prev_loc = Some(here);
                cur = i;
            }
            None => return list,
        }
    }
}

/// Non-vacuity guard for the property below: at the settings-table density
/// (200 nodes) the greedy walk reaches the query neighbourhood for every
/// one of these pinned seeds, so the gated assertions really run.
#[test]
fn greedy_walk_reaches_q_at_paper_density() {
    let field = Rect::new(0.0, 0.0, FIELD_SIDE, FIELD_SIDE);
    for seed in [1u64, 2, 3, 4, 5, 42, 99, 2007] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = placement::uniform(field, 200, &mut rng);
        let q = Point::new(60.0, 60.0);
        let list = greedy_hop_list(&nodes, Point::new(5.0, 5.0), q);
        let last = list.last().expect("walk produced no hops");
        assert!(
            last.loc.dist(q) <= RADIO_RANGE,
            "seed {seed}: walk stalled {:.1} m from q",
            last.loc.dist(q)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On uniform static networks the clamped KNNB radius both contains
    /// the true k-th neighbour within one extension budget and stays
    /// within a small constant factor of the optimum (no flooding).
    #[test]
    fn knnb_boundary_brackets_true_kth_distance(
        seed in 0u64..10_000,
        n in 150usize..250,
        k in 1usize..=20,
        qx in 30.0..85.0f64,
        qy in 30.0..85.0f64,
    ) {
        let field = Rect::new(0.0, 0.0, FIELD_SIDE, FIELD_SIDE);
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = placement::uniform(field, n, &mut rng);
        let q = Point::new(qx, qy);

        // Exact k-th neighbour distance from the shared oracle.
        let plans: Vec<SharedMobility> = nodes
            .iter()
            .map(|&p| Arc::new(StaticMobility::new(p)) as SharedMobility)
            .collect();
        let truth = GroundTruth::new(plans, n);
        let knn = truth.knn_at(q, k, 0.0);
        prop_assert_eq!(knn.len(), k);
        let d_k = nodes[knn[k - 1].0 as usize].dist(q);

        let list = greedy_hop_list(&nodes, Point::new(5.0, 5.0), q);
        prop_assert!(!list.is_empty());
        // Pure greedy has no perimeter mode: a walk stuck in a void far
        // from q is a route GPSR would have recovered, not a KNNB input —
        // skip those cases (rare at the densities generated here).
        let reached = list
            .last()
            .is_some_and(|h| h.loc.dist(q) <= RADIO_RANGE);
        if reached {
            let est = knnb(&list, q, RADIO_RANGE, k).radius;
            // The clamp begin_dissemination applies before itineraries.
            let max_r = field.width().max(field.height());
            let radius = est.clamp(RADIO_RANGE * 0.5, max_r);

            // Containment within one extension budget (growth cap 1.6).
            prop_assert!(
                radius * 1.6 + 1e-9 >= d_k,
                "boundary {radius:.2} m cannot reach k-th neighbour at {d_k:.2} m \
                 even extended (k={k}, n={n}, seed={seed})"
            );
            // Anti-flooding: never an order of magnitude past the optimum.
            prop_assert!(
                radius <= (4.0 * d_k).max(RADIO_RANGE),
                "boundary {radius:.2} m floods far beyond k-th neighbour at \
                 {d_k:.2} m (k={k}, n={n}, seed={seed})"
            );
        }
    }

    /// Degenerate hop lists — zero encounter counts, duplicated positions,
    /// hops sitting exactly on `q`, `k` far beyond anything the route saw —
    /// must still produce a finite, strictly positive boundary that
    /// encloses ≥ k expected nodes at the returned density (the
    /// conservative-fallback contract), never NaN/inf.
    #[test]
    fn knnb_is_finite_and_conservative_on_degenerate_lists(
        hops in prop::collection::vec(
            // Positions drawn from a tiny palette so duplicates (including
            // the query point itself) are common, not rare.
            (0usize..4, 0u32..4),
            0..6,
        ),
        k in 1usize..=10_000,
    ) {
        let q = Point::new(10.0, 10.0);
        let palette = [
            q,                      // exactly at the query point
            Point::new(10.0, 10.0), // duplicate of q via a second literal
            Point::new(25.0, 10.0),
            Point::new(25.0, 10.0 + 1e-12), // near-duplicate
        ];
        let list: Vec<HopRecord> = hops
            .iter()
            .map(|&(p, enc)| HopRecord { loc: palette[p], enc })
            .collect();
        let b = knnb(&list, q, RADIO_RANGE, k);
        prop_assert!(b.radius.is_finite(), "radius {:?} on {list:?}", b);
        prop_assert!(b.radius > 0.0, "radius {:?} on {list:?}", b);
        prop_assert!(b.density.is_finite() && b.density > 0.0, "{b:?}");
        // Conservative: the disc holds ≥ k expected nodes at the returned
        // density, or the estimate came from a hop that already did.
        let implied = std::f64::consts::PI * b.radius * b.radius * b.density;
        prop_assert!(implied >= k as f64 - 1e-6, "implied {implied} < k={k} on {list:?}");
    }
}
