//! Property-based tests on DIKNN's pure algorithmic kernel: the KNNB
//! estimator, the itinerary geometry, the candidate sets, and the token
//! decision rules.

use diknn_core::itinerary::{sub_itinerary, ItinerarySpec};
use diknn_core::knnb::{knnb, HopRecord};
use diknn_core::token::{SectorToken, TokenDecision};
use diknn_core::{Candidate, CandidateSet, DiknnConfig};
use diknn_geom::Point;
use diknn_sim::{NodeId, SimTime};
use proptest::prelude::*;

fn hop_list() -> impl Strategy<Value = Vec<HopRecord>> {
    prop::collection::vec(((-200.0..200.0f64, -200.0..200.0f64), 0u32..40), 0..20).prop_map(|v| {
        v.into_iter()
            .map(|((x, y), enc)| HopRecord {
                loc: Point::new(x, y),
                enc,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// KNNB always returns a finite positive radius, for any hop list.
    #[test]
    fn knnb_total_and_finite(l in hop_list(), k in 1usize..200) {
        let b = knnb(&l, Point::new(10.0, -5.0), 20.0, k);
        prop_assert!(b.radius.is_finite());
        prop_assert!(b.radius > 0.0);
        prop_assert!(b.density.is_finite() && b.density > 0.0);
    }

    /// For routes that approach q monotonically (the situation GPSR's
    /// greedy mode produces), the estimated radius is monotone
    /// non-decreasing in k. (Arbitrary curving hop lists can violate this —
    /// Algorithm 1 walks hop distances, which need not be sorted.)
    #[test]
    fn knnb_monotone_in_k_on_approach_routes(
        dists in prop::collection::vec(1.0..200.0f64, 1..15),
        encs in prop::collection::vec(0u32..40, 15),
    ) {
        let q = Point::new(0.0, 0.0);
        let mut sorted = dists.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap()); // farthest first
        let l: Vec<HopRecord> = sorted
            .iter()
            .zip(&encs)
            .map(|(&d, &enc)| HopRecord { loc: Point::new(d, 0.0), enc })
            .collect();
        let mut last = 0.0f64;
        for k in [1usize, 2, 5, 10, 20, 50, 100] {
            let r = knnb(&l, q, 20.0, k).radius;
            prop_assert!(r + 1e-9 >= last, "k={k}: {r} < {last}");
            last = r;
        }
    }

    /// Sub-itineraries: every waypoint is finite and within R + w of q; the
    /// polyline starts at q; length is monotone in the radius.
    #[test]
    fn itinerary_waypoints_bounded(
        radius in 1.0..120.0f64,
        sectors in 1usize..17,
        width_factor in 0.3..1.5f64,
        sector_pick in 0usize..16,
    ) {
        let w = width_factor * 20.0;
        let q = Point::new(57.0, 57.0);
        let spec = ItinerarySpec::new(q, radius, sectors, w);
        let sector = sector_pick % sectors;
        let poly = sub_itinerary(&spec, sector, sector % 2 == 1);
        prop_assert_eq!(poly.start(), q);
        for p in poly.waypoints() {
            prop_assert!(p.is_finite());
            prop_assert!(q.dist(*p) <= radius + w, "waypoint beyond R + w");
        }
        let bigger = ItinerarySpec { radius: radius + w, ..spec };
        let poly2 = sub_itinerary(&bigger, sector, sector % 2 == 1);
        prop_assert!(poly2.length() + 1e-9 >= poly.length());
    }

    /// Candidate sets never exceed k, stay sorted, and merging is
    /// order-insensitive for the resulting id set.
    #[test]
    fn candidate_set_invariants(
        k in 1usize..20,
        items in prop::collection::vec((0u32..60, 0.0..100.0f64), 0..60),
    ) {
        let mut a = CandidateSet::new(k);
        let mut b = CandidateSet::new(k);
        for &(id, d) in &items {
            a.insert(Candidate { id: NodeId(id), position: Point::new(d, 0.0), dist: d });
        }
        for &(id, d) in items.iter().rev() {
            b.insert(Candidate { id: NodeId(id), position: Point::new(d, 0.0), dist: d });
        }
        prop_assert!(a.len() <= k);
        for w in a.items().windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        // Dedup by id.
        let mut ids = a.ids();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), a.len());
        // Forward and reverse insertion orders agree once per-id
        // duplicates are involved only with identical distances... compare
        // distances (ids can differ on exact ties of the k-th place).
        // Note: with duplicate ids the *latest* insert wins, so compare
        // only when all ids are unique.
        let unique = {
            let mut v: Vec<u32> = items.iter().map(|&(id, _)| id).collect();
            v.sort_unstable();
            v.dedup();
            v.len() == items.len()
        };
        if unique {
            let da: Vec<f64> = a.items().iter().map(|c| c.dist).collect();
            let db: Vec<f64> = b.items().iter().map(|c| c.dist).collect();
            prop_assert_eq!(da, db);
        }
    }

    /// Token decisions are total and terminal states are stable: a token at
    /// the end with no extension budget finishes.
    #[test]
    fn token_decide_total(
        k in 1u32..100,
        explored in 0u32..200,
        counts in prop::collection::vec((0u8..8, 0u32..100), 0..8),
        at_end in any::<bool>(),
        assured in any::<bool>(),
        max_speed in 0.0..30.0f64,
        elapsed in 0.0..5.0f64,
    ) {
        let cfg = DiknnConfig::default();
        let spec = diknn_core::messages::QuerySpec {
            qid: 1,
            sink: NodeId(0),
            sink_pos: Point::ORIGIN,
            q: Point::new(50.0, 50.0),
            k,
            issued_at: SimTime::ZERO,
            attempt: 0,
        };
        let mut t = SectorToken::new(
            spec,
            1,
            ItinerarySpec::new(Point::new(50.0, 50.0), 30.0, 8, 17.32),
            SimTime::ZERO,
        );
        t.explored = explored;
        t.assured = assured;
        t.max_speed = max_speed;
        t.merge_counts(&counts);
        let now = SimTime::from_secs_f64(elapsed);
        let d = t.decide(&cfg, now, at_end);
        // Extensions never exceed the cap and never shrink.
        if let TokenDecision::Extend(r, _) = d {
            prop_assert!(r > t.itin.radius);
            prop_assert!(r <= t.initial_radius * cfg.max_radius_growth + 1e-9);
        }
        // A capped, assured token at the end must not extend.
        t.itin.radius = t.initial_radius * cfg.max_radius_growth;
        t.assured = true;
        if let TokenDecision::Extend(..) = t.decide(&cfg, now, true) { prop_assert!(false, "extended past the cap") }
    }
}
