//! End-to-end continuous KNN monitoring: periodic rounds complete, deltas
//! are consistent, and churn scales with mobility.

use std::sync::Arc;

use diknn_core::{ContinuousKnn, DiknnConfig, KnnProtocol, MonitorRequest};
use diknn_geom::{Point, Rect};
use diknn_mobility::{placement, RandomWaypoint, RwpConfig, StaticMobility};
use diknn_sim::{NodeId, SharedMobility, SimConfig, SimDuration, Simulator, TraceConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Classify still-pending rounds, then replay the recorded trace against
/// all protocol laws. Call after every `sim.run()`.
fn finish_and_check<P: KnnProtocol>(sim: &mut Simulator<P>) {
    let (proto, ctx) = sim.split_mut();
    proto.finish(ctx);
    diknn_workloads::invariants::assert_clean(ctx.trace(), proto.outcomes());
}

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 115.0,
    max_y: 115.0,
};

fn network(speed: f64, seed: u64) -> Vec<SharedMobility> {
    let mut rng = SmallRng::seed_from_u64(seed);
    placement::uniform(FIELD, 180, &mut rng)
        .into_iter()
        .map(|p| {
            if speed > 0.0 {
                Arc::new(RandomWaypoint::new(
                    p,
                    &RwpConfig::new(FIELD, speed, 90.0),
                    &mut rng,
                )) as SharedMobility
            } else {
                Arc::new(StaticMobility::new(p)) as SharedMobility
            }
        })
        .collect()
}

fn run_monitor(speed: f64, seed: u64) -> (usize, usize, f64) {
    let monitor = MonitorRequest {
        start_at: 2.0,
        period: 8.0,
        rounds: 5,
        sink: NodeId(0),
        q: Point::new(57.0, 57.0),
        k: 10,
    };
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(60.0),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        network(speed, seed),
        ContinuousKnn::new(DiknnConfig::default(), vec![monitor]),
        seed,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let completed = sim
        .protocol()
        .outcomes()
        .iter()
        .filter(|o| o.completed_at.is_some())
        .count();
    let proto = sim.protocol_mut();
    let rounds = proto.deltas().len();
    let churn = proto.mean_churn();
    (completed, rounds, churn)
}

#[test]
fn all_rounds_complete_and_deltas_cover_them() {
    let (completed, rounds, _) = run_monitor(10.0, 5);
    assert_eq!(rounds, 5);
    assert!(completed >= 4, "only {completed}/5 rounds completed");
}

#[test]
fn static_network_has_near_zero_churn() {
    let (_, _, churn) = run_monitor(0.0, 7);
    assert!(
        churn < 0.25,
        "static churn should be small (protocol noise only): {churn}"
    );
}

#[test]
fn churn_grows_with_mobility() {
    let (_, _, slow) = run_monitor(0.0, 9);
    let (_, _, fast) = run_monitor(25.0, 9);
    assert!(
        fast > slow + 0.1,
        "churn must rise with speed: static {slow} vs fast {fast}"
    );
    // At 25 m/s over 8 s the set rotates substantially but not fully.
    assert!(fast > 0.2 && fast <= 2.0, "implausible churn {fast}");
}

#[test]
fn first_round_delta_is_the_full_answer() {
    let monitor = MonitorRequest {
        start_at: 1.0,
        period: 10.0,
        rounds: 2,
        sink: NodeId(3),
        q: Point::new(40.0, 70.0),
        k: 8,
    };
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(30.0),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        cfg,
        network(5.0, 11),
        ContinuousKnn::new(DiknnConfig::default(), vec![monitor]),
        11,
    );
    sim.warm_neighbor_tables();
    sim.run();
    finish_and_check(&mut sim);
    let proto = sim.protocol_mut();
    let deltas = proto.deltas().to_vec();
    let first = &deltas[0];
    assert_eq!(first.round, 0);
    assert!(first.left.is_empty());
    assert_eq!(first.joined, first.answer);
    // Second round: joined/left must be consistent with the answers.
    let second = &deltas[1];
    for n in &second.joined {
        assert!(second.answer.contains(n));
        assert!(!first.answer.contains(n));
    }
    for n in &second.left {
        assert!(first.answer.contains(n));
        assert!(!second.answer.contains(n));
    }
}
