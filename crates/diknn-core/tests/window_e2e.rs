//! End-to-end window (range) queries over the simulator.

use std::sync::Arc;

use diknn_core::{WindowQuery, WindowRequest};
use diknn_geom::{Point, Rect};
use diknn_mobility::{placement, StaticMobility};
use diknn_sim::{NodeId, SharedMobility, SimConfig, SimDuration, Simulator, TraceConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn static_network(n: usize, seed: u64) -> (Vec<SharedMobility>, Vec<Point>) {
    let field = Rect::new(0.0, 0.0, 115.0, 115.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = placement::uniform(field, n, &mut rng);
    let mob = pts
        .iter()
        .map(|&p| Arc::new(StaticMobility::new(p)) as SharedMobility)
        .collect();
    (mob, pts)
}

fn run_window(window: Rect, seed: u64) -> (Vec<NodeId>, Vec<Point>, Option<f64>) {
    let (mob, pts) = static_network(200, seed);
    let req = WindowRequest {
        at: 0.5,
        sink: NodeId(0),
        window,
    };
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(30.0),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cfg, mob, WindowQuery::new(vec![req]), seed);
    sim.warm_neighbor_tables();
    sim.run();
    // `WindowQuery` has its own outcome type, so only the engine-level
    // laws (dead silence, energy monotonicity, trace completeness) apply.
    diknn_workloads::invariants::assert_clean(sim.ctx().trace(), &[]);
    let o = &sim.protocol().outcomes()[0];
    (
        o.members.iter().map(|c| c.id).collect(),
        pts,
        o.completed_at.map(|t| (t - o.issued_at).as_secs_f64()),
    )
}

#[test]
fn window_query_finds_most_members() {
    let window = Rect::new(30.0, 30.0, 85.0, 80.0);
    let (got, pts, latency) = run_window(window, 7);
    assert!(latency.is_some(), "window query never completed");
    let truth: Vec<usize> = (0..pts.len())
        .filter(|&i| window.contains(pts[i]))
        .collect();
    assert!(!truth.is_empty());
    let hits = got.iter().filter(|n| truth.contains(&n.index())).count();
    let recall = hits as f64 / truth.len() as f64;
    assert!(
        recall >= 0.85,
        "window recall {recall:.2} ({hits}/{})",
        truth.len()
    );
    // No false positives far outside the window (staleness tolerance 1 m
    // on a static network = none).
    for n in &got {
        assert!(
            window.contains(pts[n.index()]),
            "node {n} reported but outside the window"
        );
    }
}

#[test]
fn small_window_works() {
    let window = Rect::new(50.0, 50.0, 70.0, 65.0);
    let (got, pts, latency) = run_window(window, 11);
    assert!(latency.is_some());
    let truth = (0..pts.len()).filter(|&i| window.contains(pts[i])).count();
    assert!(got.len() + 2 >= truth, "{} of {truth} members", got.len());
}

#[test]
fn window_latency_scales_with_area() {
    let (_, _, small) = run_window(Rect::new(40.0, 40.0, 70.0, 70.0), 13);
    let (_, _, large) = run_window(Rect::new(10.0, 10.0, 105.0, 105.0), 13);
    let (s, l) = (small.unwrap(), large.unwrap());
    assert!(
        l > s,
        "sweep of a 9x area should take longer: {s:.2} vs {l:.2}"
    );
}

#[test]
fn window_query_deterministic() {
    let w = Rect::new(25.0, 35.0, 80.0, 75.0);
    let a = run_window(w, 21);
    let b = run_window(w, 21);
    assert_eq!(a.0, b.0);
    assert_eq!(a.2, b.2);
}
