//! DIKNN — Density-aware Itinerary KNN query processing for mobile sensor
//! networks (Wu, Chuang, Chen & Chen, ICDE 2007).
//!
//! This crate is the paper's primary contribution, implemented over the
//! [`diknn_sim`] event simulator and [`diknn_routing`] GPSR:
//!
//! * [`knnb()`] — the linear KNN-boundary estimation algorithm (§4.2,
//!   Algorithm 1) plus the conservative KPT boundary it is compared to.
//! * [`itinerary`] — the concurrent cone-shaped itinerary geometry
//!   (init/adj/peri segments, rendezvous-compatible direction inversion,
//!   §3.3 Figure 4).
//! * [`token`] — per-sector traversal state and the dynamic boundary
//!   adjustment rules (rendezvous early-stop / extension and mobility
//!   assurance, §4.3).
//! * [`Diknn`] — the full three-phase protocol
//!   (routing → boundary estimation → itinerary dissemination).
//!
//! # Quick start
//!
//! ```
//! use diknn_core::{Diknn, DiknnConfig, KnnProtocol, QueryRequest};
//! use diknn_geom::{Point, Rect};
//! use diknn_mobility::placement;
//! use diknn_sim::{SimConfig, SimDuration, Simulator, SharedMobility};
//! use diknn_mobility::StaticMobility;
//! use rand::{rngs::SmallRng, SeedableRng};
//! use std::sync::Arc;
//!
//! // 200 static nodes, one query for the 5 nearest to the field centre.
//! let field = Rect::new(0.0, 0.0, 115.0, 115.0);
//! let mut rng = SmallRng::seed_from_u64(7);
//! let nodes: Vec<SharedMobility> = placement::uniform(field, 200, &mut rng)
//!     .into_iter()
//!     .map(|p| Arc::new(StaticMobility::new(p)) as SharedMobility)
//!     .collect();
//! let request = QueryRequest {
//!     at: 0.5,
//!     sink: diknn_sim::NodeId(0),
//!     q: Point::new(57.0, 57.0),
//!     k: 5,
//! };
//! let cfg = SimConfig { time_limit: SimDuration::from_secs_f64(30.0), ..SimConfig::default() };
//! let mut sim = Simulator::new(cfg, nodes, Diknn::new(DiknnConfig::default(), vec![request]), 7);
//! sim.warm_neighbor_tables();
//! sim.run();
//! let outcome = &sim.protocol().outcomes()[0];
//! assert!(outcome.completed_at.is_some());
//! assert_eq!(outcome.answer.len(), 5);
//! ```
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod candidates;
pub mod config;
mod continuous;
pub mod itinerary;
pub mod knnb;
pub mod messages;
mod outcome;
mod protocol;
pub mod token;
pub mod trace;
pub mod window;

pub use candidates::{Candidate, CandidateSet};
pub use config::{CollectionScheme, DiknnConfig, ServingConfig};
pub use continuous::{ContinuousKnn, MonitorRequest, RoundDelta};
pub use itinerary::ItinerarySpec;
pub use knnb::{knnb, kpt_conservative_radius, Boundary, HopRecord};
pub use messages::DiknnMsg;
pub use outcome::{KnnProtocol, QueryOutcome, QueryRequest, QueryStatus};
pub use protocol::{Diknn, TokenHop};
pub use trace::{TraceSink, VecSink};
pub use window::{WindowOutcome, WindowQuery, WindowRequest};
