//! The per-sector dissemination token: all state a sub-itinerary traversal
//! carries from Q-node to Q-node, plus the pure decision logic for early
//! stopping, boundary extension and mobility assurance.

use crate::candidates::CandidateSet;
use crate::config::DiknnConfig;
use crate::itinerary::ItinerarySpec;
use crate::messages::QuerySpec;
use diknn_sim::SimTime;

/// State travelling along one sub-itinerary.
#[derive(Debug, Clone, PartialEq)]
pub struct SectorToken {
    pub spec: QuerySpec,
    pub sector: u8,
    /// Itinerary geometry; `itin.radius` is the sector's *current* boundary
    /// radius, which rendezvous/assurance may enlarge (geometry is monotone
    /// in the radius, so enlarging only appends itinerary).
    pub itin: ItinerarySpec,
    /// Radius originally estimated by KNNB (growth is capped relative to
    /// this).
    pub initial_radius: f64,
    /// Traversal progress: arc length along the sub-itinerary polyline.
    pub frontier: f64,
    /// Best candidates collected in this sector so far (capped at k).
    pub candidates: CandidateSet,
    /// Number of distinct nodes that replied in this sector.
    pub explored: u32,
    /// Fastest node speed observed in collected replies (m/s); input to
    /// the mobility assurance rule (§4.3).
    pub max_speed: f64,
    /// Dissemination start time `ts`.
    pub started_at: SimTime,
    /// Known per-sector explored counts from rendezvous exchanges
    /// (own sector's count lives in `explored`, not here).
    pub sector_counts: Vec<(u8, u32)>,
    /// Mobility assurance has been applied (it is applied once, by the
    /// "last Q-node", when the traversal first reaches the itinerary end).
    pub assured: bool,
    /// Explored count when the last under-count extension was granted;
    /// an extension that finds nothing new stops further extension.
    pub explored_at_extend: Option<u32>,
    /// Arc length of the last rendezvous broadcast (throttling).
    pub last_rendezvous: f64,
    /// Q-node hops taken so far.
    pub hops: u32,
    /// Active void detour: the itinerary target being geo-routed toward
    /// with full GPSR (perimeter forwarding mode, §5.2) — `(target
    /// arc-length, routing header)`.
    pub detour: Option<(f64, diknn_routing::GpsrHeader)>,
    /// Monotonic duplicate-suppression epoch: the token-loss watchdog bumps
    /// this on every re-issue, and Q-nodes drop tokens whose epoch is below
    /// the highest they have recorded for `(qid, attempt, sector)`.
    pub epoch: u32,
    /// Watchdog re-issues this token has survived (bounds the recovery
    /// budget per sector).
    pub reissues: u32,
}

diknn_snap::snap_struct!(SectorToken {
    spec,
    sector,
    itin,
    initial_radius,
    frontier,
    candidates,
    explored,
    max_speed,
    started_at,
    sector_counts,
    assured,
    explored_at_extend,
    last_rendezvous,
    hops,
    detour,
    epoch,
    reissues
});

/// Why a boundary extension was granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtendReason {
    /// Mobility assurance `R' = R + g·(te − ts)·µ` (§4.3).
    Assurance,
    /// Rendezvous says fewer than k nodes explored network-wide.
    UnderCount,
}

/// What the current Q-node should do with the token after data collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TokenDecision {
    /// Keep traversing the itinerary.
    Continue,
    /// Enough nodes are (estimated) explored network-wide: stop now and
    /// report (rendezvous early termination, §4.3).
    FinishEarly,
    /// The itinerary end was reached and the boundary should grow to the
    /// given new radius.
    Extend(f64, ExtendReason),
    /// The itinerary end was reached and the sector is done: report.
    Finish,
}

impl SectorToken {
    pub fn new(spec: QuerySpec, sector: u8, itin: ItinerarySpec, now: SimTime) -> Self {
        SectorToken {
            spec,
            sector,
            initial_radius: itin.radius,
            itin,
            frontier: 0.0,
            candidates: CandidateSet::new(spec.k as usize),
            explored: 0,
            max_speed: 0.0,
            started_at: now,
            sector_counts: Vec::new(),
            assured: false,
            explored_at_extend: None,
            last_rendezvous: 0.0,
            hops: 0,
            detour: None,
            epoch: 0,
            reissues: 0,
        }
    }

    /// Whether this sector traverses its peri-segments in the inverted
    /// direction (every interseptal sector, so adjacent sub-itineraries
    /// meet at the borders).
    pub fn reversed(&self) -> bool {
        self.sector % 2 == 1
    }

    /// Merge a rendezvous count report (keeping the max seen per sector).
    pub fn merge_counts(&mut self, counts: &[(u8, u32)]) {
        for &(s, c) in counts {
            if s == self.sector {
                continue;
            }
            match self.sector_counts.iter_mut().find(|(s2, _)| *s2 == s) {
                Some((_, c2)) => *c2 = (*c2).max(c),
                None => self.sector_counts.push((s, c)),
            }
        }
    }

    /// The counts this token would advertise at a rendezvous: its own
    /// sector plus everything it has learned.
    pub fn advertised_counts(&self) -> Vec<(u8, u32)> {
        let mut counts = self.sector_counts.clone();
        counts.push((self.sector, self.explored));
        counts.sort_unstable();
        counts
    }

    /// Estimate of the total nodes explored across *all* sectors: known
    /// counts plus bilinear-style interpolation (the mean of known sectors)
    /// for sectors not yet heard from (§4.3, Figure 6b).
    ///
    /// Rendezvous counts are snapshots that go stale while every sector
    /// keeps exploring; since sectors progress roughly symmetrically, a
    /// known count below our own current count is floored at our own — the
    /// "bilinear interpolation to complement not-yet-exchanged information"
    /// of the paper, adapted to monotone counters.
    pub fn estimated_total_explored(&self, sectors: usize) -> f64 {
        let own = self.explored as f64;
        let known: Vec<f64> = self
            .sector_counts
            .iter()
            .take(sectors.saturating_sub(1))
            .map(|&(_, c)| (c as f64).max(own))
            .collect();
        let known_n = 1 + known.len();
        let sum = own + known.iter().sum::<f64>();
        let mean = sum / known_n as f64;
        sum + mean * (sectors.saturating_sub(known_n)) as f64
    }

    /// Decide what to do at the current traversal position.
    ///
    /// * `at_end` — the frontier has reached the end of the sub-itinerary.
    /// * `now` — current time (for the assurance shift `(te − ts)·µ`).
    pub fn decide(&self, cfg: &DiknnConfig, now: SimTime, at_end: bool) -> TokenDecision {
        let k = self.spec.k as f64;
        // Rendezvous early termination: globally enough nodes explored.
        // Requires at least one exchange so a lone sector's extrapolation
        // cannot silence the others.
        if cfg.rendezvous
            && !self.sector_counts.is_empty()
            && self.estimated_total_explored(cfg.sectors) >= cfg.early_stop_margin * k
        {
            return TokenDecision::FinishEarly;
        }
        if !at_end {
            return TokenDecision::Continue;
        }
        let cap = self.initial_radius * cfg.max_radius_growth;
        // A previous extension that discovered nothing new means this
        // sector has run out of nodes (field edge, void): stop.
        let futile = self.explored_at_extend.is_some_and(|e| self.explored <= e);
        // Mobility assurance (§4.3): R' = R + g·(te − ts)·µ, applied once
        // by the last Q-node.
        if !self.assured && cfg.assurance_gain > 0.0 && self.max_speed > 0.0 {
            let shift = cfg.assurance_gain * (now - self.started_at).as_secs_f64() * self.max_speed;
            let new_r = (self.itin.radius + shift).min(cap);
            if new_r > self.itin.radius + 1e-6 {
                return TokenDecision::Extend(new_r, ExtendReason::Assurance);
            }
        }
        // Under-count extension: the network-wide estimate has not reached
        // the extension target — grow by one itinerary width and continue
        // (unless the previous extension was futile).
        if cfg.rendezvous
            && !futile
            && self.estimated_total_explored(cfg.sectors) < cfg.extend_target * k
            && self.itin.radius + 1e-9 < cap
        {
            let new_r = (self.itin.radius + self.itin.width).min(cap);
            return TokenDecision::Extend(new_r, ExtendReason::UnderCount);
        }
        TokenDecision::Finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::Candidate;
    use diknn_geom::Point;
    use diknn_sim::NodeId;

    fn spec(k: u32) -> QuerySpec {
        QuerySpec {
            qid: 7,
            sink: NodeId(0),
            sink_pos: Point::ORIGIN,
            q: Point::new(50.0, 50.0),
            k,
            issued_at: SimTime::ZERO,
            attempt: 0,
        }
    }

    fn token(k: u32) -> SectorToken {
        SectorToken::new(
            spec(k),
            1,
            ItinerarySpec::new(Point::new(50.0, 50.0), 30.0, 8, 17.32),
            SimTime::ZERO,
        )
    }

    fn fill_candidates(t: &mut SectorToken, n: u32) {
        for i in 0..n {
            t.candidates.insert(Candidate {
                id: NodeId(100 + i),
                position: Point::ORIGIN,
                dist: i as f64,
            });
        }
    }

    #[test]
    fn reversed_on_odd_sectors() {
        let mut t = token(5);
        assert!(t.reversed());
        t.sector = 2;
        assert!(!t.reversed());
    }

    #[test]
    fn merge_counts_keeps_max_and_skips_own() {
        let mut t = token(5);
        t.merge_counts(&[(2, 10), (3, 4), (1, 99)]);
        t.merge_counts(&[(2, 7), (3, 8)]);
        let mut got = t.sector_counts.clone();
        got.sort_unstable();
        assert_eq!(got, vec![(2, 10), (3, 8)]);
    }

    #[test]
    fn estimate_interpolates_unknown_sectors() {
        let mut t = token(5);
        t.explored = 6;
        t.merge_counts(&[(2, 10), (3, 8)]);
        // Known: 6 + 10 + 8 = 24 over 3 sectors, mean 8; 5 unknown sectors
        // contribute 5×8 = 40. Total 64.
        assert!((t.estimated_total_explored(8) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn early_stop_requires_rendezvous_exchange() {
        let cfg = DiknnConfig::default();
        let mut t = token(8);
        t.explored = 100;
        // No rendezvous info yet: a lone sector never stops the others.
        assert_eq!(
            t.decide(&cfg, SimTime::ZERO, false),
            TokenDecision::Continue
        );
        t.merge_counts(&[(2, 100)]);
        assert_eq!(
            t.decide(&cfg, SimTime::ZERO, false),
            TokenDecision::FinishEarly
        );
    }

    #[test]
    fn no_early_stop_below_margin() {
        let cfg = DiknnConfig::default();
        let mut t = token(100);
        t.explored = 10;
        t.merge_counts(&[(2, 9), (3, 11)]);
        // est ≈ 10+10+11 + 5×10.3 ≈ 82 < 1.3 × 100.
        assert_eq!(
            t.decide(&cfg, SimTime::ZERO, false),
            TokenDecision::Continue
        );
    }

    #[test]
    fn early_stop_disabled_without_rendezvous() {
        let cfg = DiknnConfig {
            rendezvous: false,
            ..DiknnConfig::default()
        };
        let mut t = token(8);
        t.explored = 100;
        t.merge_counts(&[(2, 100)]);
        fill_candidates(&mut t, 8);
        assert_eq!(
            t.decide(&cfg, SimTime::ZERO, false),
            TokenDecision::Continue
        );
    }

    #[test]
    fn assurance_extends_at_end() {
        let cfg = DiknnConfig::default();
        let mut t = token(8);
        t.max_speed = 10.0;
        let te = SimTime::from_secs_f64(2.0);
        // Shift = 0.1 × 2 s × 10 m/s = 2 m.
        match t.decide(&cfg, te, true) {
            TokenDecision::Extend(r, ExtendReason::Assurance) => {
                assert!((r - 32.0).abs() < 1e-9)
            }
            other => panic!("expected Extend, got {other:?}"),
        }
        t.assured = true;
        t.explored = 100; // plenty explored: rendezvous stops it early
        t.merge_counts(&[(0, 100)]);
        assert_eq!(t.decide(&cfg, te, true), TokenDecision::FinishEarly);
    }

    #[test]
    fn assurance_respects_growth_cap() {
        let cfg = DiknnConfig {
            max_radius_growth: 1.05,
            ..DiknnConfig::default()
        };
        let mut t = token(8);
        t.max_speed = 30.0;
        let te = SimTime::from_secs_f64(100.0);
        match t.decide(&cfg, te, true) {
            // Cap = 31.5 regardless of the huge shift.
            TokenDecision::Extend(r, ExtendReason::Assurance) => {
                assert!((r - 31.5).abs() < 1e-9)
            }
            other => panic!("expected Extend, got {other:?}"),
        }
    }

    #[test]
    fn undercount_extension_when_too_few_explored() {
        let cfg = DiknnConfig::default();
        let mut t = token(50);
        t.assured = true;
        t.explored = 2;
        t.merge_counts(&[(0, 1), (2, 2)]);
        match t.decide(&cfg, SimTime::ZERO, true) {
            TokenDecision::Extend(r, ExtendReason::UnderCount) => {
                assert!((r - (30.0 + t.itin.width)).abs() < 1e-9);
            }
            other => panic!("expected Extend, got {other:?}"),
        }
    }

    #[test]
    fn finish_when_done_without_rendezvous() {
        let cfg = DiknnConfig {
            assurance_gain: 0.0,
            rendezvous: false,
            ..DiknnConfig::default()
        };
        let mut t = token(4);
        t.explored = 10;
        assert_eq!(t.decide(&cfg, SimTime::ZERO, true), TokenDecision::Finish);
    }

    #[test]
    fn futile_extension_finishes() {
        let cfg = DiknnConfig {
            assurance_gain: 0.0,
            ..DiknnConfig::default()
        };
        let mut t = token(50);
        t.explored = 2;
        t.merge_counts(&[(0, 1)]);
        // First end-of-itinerary: under-count extension granted.
        match t.decide(&cfg, SimTime::ZERO, true) {
            TokenDecision::Extend(_, ExtendReason::UnderCount) => {}
            other => panic!("expected under-count extend, got {other:?}"),
        }
        // Simulate the extension finding nothing new.
        t.explored_at_extend = Some(t.explored);
        t.itin.radius += t.itin.width;
        assert_eq!(t.decide(&cfg, SimTime::ZERO, true), TokenDecision::Finish);
    }

    #[test]
    fn advertised_counts_include_own_sector() {
        let mut t = token(5);
        t.explored = 3;
        t.merge_counts(&[(4, 9)]);
        assert_eq!(t.advertised_counts(), vec![(1, 3), (4, 9)]);
    }
}
