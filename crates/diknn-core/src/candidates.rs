//! Bounded candidate sets: the partial KNN results aggregated along
//! itineraries and merged at the sink.

use diknn_geom::Point;
use diknn_sim::NodeId;

/// One KNN candidate: a sensor node that answered a probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    pub id: NodeId,
    /// Position the node reported in its reply.
    pub position: Point,
    /// Distance from the query point at reply time.
    pub dist: f64,
}

/// A set of at most `k` best (closest) candidates, deduplicated by node id.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    k: usize,
    /// Sorted ascending by distance (ties by id for determinism).
    items: Vec<Candidate>,
}

diknn_snap::snap_struct!(Candidate { id, position, dist });
diknn_snap::snap_struct!(CandidateSet { k, items });

impl CandidateSet {
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        CandidateSet {
            k,
            items: Vec::with_capacity(k.min(64)),
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.items.len() >= self.k
    }

    /// Distance of the current k-th (worst kept) candidate, or ∞ while the
    /// set is not full. A sector whose remaining itinerary lies entirely
    /// beyond this distance cannot improve the result.
    pub fn kth_dist(&self) -> f64 {
        if self.is_full() {
            self.items.last().expect("full set").dist
        } else {
            f64::INFINITY
        }
    }

    /// Insert, keeping only the best `k`; replaces a stale entry for the
    /// same node. Returns true if the set changed.
    pub fn insert(&mut self, c: Candidate) -> bool {
        debug_assert!(c.dist.is_finite());
        if let Some(old) = self.items.iter().position(|x| x.id == c.id) {
            // Keep the fresher report for the same node.
            self.items.remove(old);
        } else if self.is_full() && c.dist >= self.kth_dist() {
            return false;
        }
        let at = self
            .items
            .partition_point(|x| (x.dist, x.id) < (c.dist, c.id));
        self.items.insert(at, c);
        self.items.truncate(self.k);
        true
    }

    /// Raise the capacity to at least `k` (never shrinks). Used by the
    /// serving layer when a merge member joins a host query: the host's own
    /// top-k around *its* point might drop the member's nearest nodes, so
    /// the sink keeps a wider pool to re-rank per member.
    pub fn widen(&mut self, k: usize) {
        self.k = self.k.max(k);
    }

    /// Merge another set into this one.
    pub fn merge(&mut self, other: &CandidateSet) {
        for &c in &other.items {
            self.insert(c);
        }
    }

    pub fn items(&self) -> &[Candidate] {
        &self.items
    }

    pub fn ids(&self) -> Vec<NodeId> {
        self.items.iter().map(|c| c.id).collect()
    }

    /// Wire size of this set in a message, at `response_bytes` per entry.
    pub fn wire_bytes(&self, response_bytes: usize) -> usize {
        self.items.len() * response_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, dist: f64) -> Candidate {
        Candidate {
            id: NodeId(id),
            position: Point::new(dist, 0.0),
            dist,
        }
    }

    #[test]
    fn keeps_best_k_sorted() {
        let mut s = CandidateSet::new(3);
        for (id, d) in [(1, 5.0), (2, 1.0), (3, 9.0), (4, 2.0), (5, 0.5)] {
            s.insert(cand(id, d));
        }
        let ids: Vec<u32> = s.ids().iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![5, 2, 4]);
        assert_eq!(s.kth_dist(), 2.0);
        assert!(s.is_full());
    }

    #[test]
    fn kth_dist_infinite_until_full() {
        let mut s = CandidateSet::new(3);
        s.insert(cand(1, 1.0));
        assert_eq!(s.kth_dist(), f64::INFINITY);
    }

    #[test]
    fn duplicate_id_keeps_fresher_report() {
        let mut s = CandidateSet::new(3);
        s.insert(cand(1, 5.0));
        s.insert(cand(1, 2.0)); // node moved closer
        assert_eq!(s.len(), 1);
        assert_eq!(s.items()[0].dist, 2.0);
        // Fresher but farther also replaces.
        s.insert(cand(1, 7.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.items()[0].dist, 7.0);
    }

    #[test]
    fn rejects_worse_than_kth_when_full() {
        let mut s = CandidateSet::new(2);
        s.insert(cand(1, 1.0));
        s.insert(cand(2, 2.0));
        assert!(!s.insert(cand(3, 3.0)));
        assert_eq!(s.len(), 2);
        assert!(s.insert(cand(4, 0.5)));
        let ids: Vec<u32> = s.ids().iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![4, 1]);
    }

    #[test]
    fn merge_unions_best() {
        let mut a = CandidateSet::new(3);
        a.insert(cand(1, 1.0));
        a.insert(cand(2, 4.0));
        let mut b = CandidateSet::new(3);
        b.insert(cand(3, 2.0));
        b.insert(cand(4, 3.0));
        a.merge(&b);
        let ids: Vec<u32> = a.ids().iter().map(|n| n.0).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn widen_raises_capacity_without_shrinking() {
        let mut s = CandidateSet::new(2);
        s.insert(cand(1, 1.0));
        s.insert(cand(2, 2.0));
        assert!(!s.insert(cand(3, 3.0)));
        s.widen(4);
        assert_eq!(s.k(), 4);
        assert!(s.insert(cand(3, 3.0)));
        assert_eq!(s.len(), 3);
        // Never shrinks.
        s.widen(1);
        assert_eq!(s.k(), 4);
    }

    #[test]
    fn wire_bytes_counts_entries() {
        let mut s = CandidateSet::new(5);
        s.insert(cand(1, 1.0));
        s.insert(cand(2, 2.0));
        assert_eq!(s.wire_bytes(10), 20);
    }
}
