//! Concurrent itinerary geometry (paper §3.3, Figure 4).
//!
//! The KNN boundary — a circle of radius `R` around the query point `q` —
//! is partitioned into `S` equal sectors. Each sector is traversed by a
//! **sub-itinerary** made of three segment kinds:
//!
//! * the *init-segment*: a straight run along the sector bisector of length
//!   `l_init = min(w / (2·sin(π/S)), R)` — up to that distance the whole
//!   sector width is within `w/2` of the bisector, so a straight line
//!   covers it;
//! * *peri-segments*: arcs of concentric circles around `q`, spaced `w`
//!   apart (radii `l_init + (j−½)·w`), each ending `w/2` short of the
//!   sector borders;
//! * *adj-segments*: the `w`-long radial connectors along alternating
//!   borders that join consecutive arcs into a zigzag.
//!
//! Inverting the arc direction in every other sector (the `reversed` flag)
//! makes the adj-segments of neighbouring sub-itineraries meet face to
//! face, forming the *rendezvous* areas used for dynamic boundary
//! adjustment (§4.3, Figure 6).
//!
//! Itineraries are **conceptual**: nothing is installed in the network.
//! Every Q-node recomputes the polyline deterministically from the compact
//! [`ItinerarySpec`] carried in the query message. The geometry is monotone
//! in `R`: enlarging the radius only *appends* waypoints (the mobility-
//! assurance expansion of §4.3 relies on this).

use diknn_geom::{angle, Point, Polyline, TAU};

/// Compact description of a query's itinerary structure; travels inside
/// query messages (a few bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItinerarySpec {
    /// Query point (centre of the KNN boundary).
    pub q: Point,
    /// Boundary radius `R`.
    pub radius: f64,
    /// Number of sectors `S` (≥ 1).
    pub sectors: usize,
    /// Itinerary width `w`; full coverage requires `w ≤ √3·r/2`.
    pub width: f64,
    /// Angle of sector 0's starting border.
    pub origin: f64,
}

diknn_snap::snap_struct!(ItinerarySpec {
    q,
    radius,
    sectors,
    width,
    origin
});

impl ItinerarySpec {
    pub fn new(q: Point, radius: f64, sectors: usize, width: f64) -> Self {
        assert!(sectors >= 1, "need at least one sector");
        assert!(width > 0.0, "itinerary width must be positive");
        assert!(radius >= 0.0, "negative radius");
        ItinerarySpec {
            q,
            radius,
            sectors,
            width,
            origin: 0.0,
        }
    }

    /// The init-segment length `l_init` (paper formula).
    pub fn init_len(&self) -> f64 {
        if self.sectors == 1 {
            // Degenerate single-sector case: a ring itinerary starting at
            // the first arc.
            return (self.width / 2.0).min(self.radius);
        }
        let s = (std::f64::consts::PI / self.sectors as f64).sin();
        (self.width / (2.0 * s)).min(self.radius)
    }

    /// Radii of the peri-segment arcs for boundary radius `radius`.
    pub fn arc_radii(&self) -> Vec<f64> {
        let linit = self.init_len();
        let mut radii = Vec::new();
        let mut j = 1usize;
        loop {
            let rho = linit + (j as f64 - 0.5) * self.width;
            // Include arcs until the previous one already covers R.
            if rho >= self.radius + self.width / 2.0 {
                break;
            }
            radii.push(rho);
            j += 1;
            if j > 10_000 {
                unreachable!("arc generation runaway");
            }
        }
        radii
    }

    /// The paper's recommended width for radio range `r`: `w = √3·r/2`,
    /// the largest width that still guarantees full coverage.
    pub fn recommended_width(radio_range: f64) -> f64 {
        3.0_f64.sqrt() * radio_range / 2.0
    }
}

/// The sub-itinerary polyline for `sector` (0-based). `reversed` inverts
/// the peri-segment direction — set it on odd sectors so adjacent
/// sub-itineraries form rendezvous areas.
pub fn sub_itinerary(spec: &ItinerarySpec, sector: usize, reversed: bool) -> Polyline {
    assert!(sector < spec.sectors, "sector index out of range");
    let span = TAU / spec.sectors as f64;
    let start = angle::normalize(spec.origin + sector as f64 * span);
    let bisector = angle::normalize(start + span / 2.0);
    let linit = spec.init_len();

    let mut pts: Vec<Point> = vec![spec.q];
    if linit > 0.0 {
        pts.push(spec.q.polar_offset(bisector, linit));
    }

    if spec.sectors == 1 {
        // Degenerate single-sector itinerary: concentric full rings joined
        // at the bisector (the Figure 3(b) style single traversal).
        for rho in spec.arc_radii() {
            push_arc(&mut pts, spec.q, rho, bisector, TAU, !reversed, spec.width);
        }
        return Polyline::new(pts);
    }

    // Zigzag over the arcs. `side = 0` is the starting border, `side = 1`
    // the ending border; `reversed` swaps which side each arc begins on.
    for (j, rho) in spec.arc_radii().into_iter().enumerate() {
        let phi = arc_inset(spec, rho, span);
        let a0 = angle::normalize(start + phi);
        let a1 = angle::normalize(start + span - phi);
        let sweep = angle::ccw_sweep(a0, a1);
        // Arc j starts on side (j + reversed) mod 2 and ends on the other.
        let begin_on_start_border = (j % 2 == 0) != reversed;
        let (from, ccw) = if begin_on_start_border {
            (a0, true)
        } else {
            (a1, false)
        };
        push_arc(&mut pts, spec.q, rho, from, sweep, ccw, spec.width);
    }
    Polyline::new(pts)
}

/// Angular inset keeping the arc endpoints `w/2` away from the borders
/// (clamped so tiny arcs never invert).
fn arc_inset(spec: &ItinerarySpec, rho: f64, span: f64) -> f64 {
    if spec.sectors == 1 {
        return 0.0; // full rings, no borders
    }
    let ratio = (spec.width / 2.0 / rho).min(1.0);
    ratio.asin().min(span * 0.45)
}

/// Append an arc of radius `rho` around `c` starting at angle `from`,
/// sweeping `sweep` radians counter-clockwise if `ccw` (clockwise
/// otherwise), discretised so the chord sagitta stays below 2% of the
/// itinerary width.
fn push_arc(
    pts: &mut Vec<Point>,
    c: Point,
    rho: f64,
    from: f64,
    sweep: f64,
    ccw: bool,
    width: f64,
) {
    // Angular step bounded by the sagitta tolerance.
    let tol = 0.02 * width;
    let max_step = if tol >= rho {
        sweep.max(0.1)
    } else {
        2.0 * (1.0 - tol / rho).acos()
    };
    let steps = (sweep / max_step).ceil().max(1.0) as usize;
    for i in 0..=steps {
        let frac = i as f64 / steps as f64;
        let theta = if ccw {
            from + sweep * frac
        } else {
            from - sweep * frac
        };
        pts.push(c.polar_offset(theta, rho));
    }
}

/// Total conceptual itinerary length over all sectors — the paper's
/// `l_init + l_peri + l_adj` accounting, used by the width ablation.
pub fn total_length(spec: &ItinerarySpec) -> f64 {
    (0..spec.sectors)
        .map(|s| sub_itinerary(spec, s, s % 2 == 1).length())
        .sum()
}

/// Check whether every sampled point of the disc (radius `R` around `q`) is
/// within `slack` of some sub-itinerary. Returns the worst observed
/// distance. Used by coverage tests and the width ablation.
pub fn coverage_worst_distance(spec: &ItinerarySpec, samples: usize) -> f64 {
    let polylines: Vec<Polyline> = (0..spec.sectors)
        .map(|s| sub_itinerary(spec, s, s % 2 == 1))
        .collect();
    let mut worst = 0.0f64;
    // Deterministic low-discrepancy-ish sampling over the disc.
    for i in 0..samples {
        let frac = (i as f64 + 0.5) / samples as f64;
        let rho = spec.radius * frac.sqrt();
        let theta = TAU * ((i as f64 * 0.618_033_988_749_895) % 1.0);
        let p = spec.q.polar_offset(theta, rho);
        let d = polylines
            .iter()
            .map(|pl| pl.dist_to_point(p))
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(radius: f64, sectors: usize) -> ItinerarySpec {
        let w = ItinerarySpec::recommended_width(20.0); // √3·20/2 ≈ 17.32
        ItinerarySpec::new(Point::new(57.0, 57.0), radius, sectors, w)
    }

    #[test]
    fn init_len_matches_paper_formula() {
        let s = spec(50.0, 8);
        let expected = s.width / (2.0 * (std::f64::consts::PI / 8.0).sin());
        assert!((s.init_len() - expected).abs() < 1e-12);
        // Capped at R when R is small.
        let small = spec(5.0, 8);
        assert_eq!(small.init_len(), 5.0);
    }

    #[test]
    fn recommended_width_is_sqrt3_r_over_2() {
        assert!((ItinerarySpec::recommended_width(20.0) - 17.320_508_075_688_77).abs() < 1e-9);
    }

    #[test]
    fn arc_radii_are_spaced_w_and_cover_r() {
        let s = spec(60.0, 8);
        let radii = s.arc_radii();
        assert!(!radii.is_empty());
        for w in radii.windows(2) {
            assert!((w[1] - w[0] - s.width).abs() < 1e-9);
        }
        // Outermost arc covers the rim.
        assert!(radii.last().unwrap() + s.width / 2.0 >= s.radius);
        // First arc starts just past the init segment.
        assert!((radii[0] - (s.init_len() + 0.5 * s.width)).abs() < 1e-9);
    }

    #[test]
    fn growing_radius_only_appends_waypoints() {
        let small = spec(40.0, 8);
        let large = ItinerarySpec {
            radius: 70.0,
            ..small
        };
        for sector in 0..8 {
            for reversed in [false, true] {
                let a = sub_itinerary(&small, sector, reversed);
                let b = sub_itinerary(&large, sector, reversed);
                assert!(b.length() > a.length());
                // Prefix property: the shorter polyline's waypoints open
                // the longer one.
                for (pa, pb) in a.waypoints().iter().zip(b.waypoints()) {
                    assert!(pa.dist(*pb) < 1e-9, "waypoint prefix mismatch");
                }
            }
        }
    }

    #[test]
    fn sub_itinerary_stays_inside_its_sector_with_margin() {
        let s = spec(55.0, 8);
        for sector in 0..8 {
            let sect = diknn_geom::Sector::partition(s.q, s.radius + s.width, 8, s.origin)[sector];
            let poly = sub_itinerary(&s, sector, sector % 2 == 1);
            for p in poly.waypoints() {
                // Waypoints may stick out radially by w/2 (outermost arc)
                // but never angularly into another sector.
                if s.q.dist(*p) > 1e-9 {
                    assert!(
                        sect.contains(*p),
                        "sector {sector}: waypoint {p:?} escaped its sector"
                    );
                }
            }
        }
    }

    #[test]
    fn full_coverage_at_recommended_width() {
        // Interior points lie within w/2 of a sub-itinerary; the worst case
        // sits on a sector border midway between two arcs where no
        // adj-segment runs, at distance w/√2. With the recommended
        // w = √3·r/2 that is ≈ 0.61·r — every node still hears a probe,
        // which is the coverage the paper's argument needs.
        let r = 20.0;
        for sectors in [1usize, 4, 8, 16] {
            let s = spec(55.0, sectors);
            let worst = coverage_worst_distance(&s, 2000);
            let bound = s.width / 2.0_f64.sqrt() + 0.05 * s.width;
            assert!(
                worst <= bound,
                "S={sectors}: worst distance {worst} exceeds w/√2 bound {bound}"
            );
            assert!(
                worst <= 0.75 * r,
                "S={sectors}: worst distance {worst} too close to the radio range"
            );
        }
    }

    #[test]
    fn coverage_fails_for_oversized_width() {
        // Double the recommended width leaves gaps: some points of the disc
        // are farther than w/2+slack... actually farther than the radio
        // range r itself, which is the real failure criterion: a node there
        // never hears a probe.
        let mut s = spec(55.0, 8);
        s.width = 3.0 * 20.0; // 3r: spacing 60 m with probes reaching 20 m
        let worst = coverage_worst_distance(&s, 2000);
        assert!(
            worst > 20.0,
            "expected coverage holes beyond the radio range, worst = {worst}"
        );
    }

    #[test]
    fn single_sector_is_ring_itinerary() {
        let s = spec(40.0, 1);
        let poly = sub_itinerary(&s, 0, false);
        assert!(poly.length() > 2.0 * std::f64::consts::PI * 20.0);
        let worst = coverage_worst_distance(&s, 1500);
        assert!(worst <= s.width / 2.0 + 0.05 * s.width, "worst {worst}");
    }

    #[test]
    fn reversed_flag_flips_first_arc_direction() {
        let s = spec(50.0, 8);
        let fwd = sub_itinerary(&s, 0, false);
        let rev = sub_itinerary(&s, 0, true);
        assert!((fwd.length() - rev.length()).abs() < 1e-6);
        // After the init segment the two part ways.
        let after_init = s.init_len() + s.width;
        let pf = fwd.point_at(after_init);
        let pr = rev.point_at(after_init);
        assert!(pf.dist(pr) > s.width / 4.0, "reversal had no effect");
    }

    #[test]
    fn total_length_scales_superlinearly_with_radius() {
        let short = total_length(&spec(30.0, 8));
        let long = total_length(&spec(60.0, 8));
        // Area doubles 4×; itinerary length should grow clearly
        // superlinearly (~quadratically).
        assert!(long > 2.5 * short, "short={short} long={long}");
    }

    #[test]
    fn narrower_width_means_longer_itinerary() {
        let base = spec(50.0, 8);
        let narrow = ItinerarySpec {
            width: base.width / 2.0,
            ..base
        };
        assert!(total_length(&narrow) > 1.5 * total_length(&base));
    }

    #[test]
    fn tiny_radius_is_init_only() {
        let s = spec(3.0, 8);
        let poly = sub_itinerary(&s, 2, false);
        // Just q -> bisector point.
        assert!(poly.length() <= 3.0 + 1e-9);
        assert!(!s.arc_radii().is_empty() || poly.length() > 0.0);
    }
}
