//! The DIKNN protocol: three execution phases over the simulator.
//!
//! 1. **Routing phase** (§4.1): the query is geo-routed (GPSR) from the
//!    sink toward the query point `q`, appending `(loc_i, enc_i)` hop
//!    records to the list `L`.
//! 2. **KNN boundary estimation** (§4.2): the home node runs the linear
//!    [`crate::knnb::knnb`] algorithm over `L` to fix the boundary radius.
//! 3. **Query dissemination** (§3.3): the home node performs one bootstrap
//!    data collection, then launches one [`SectorToken`] per sector. Each
//!    token hops Q-node to Q-node along its conceptual sub-itinerary,
//!    collecting D-node responses (contention / token-ring / combined
//!    schemes), exchanging rendezvous statistics at sector borders, and
//!    finally routing its partial result back to the sink, which merges the
//!    `S` partials into the final KNN answer.
//!
//! One [`Diknn`] instance drives *all* nodes; per-node protocol state is
//! kept in maps keyed by `(query, node)`.

use std::collections::{BTreeMap, BTreeSet};

use diknn_geom::{angle, Point, Polyline};
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_sim::{Ctx, LoadSignal, NodeId, ProtoEvent, Protocol, SimDuration, SimTime, TimerId};
use diknn_snap::Snap;
use rand::Rng;

use crate::candidates::{Candidate, CandidateSet};
use crate::config::{CollectionScheme, DiknnConfig};
use crate::itinerary::{sub_itinerary, ItinerarySpec};
use crate::knnb::{knnb, HopRecord};
use crate::messages::*;
use crate::outcome::{KnnProtocol, QueryOutcome, QueryRequest, QueryStatus};
use crate::token::{ExtendReason, SectorToken, TokenDecision};

/// Timer kinds (high byte of the timer key).
const K_ISSUE: u8 = 1;
const K_COLLECT: u8 = 2;
const K_REPLY: u8 = 3;
const K_SINK_TIMEOUT: u8 = 4;
const K_WATCHDOG: u8 = 5;
const K_ADMIT: u8 = 6;

/// Bootstrap collection pseudo-sector (the home node collects for all
/// sectors at once before splitting).
const BOOTSTRAP: u8 = u8::MAX;

/// Safety cap on Q-node hops per sector token.
const MAX_TOKEN_HOPS: u32 = 400;

/// Upper bound on retained result-cache entries (oldest evicted first).
const SERVING_CACHE_CAP: usize = 64;

/// Neighbour snapshot filtered by the link-reliability predictor
/// ([`diknn_routing::reliable_neighbors`]): avoids unicasting to entries
/// that have likely drifted out of range.
fn reliable(ctx: &mut Ctx<DiknnMsg>, at: NodeId) -> Vec<diknn_sim::Neighbor> {
    let raw = ctx.neighbors(at);
    diknn_routing::reliable_neighbors(
        ctx.position(at),
        ctx.speed(at),
        ctx.now(),
        &raw,
        ctx.config().radio_range,
    )
}

fn key(kind: u8, qid: u32, aux: u32) -> u64 {
    ((kind as u64) << 56) | ((qid as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

fn key_kind(k: u64) -> u8 {
    (k >> 56) as u8
}

fn key_qid(k: u64) -> u32 {
    ((k >> 24) & 0xFFFF_FFFF) as u32
}

fn key_aux(k: u64) -> u32 {
    (k & 0xFF_FFFF) as u32
}

/// An active data collection at a Q-node.
struct Collecting {
    node: NodeId,
    token: SectorToken,
    /// Nodes heard during this collection (for poll follow-up).
    heard: Vec<NodeId>,
    /// The poll round has been performed.
    polled: bool,
    /// Bootstrap collections keep replies here to split per sector later.
    bootstrap_replies: Vec<Candidate>,
    bootstrap_speeds: Vec<f64>,
}

diknn_snap::snap_struct!(Collecting {
    node,
    token,
    heard,
    polled,
    bootstrap_replies,
    bootstrap_speeds
});

/// A reply a D-node has scheduled but not yet sent.
struct PendingReply {
    to: NodeId,
    sector: u8,
}

diknn_snap::snap_struct!(PendingReply { to, sector });

/// The token-loss watchdog a Q-node arms after handing a token off: it
/// keeps a copy of the token and, unless the sector makes durable progress
/// (the successor hands the token on, finishes the sector, or the result
/// reaches the sink) within `watchdog_timeout`, re-issues it (bumping the
/// duplicate-suppression epoch).
struct Watchdog {
    /// The node keeping watch (the previous token holder).
    holder: NodeId,
    /// The silent successor the token was handed to.
    sent_to: NodeId,
    /// Token state as of the handoff.
    token: SectorToken,
    /// The sector traversal is over and this watch covers the result's
    /// journey back to the sink instead of a token handoff: on silence the
    /// holder re-sends the sector result rather than re-issuing the token.
    finished: bool,
    timer: TimerId,
}

diknn_snap::snap_struct!(Watchdog {
    holder,
    sent_to,
    token,
    finished,
    timer
});

/// A completed query's result retained for short-TTL cache serving.
struct CacheEntry {
    src_qid: u32,
    q: Point,
    k: usize,
    completed_at: SimTime,
    /// The sink's merged candidate pool at completion, with the positions
    /// reported back then — a later hit re-ranks these against its own `q`.
    candidates: Vec<Candidate>,
}

diknn_snap::snap_struct!(CacheEntry {
    src_qid,
    q,
    k,
    completed_at,
    candidates
});

/// Sink-side serving-layer state (admission / merge / cache), touched only
/// when [`crate::ServingConfig::enabled`] — with serving off the protocol is
/// bit-identical to the pre-serving build.
struct ServingState {
    /// Deterministic load signal: in-flight depth + recent completion rate.
    load: LoadSignal,
    /// Admitted queries that have not yet finalised (candidate merge hosts).
    active: BTreeSet<u32>,
    /// Host qid → member qids answered from the host's return leg.
    members: BTreeMap<u32, Vec<u32>>,
    /// Member qid → the host it rides.
    host_of: BTreeMap<u32, u32>,
    /// Admission deferrals suffered so far per still-waiting qid.
    defers: BTreeMap<u32, u32>,
    /// Completed results usable for cache hits, oldest first.
    cache: Vec<CacheEntry>,
}

diknn_snap::snap_struct!(ServingState {
    load,
    active,
    members,
    host_of,
    defers,
    cache
});

struct SinkState {
    expected: u32,
    merged: CandidateSet,
    returned: u32,
    explored: u32,
    max_final_radius: f64,
    last_merge_at: SimTime,
    done: bool,
    /// Current retry attempt (0 = the original issue).
    attempt: u8,
    /// `(attempt, sector)` partials already counted toward completion;
    /// watchdog re-issues can deliver a sector result twice.
    counted: BTreeSet<(u8, u8)>,
}

diknn_snap::snap_struct!(SinkState {
    expected,
    merged,
    returned,
    explored,
    max_final_radius,
    last_merge_at,
    done,
    attempt,
    counted
});

/// The DIKNN protocol instance (drives all nodes of a run).
pub struct Diknn {
    cfg: DiknnConfig,
    requests: Vec<QueryRequest>,
    outcomes: Vec<QueryOutcome>,
    sinks: BTreeMap<u32, SinkState>,
    collecting: BTreeMap<(u32, u8), Collecting>,
    pending_replies: BTreeMap<(u32, u32), PendingReply>,
    /// `(qid, node)` → `(attempt, sector)` the node responded to.
    responded: BTreeMap<(u32, u32), (u8, u8)>,
    rdv_cache: BTreeMap<(u32, u32), Vec<(u8, u32)>>,
    token_excludes: BTreeMap<(u32, u8), Vec<NodeId>>,
    query_excludes: BTreeMap<u32, Vec<NodeId>>,
    result_excludes: BTreeMap<(u32, u8), Vec<NodeId>>,
    /// Armed token-loss watchdogs, keyed by `(qid, sector)`.
    watchdogs: BTreeMap<(u32, u8), Watchdog>,
    /// Highest token epoch seen per `(qid, attempt, sector)`; lower-epoch
    /// tokens are stale duplicates from a watchdog re-issue and are dropped.
    token_epochs: BTreeMap<(u32, u8, u8), u32>,
    /// Serving layer (admission / merge / cache); inert while
    /// `cfg.serving.enabled` is false.
    serving: ServingState,
    radio_range: f64,
    /// Frames sent per message kind: [query, token, probe, reply, poll,
    /// rendezvous, result]. Diagnostics for benches and tests.
    pub tx_by_kind: [u64; 7],
    /// Q-node traversal trace, populated for diagnostics and the Figure 7
    /// visualisation.
    pub token_trace: Vec<TokenHop>,
    /// Routing-phase trace: (qid, hop position) per forward. Diagnostics.
    pub route_trace: Vec<(u32, Point)>,
}

/// One Q-node-to-Q-node hop of an itinerary traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenHop {
    pub qid: u32,
    pub sector: u8,
    pub hop: u32,
    /// Position of the Q-node that forwarded the token.
    pub from: Point,
    /// Position of the chosen next Q-node (as believed at selection time).
    pub to: Point,
    /// Itinerary arc-length progress after this hop.
    pub frontier: f64,
    /// Sector boundary radius at this hop (grows on extension).
    pub radius: f64,
}

diknn_snap::snap_struct!(TokenHop {
    qid,
    sector,
    hop,
    from,
    to,
    frontier,
    radius
});

impl Diknn {
    pub fn new(cfg: DiknnConfig, requests: Vec<QueryRequest>) -> Self {
        cfg.validate();
        let serving = ServingState {
            load: LoadSignal::new(cfg.serving.load_window_s),
            active: BTreeSet::new(),
            members: BTreeMap::new(),
            host_of: BTreeMap::new(),
            defers: BTreeMap::new(),
            cache: Vec::new(),
        };
        Diknn {
            cfg,
            serving,
            requests,
            outcomes: Vec::new(),
            sinks: BTreeMap::new(),
            collecting: BTreeMap::new(),
            pending_replies: BTreeMap::new(),
            responded: BTreeMap::new(),
            rdv_cache: BTreeMap::new(),
            token_excludes: BTreeMap::new(),
            query_excludes: BTreeMap::new(),
            result_excludes: BTreeMap::new(),
            watchdogs: BTreeMap::new(),
            token_epochs: BTreeMap::new(),
            radio_range: 0.0,
            tx_by_kind: [0; 7],
            token_trace: Vec::new(),
            route_trace: Vec::new(),
        }
    }

    pub fn config(&self) -> &DiknnConfig {
        &self.cfg
    }

    /// Stream additional requests into a running protocol (the resident
    /// service mode's epoch feed). Each request gets its issue timer at the
    /// sink exactly as `on_start` would have armed it; requests whose issue
    /// time has already passed fire immediately. The simulator must have
    /// been started (`Simulator::start` / `run_until`) first.
    pub fn inject_requests(&mut self, ctx: &mut Ctx<DiknnMsg>, reqs: &[QueryRequest]) {
        let now_s = ctx.now().as_secs_f64();
        for req in reqs {
            assert!(
                req.sink.index() < ctx.node_count(),
                "request sink out of range"
            );
            let idx = self.requests.len();
            self.requests.push(*req);
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64((req.at - now_s).max(0.0)),
                key(K_ISSUE, 0, idx as u32),
            );
        }
    }

    fn width(&self) -> f64 {
        self.cfg.width_factor * self.radio_range
    }

    /// Deterministic per-query sector origin (decorrelates queries). A
    /// retry rotates the origin by half a golden angle so the fresh
    /// itinerary crosses different nodes than the one that went silent.
    fn origin_for(qid: u32, attempt: u8) -> f64 {
        // golden angle, and half of it per retry attempt
        angle::normalize(
            qid as f64 * 2.399_963_229_728_653 + attempt as f64 * 1.199_981_614_864_326,
        )
    }

    fn kind_index(msg: &DiknnMsg) -> usize {
        match msg {
            DiknnMsg::Query(_) => 0,
            DiknnMsg::Token(_) => 1,
            DiknnMsg::Probe(_) => 2,
            DiknnMsg::Reply(_) => 3,
            DiknnMsg::Poll(_) => 4,
            DiknnMsg::Rendezvous(_) => 5,
            DiknnMsg::Result(_) => 6,
        }
    }

    fn send(&mut self, ctx: &mut Ctx<DiknnMsg>, from: NodeId, to: NodeId, msg: DiknnMsg) {
        self.tx_by_kind[Self::kind_index(&msg)] += 1;
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = Some(msg.qid());
        ctx.unicast_flow(from, to, bytes, msg, flow);
    }

    fn broadcast(&mut self, ctx: &mut Ctx<DiknnMsg>, from: NodeId, msg: DiknnMsg) {
        self.tx_by_kind[Self::kind_index(&msg)] += 1;
        let bytes = msg.wire_bytes(&self.cfg);
        let flow = Some(msg.qid());
        ctx.broadcast_flow(from, bytes, msg, flow);
    }

    /// Hand a sector token to the next Q-node, arming the token-loss
    /// watchdog: the sender keeps a copy and re-issues it unless the sector
    /// progresses past the successor — the successor's own handoff replaces
    /// this entry (cancelling the timer), and `finish_sector` / `sink_merge`
    /// disarm terminal hops. Probes alone do *not* disarm: a carrier that
    /// probes and then dies mid-collection must still be recovered.
    fn send_token(
        &mut self,
        ctx: &mut Ctx<DiknnMsg>,
        from: NodeId,
        to: NodeId,
        token: SectorToken,
    ) {
        if self.cfg.token_watchdog {
            let timer = ctx.set_timer(
                from,
                SimDuration::from_secs_f64(self.cfg.watchdog_timeout),
                key(K_WATCHDOG, token.spec.qid, token.sector as u32),
            );
            let old = self.watchdogs.insert(
                (token.spec.qid, token.sector),
                Watchdog {
                    holder: from,
                    sent_to: to,
                    token: token.clone(),
                    finished: false,
                    timer,
                },
            );
            if let Some(old) = old {
                ctx.cancel_timer(old.timer);
            }
        }
        ctx.record_proto(
            from,
            ProtoEvent::TokenHandoff {
                qid: token.spec.qid,
                attempt: token.spec.attempt,
                sector: token.sector,
                epoch: token.epoch,
                to,
                frontier: token.frontier,
            },
        );
        self.send(ctx, from, to, DiknnMsg::Token(Box::new(token)));
    }

    // ---------- phase 1: routing --------------------------------------

    fn issue_query(&mut self, ctx: &mut Ctx<DiknnMsg>, req_idx: usize) {
        let req = self.requests[req_idx];
        let qid = self.outcomes.len() as u32;
        self.outcomes.push(QueryOutcome {
            qid,
            sink: req.sink,
            q: req.q,
            k: req.k,
            issued_at: ctx.now(),
            completed_at: None,
            answer: Vec::new(),
            boundary_radius: 0.0,
            final_radius: 0.0,
            routing_hops: 0,
            parts_expected: self.cfg.sectors as u32,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        });
        if self.cfg.serving.enabled {
            self.serve_query(ctx, qid);
        } else {
            self.launch_query(ctx, qid);
        }
    }

    /// Start executing query `qid` (routing → dissemination). With the
    /// serving layer on this runs only after admission; otherwise it is the
    /// unconditional continuation of `issue_query`.
    fn launch_query(&mut self, ctx: &mut Ctx<DiknnMsg>, qid: u32) {
        let (sink, q, k) = {
            let o = &self.outcomes[qid as usize];
            (o.sink, o.q, o.k)
        };
        let spec = QuerySpec {
            qid,
            sink,
            sink_pos: ctx.position(sink),
            q,
            k: k.max(1) as u32,
            issued_at: ctx.now(),
            attempt: 0,
        };
        self.sinks.insert(
            qid,
            SinkState {
                expected: self.cfg.sectors as u32,
                merged: CandidateSet::new(spec.k as usize),
                returned: 0,
                explored: 0,
                max_final_radius: 0.0,
                last_merge_at: ctx.now(),
                done: false,
                attempt: 0,
                counted: BTreeSet::new(),
            },
        );
        ctx.set_timer(
            sink,
            SimDuration::from_secs_f64(self.cfg.sink_timeout),
            key(K_SINK_TIMEOUT, qid, 0),
        );
        ctx.record_proto(
            sink,
            ProtoEvent::QueryIssued {
                qid,
                attempt: 0,
                k: spec.k,
            },
        );
        let msg = QueryMsg {
            spec,
            gpsr: GpsrHeader::new(q),
            list: Vec::new(),
        };
        self.handle_query_arrival(ctx, sink, msg, None);
    }

    // ---------- serving layer (admission / merge / cache) --------------

    /// Re-rank a candidate pool against a (possibly different) query point
    /// and keep the best `k` — the exact per-query attribution step for
    /// merged itineraries and cache hits.
    fn rank_for(pool: &[Candidate], q: Point, k: usize) -> Vec<NodeId> {
        let mut best = CandidateSet::new(k.max(1));
        for c in pool {
            best.insert(Candidate {
                id: c.id,
                position: c.position,
                dist: c.position.dist(q),
            });
        }
        best.ids()
    }

    /// The serving decision for an arrived (or deferral-retried) query, in
    /// priority order: cache hit → spatial merge → admission.
    fn serve_query(&mut self, ctx: &mut Ctx<DiknnMsg>, qid: u32) {
        let (sink, q, k) = {
            let o = &self.outcomes[qid as usize];
            (o.sink, o.q, o.k)
        };
        let now = ctx.now();

        // 1. Result cache: answer from a fresh completed query at (nearly)
        // the same point, inside both the TTL and the mobility-drift bound.
        if self.cfg.serving.cache_radius_m > 0.0 {
            let ttl = self.cfg.serving.cache_ttl_s;
            let max_age = if self.cfg.serving.drift_rate_mps > 0.0 {
                ttl.min(self.cfg.serving.cache_drift_m / self.cfg.serving.drift_rate_mps)
            } else {
                ttl
            };
            self.serving
                .cache
                .retain(|e| (now - e.completed_at).as_secs_f64() <= max_age);
            let radius = self.cfg.serving.cache_radius_m;
            let hit = self
                .serving
                .cache
                .iter()
                .filter(|e| e.k >= k && e.q.dist(q) <= radius)
                .min_by(|a, b| {
                    a.q.dist(q)
                        .total_cmp(&b.q.dist(q))
                        .then(b.completed_at.cmp(&a.completed_at))
                        .then(a.src_qid.cmp(&b.src_qid))
                });
            if let Some(entry) = hit {
                let age = (now - entry.completed_at).as_secs_f64();
                let answer = Self::rank_for(&entry.candidates, q, k);
                let src = entry.src_qid;
                let o = &mut self.outcomes[qid as usize];
                o.answer = answer.clone();
                o.completed_at = Some(now);
                o.status = QueryStatus::CacheHit;
                ctx.record_proto(
                    sink,
                    ProtoEvent::CacheServed {
                        qid,
                        src,
                        age_s: age,
                        ttl_s: ttl,
                    },
                );
                ctx.record_proto(
                    sink,
                    ProtoEvent::QueryDone {
                        qid,
                        status: QueryStatus::CacheHit.label(),
                        answer,
                    },
                );
                self.serving.defers.remove(&qid);
                return;
            }
        }

        // 2. Spatial merge: ride an in-flight query whose itinerary covers
        // this one. The member is answered from the host's return leg with
        // per-query re-ranking; it never emits a frame of its own.
        if self.cfg.serving.merge_radius_m > 0.0 {
            let radius = self.cfg.serving.merge_radius_m;
            let host = self
                .serving
                .active
                .iter()
                .copied()
                .filter(|&h| self.sinks.get(&h).is_some_and(|s| !s.done))
                .filter(|&h| {
                    let ho = &self.outcomes[h as usize];
                    ho.k >= k && ho.q.dist(q) <= radius
                })
                .min_by(|&a, &b| {
                    let da = self.outcomes[a as usize].q.dist(q);
                    let db = self.outcomes[b as usize].q.dist(q);
                    da.total_cmp(&db).then(a.cmp(&b))
                });
            if let Some(host) = host {
                // Keep enough merged candidates at the host's sink for the
                // member's re-rank: the host's own top-k around *its* point
                // might drop the member's nearest nodes.
                if let Some(state) = self.sinks.get_mut(&host) {
                    let wide = state.merged.k() + k;
                    state.merged.widen(wide);
                }
                self.serving.members.entry(host).or_default().push(qid);
                self.serving.host_of.insert(qid, host);
                self.serving.defers.remove(&qid);
                ctx.record_proto(sink, ProtoEvent::QueryMerged { qid, host });
                return;
            }
        }

        // 3. Admission: bounded-deferral concurrency ceiling fed by the
        // deterministic load signal.
        let depth = self.serving.load.depth();
        if depth >= self.cfg.serving.max_in_flight {
            let defers = self.serving.defers.get(&qid).copied().unwrap_or(0);
            if defers >= self.cfg.serving.max_admission_defers {
                // Out of patience: terminal rejection, never executed.
                self.serving.defers.remove(&qid);
                let o = &mut self.outcomes[qid as usize];
                o.status = QueryStatus::Rejected;
                ctx.record_proto(
                    sink,
                    ProtoEvent::QueryRejected {
                        qid,
                        depth,
                        terminal: true,
                    },
                );
                ctx.record_proto(
                    sink,
                    ProtoEvent::QueryDone {
                        qid,
                        status: QueryStatus::Rejected.label(),
                        answer: Vec::new(),
                    },
                );
            } else {
                self.serving.defers.insert(qid, defers + 1);
                ctx.record_proto(
                    sink,
                    ProtoEvent::QueryRejected {
                        qid,
                        depth,
                        terminal: false,
                    },
                );
                let wait = self.serving.load.retry_after(
                    now,
                    self.cfg.serving.retry_after_s,
                    self.cfg.serving.max_retry_after_s,
                );
                ctx.set_timer(sink, SimDuration::from_secs_f64(wait), key(K_ADMIT, qid, 0));
            }
            return;
        }
        self.serving.defers.remove(&qid);
        self.serving.load.admit(now);
        self.serving.active.insert(qid);
        ctx.record_proto(
            sink,
            ProtoEvent::QueryAdmitted {
                qid,
                depth: self.serving.load.depth(),
            },
        );
        self.launch_query(ctx, qid);
    }

    /// A deferred query's retry-after backoff expired: run the serving
    /// decision again (by now a cache entry or a mergeable host may exist,
    /// or load may have drained).
    fn admission_retry(&mut self, ctx: &mut Ctx<DiknnMsg>, qid: u32) {
        let still_waiting = self.outcomes[qid as usize].status == QueryStatus::Pending
            && !self.serving.active.contains(&qid)
            && !self.serving.host_of.contains_key(&qid);
        if still_waiting {
            self.serve_query(ctx, qid);
        }
    }

    /// Settle serving-layer bookkeeping when admitted query `qid`
    /// finalises: feed the load signal, split the merged candidate pool to
    /// every member with exact per-query re-ranking, and (for complete
    /// answers) publish a cache entry.
    fn settle_serving(&mut self, ctx: &mut Ctx<DiknnMsg>, qid: u32) {
        if !self.cfg.serving.enabled || !self.serving.active.remove(&qid) {
            return;
        }
        self.serving.load.complete(ctx.now());
        let (pool, completed_at, host_completed) = {
            let state = &self.sinks[&qid];
            let o = &self.outcomes[qid as usize];
            (
                state.merged.items().to_vec(),
                o.completed_at,
                o.status == QueryStatus::Completed,
            )
        };
        for member in self.serving.members.remove(&qid).unwrap_or_default() {
            self.serving.host_of.remove(&member);
            let (m_sink, m_q, m_k) = {
                let o = &self.outcomes[member as usize];
                (o.sink, o.q, o.k)
            };
            let answer = Self::rank_for(&pool, m_q, m_k);
            let o = &mut self.outcomes[member as usize];
            o.answer = answer.clone();
            o.completed_at = completed_at;
            o.status = QueryStatus::Merged;
            ctx.record_proto(
                m_sink,
                ProtoEvent::QueryDone {
                    qid: member,
                    status: QueryStatus::Merged.label(),
                    answer,
                },
            );
        }
        if host_completed && self.cfg.serving.cache_radius_m > 0.0 {
            if let Some(completed_at) = completed_at {
                let o = &self.outcomes[qid as usize];
                self.serving.cache.push(CacheEntry {
                    src_qid: qid,
                    q: o.q,
                    k: o.k,
                    completed_at,
                    candidates: pool,
                });
                if self.serving.cache.len() > SERVING_CACHE_CAP {
                    let excess = self.serving.cache.len() - SERVING_CACHE_CAP;
                    self.serving.cache.drain(..excess);
                }
            }
        }
    }

    /// Count neighbours newly encountered relative to the previous hop:
    /// those farther than `r` from the previous hop's location (§4.1).
    fn encounter_count(&self, neighbors: &[diknn_sim::Neighbor], prev: Option<Point>) -> u32 {
        match prev {
            None => neighbors.len() as u32,
            Some(p) => neighbors
                .iter()
                .filter(|n| n.position.dist(p) > self.radio_range)
                .count() as u32,
        }
    }

    /// A node (sink or intermediate) has the query: append its hop record
    /// and either forward it or, as home node, start dissemination.
    fn handle_query_arrival(
        &mut self,
        ctx: &mut Ctx<DiknnMsg>,
        at: NodeId,
        mut msg: QueryMsg,
        from: Option<NodeId>,
    ) {
        self.query_excludes.remove(&msg.spec.qid);
        let neighbors = reliable(ctx, at);
        let prev_loc = msg.list.last().map(|h| h.loc);
        msg.list.push(HopRecord {
            loc: ctx.position(at),
            enc: self.encounter_count(&neighbors, prev_loc),
        });
        self.forward_query(ctx, at, msg, from);
    }

    fn forward_query(
        &mut self,
        ctx: &mut Ctx<DiknnMsg>,
        at: NodeId,
        msg: QueryMsg,
        from: Option<NodeId>,
    ) {
        let neighbors = reliable(ctx, at);
        let exclude = self
            .query_excludes
            .get(&msg.spec.qid)
            .cloned()
            .unwrap_or_default();
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        // A local minimum within 1.5 radio ranges of q is accepted as the
        // home node: the paper's home node is merely the node closest to q,
        // and probing a small void with a perimeter walk can circle the
        // whole outer face for no accuracy gain.
        match plan_next_hop(
            at,
            ctx.position(at),
            &msg.gpsr,
            &neighbors,
            prev_pos,
            &exclude,
            1.5 * self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                self.route_trace.push((msg.spec.qid, ctx.position(at)));
                let fwd = QueryMsg {
                    gpsr: header,
                    ..msg
                };
                self.send(ctx, at, next, DiknnMsg::Query(fwd));
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                // This node is the home node (or the best we can do).
                self.begin_dissemination(ctx, at, msg);
            }
        }
    }

    // ---------- phase 2 + 3: boundary estimation & dissemination -------

    fn begin_dissemination(&mut self, ctx: &mut Ctx<DiknnMsg>, home: NodeId, msg: QueryMsg) {
        let spec = msg.spec;
        let boundary = knnb(&msg.list, spec.q, self.radio_range, spec.k as usize);
        let field = ctx.config().field;
        let max_r = (field.width().powi(2) + field.height().powi(2)).sqrt();
        let radius = boundary.radius.clamp(self.radio_range * 0.5, max_r);
        ctx.record_proto(
            home,
            ProtoEvent::BoundaryEstimated {
                qid: spec.qid,
                attempt: spec.attempt,
                radius,
            },
        );
        if let Some(o) = self.outcomes.get_mut(spec.qid as usize) {
            o.boundary_radius = radius;
            o.final_radius = radius;
            o.routing_hops = msg.list.len().saturating_sub(1) as u32;
        }
        let itin = ItinerarySpec {
            origin: Self::origin_for(spec.qid, spec.attempt),
            ..ItinerarySpec::new(spec.q, radius, self.cfg.sectors, self.width())
        };
        // Bootstrap collection: one probe covering the home neighbourhood,
        // split per sector afterwards.
        let token = SectorToken::new(spec, BOOTSTRAP, itin, ctx.now());
        self.start_collection(ctx, home, token);
    }

    /// Begin data collection at Q-node `at` holding `token`.
    fn start_collection(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, token: SectorToken) {
        let window = match self.cfg.collection {
            CollectionScheme::TokenRing => 0.0,
            _ => self.cfg.collection_unit * self.cfg.contention_slots,
        };
        let probe = ProbeMsg {
            qid: token.spec.qid,
            sector: token.sector,
            attempt: token.spec.attempt,
            qnode: at,
            qnode_pos: ctx.position(at),
            q: token.spec.q,
            radius: token.itin.radius,
            ref_angle: Self::origin_for(token.spec.qid, token.spec.attempt),
            window,
            counts: if token.sector == BOOTSTRAP {
                Vec::new()
            } else {
                token.advertised_counts()
            },
        };
        self.broadcast(ctx, at, DiknnMsg::Probe(probe));
        let qid = token.spec.qid;
        let sector = token.sector;
        self.collecting.insert(
            (qid, sector),
            Collecting {
                node: at,
                token,
                heard: Vec::new(),
                polled: false,
                bootstrap_replies: Vec::new(),
                bootstrap_speeds: Vec::new(),
            },
        );
        // Collection window plus slack for the last reply's airtime.
        let wait = window + self.cfg.collection_unit;
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(wait),
            key(K_COLLECT, qid, sector as u32),
        );
    }

    /// The collection window (or poll round) of `(qid, sector)` ended at
    /// node `at` (where the timer fired).
    fn collection_done(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, qid: u32, sector: u8) {
        // A watchdog re-issue or a sink retry can start a fresh collection
        // for the same key at another node while a stale timer from the
        // superseded one is still queued — only the current Q-node's timer
        // may pop the entry.
        match self.collecting.get(&(qid, sector)) {
            Some(c) if c.node == at => {}
            _ => return,
        }
        let Some(mut coll) = self.collecting.remove(&(qid, sector)) else {
            return;
        };
        // Combined / token-ring: poll neighbours inside the boundary that
        // have not replied yet, then wait one more round.
        if !coll.polled && self.cfg.collection != CollectionScheme::Contention {
            let neighbors = reliable(ctx, at);
            let q = coll.token.spec.q;
            let radius = coll.token.itin.radius;
            let attempt = coll.token.spec.attempt;
            // Poll in-boundary neighbours we have not heard that either
            // never responded this attempt, or responded to *this* sector
            // (meaning their reply was lost to a collision and only a
            // directed poll can recover the data). Nodes that answered
            // another sector of the same attempt are left alone.
            let targets: Vec<NodeId> = neighbors
                .iter()
                .filter(|n| n.position.dist(q) <= radius)
                .filter(|n| !coll.heard.contains(&n.id))
                .filter(|n| {
                    self.responded
                        .get(&(qid, n.id.0))
                        .is_none_or(|&(a, s)| a != attempt || s == sector)
                })
                .map(|n| n.id)
                .collect();
            if !targets.is_empty() {
                for &t in &targets {
                    let poll = PollMsg {
                        qid,
                        sector,
                        attempt,
                        qnode: at,
                        q,
                        radius,
                    };
                    self.send(ctx, at, t, DiknnMsg::Poll(poll));
                }
                coll.polled = true;
                let wait = self.cfg.collection_unit * (targets.len() as f64 + 1.0);
                self.collecting.insert((qid, sector), coll);
                ctx.set_timer(
                    at,
                    SimDuration::from_secs_f64(wait),
                    key(K_COLLECT, qid, sector as u32),
                );
                return;
            }
        }
        if sector == BOOTSTRAP {
            self.split_bootstrap(ctx, at, coll);
        } else {
            self.advance_token(ctx, at, coll.token);
        }
    }

    /// Split the home node's bootstrap collection into the `S` sector
    /// tokens and launch each sub-itinerary.
    fn split_bootstrap(&mut self, ctx: &mut Ctx<DiknnMsg>, home: NodeId, coll: Collecting) {
        let base = coll.token;
        let spec = base.spec;
        let s = self.cfg.sectors;
        let mut tokens: Vec<SectorToken> = (0..s)
            .map(|i| {
                let mut t = SectorToken::new(spec, i as u8, base.itin, base.started_at);
                t.merge_counts(&base.sector_counts);
                t
            })
            .collect();
        for (cand, speed) in coll
            .bootstrap_replies
            .iter()
            .zip(coll.bootstrap_speeds.iter())
        {
            let theta = spec.q.angle_to(cand.position);
            let idx = angle::sector_index(theta, base.itin.origin, s);
            let t = &mut tokens[idx];
            t.candidates.insert(*cand);
            t.explored += 1;
            t.max_speed = t.max_speed.max(*speed);
        }
        for token in tokens {
            self.advance_token(ctx, home, token);
        }
    }

    /// A watchdog re-issue bumps the sector's current epoch; any
    /// lower-epoch copy still in flight (a carrier that was mid-collection
    /// when its sender's watchdog fired) is stale. Receipt-side epoch
    /// suppression already drops stale *incoming* tokens; this is the
    /// send-side twin. A stale carrier that kept going would clobber the
    /// live chain's watchdog with its own handoff, and when that hijacked
    /// watchdog fired it would re-issue a duplicate of the live epoch —
    /// forking token custody across two same-epoch chains.
    fn token_is_stale(&self, token: &SectorToken) -> bool {
        let ek = (token.spec.qid, token.spec.attempt, token.sector);
        token.epoch < self.token_epochs.get(&ek).copied().unwrap_or(0)
    }

    /// Core traversal step: decide, then pick and forward to the next
    /// Q-node (or finish the sector).
    fn advance_token(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, mut token: SectorToken) {
        if self.token_is_stale(&token) {
            return; // superseded by a re-issue while we were collecting
        }
        let qid = token.spec.qid;
        let sector = token.sector;
        if token.hops >= MAX_TOKEN_HOPS {
            return self.finish_sector(ctx, at, token);
        }
        let mut poly = self.polyline_for(&token);
        // Decision loop: handle end-of-itinerary extensions.
        loop {
            let at_end = token.frontier >= poly.length() - 1e-6;
            match token.decide(&self.cfg, ctx.now(), at_end) {
                TokenDecision::Continue => break,
                TokenDecision::FinishEarly | TokenDecision::Finish => {
                    return self.finish_sector(ctx, at, token);
                }
                TokenDecision::Extend(r, reason) => {
                    match reason {
                        ExtendReason::Assurance => token.assured = true,
                        ExtendReason::UnderCount => token.explored_at_extend = Some(token.explored),
                    }
                    ctx.record_proto(
                        at,
                        ProtoEvent::BoundaryExtended {
                            qid,
                            attempt: token.spec.attempt,
                            sector,
                            old_radius: token.itin.radius,
                            new_radius: r,
                        },
                    );
                    token.itin.radius = r;
                    poly = self.polyline_for(&token);
                }
            }
        }

        // Rendezvous broadcast when passing near a sector border (§4.3).
        self.maybe_rendezvous(ctx, at, &mut token);

        let my_pos = ctx.position(at);
        let neighbors = reliable(ctx, at);
        let exclude = self
            .token_excludes
            .get(&(qid, sector))
            .cloned()
            .unwrap_or_default();
        let step = self.radio_range * 0.6;
        let w = token.itin.width;

        // An active void detour (perimeter forwarding mode) continues until
        // the target comes within radio reach.
        if let Some((detour_arclen, header)) = token.detour {
            let target = poly.point_at(detour_arclen);
            if my_pos.dist(target) <= self.radio_range {
                // Crossed the void: resume the itinerary from the target.
                token.frontier = token.frontier.max(detour_arclen);
                token.detour = None;
            } else {
                match plan_next_hop(at, my_pos, &header, &neighbors, None, &exclude, 0.0) {
                    RouteStep::Forward { next, header } => {
                        token.detour = Some((detour_arclen, header));
                        token.hops += 1;
                        self.token_trace.push(TokenHop {
                            qid: token.spec.qid,
                            sector: token.sector,
                            hop: token.hops,
                            from: my_pos,
                            to: poly.point_at(detour_arclen),
                            frontier: token.frontier,
                            radius: token.itin.radius,
                        });
                        self.send_token(ctx, at, next, token);
                        return;
                    }
                    RouteStep::Arrived | RouteStep::NoRoute => {
                        // Even perimeter forwarding cannot reach the target
                        // region (isolated segment, the Figure 7 accuracy
                        // loss). Skip past it or finish.
                        token.detour = None;
                        if detour_arclen >= poly.length() - 1e-6 {
                            return self.finish_sector(ctx, at, token);
                        }
                        token.frontier = token.frontier.max(detour_arclen);
                        return self.advance_token(ctx, at, token);
                    }
                }
            }
        }

        let mut target_arclen = token.frontier + step;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > 200 {
                return self.finish_sector(ctx, at, token);
            }
            let end_reached = target_arclen >= poly.length();
            let ta = target_arclen.min(poly.length());
            let target = poly.point_at(ta);
            let my_d = my_pos.dist(target);

            // Choose the neighbour closest to the target that makes real
            // progress toward it.
            let next = neighbors
                .iter()
                .filter(|n| !exclude.contains(&n.id))
                .filter(|n| n.position.dist(target) < my_d - 0.5)
                .min_by(|a, b| {
                    a.position
                        .dist(target)
                        .total_cmp(&b.position.dist(target))
                        .then(a.id.cmp(&b.id))
                });

            if let Some(n) = next {
                // Record any targets skipped while probing ahead, so the
                // next Q-node does not restart at a target already proven
                // unreachable here (which would ping-pong the token).
                token.frontier = token.frontier.max(ta - step);
                // Advance further: fully when the chosen Q-node sits on the
                // itinerary, conservatively while detouring around a void.
                let proj = poly.project_from(n.position, token.frontier);
                if proj.dist <= w {
                    token.frontier = token.frontier.max(proj.arclen);
                } else if my_d <= self.radio_range {
                    token.frontier = token.frontier.max(ta);
                }
                token.hops += 1;
                self.token_trace.push(TokenHop {
                    qid: token.spec.qid,
                    sector: token.sector,
                    hop: token.hops,
                    from: my_pos,
                    to: n.position,
                    frontier: token.frontier,
                    radius: token.itin.radius,
                });
                self.send_token(ctx, at, n.id, token);
                return;
            }

            if my_d <= self.radio_range {
                // Nobody better but the target is inside my own radio disc:
                // my probe already covered it; skip ahead.
                token.frontier = ta;
                if end_reached {
                    // Reached the end standing here: re-run the decision.
                    return self.advance_token(ctx, at, token);
                }
                target_arclen = token.frontier + step;
                continue;
            }

            // Itinerary void: probe farther along, bounded; then switch to
            // perimeter forwarding mode (geo-route the token around the
            // vacancy toward the far target, §5.2). Targets outside the
            // field hold no nodes — skip them instead of detouring.
            target_arclen += step;
            if target_arclen - token.frontier > 3.0 * self.radio_range || end_reached {
                if ctx.config().field.contains(target) {
                    token.detour = Some((ta, diknn_routing::GpsrHeader::with_ttl(target, 24)));
                    return self.advance_token(ctx, at, token);
                }
                if end_reached {
                    return self.finish_sector(ctx, at, token);
                }
                // Skip the out-of-field stretch and keep probing.
                token.frontier = token.frontier.max(ta);
                target_arclen = token.frontier + step;
            }
        }
    }

    fn polyline_for(&self, token: &SectorToken) -> Polyline {
        if token.sector == BOOTSTRAP {
            return Polyline::new([token.spec.q]);
        }
        sub_itinerary(&token.itin, token.sector as usize, token.reversed())
    }

    fn maybe_rendezvous(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, token: &mut SectorToken) {
        if !self.cfg.rendezvous || token.sector == BOOTSTRAP {
            return;
        }
        if token.frontier - token.last_rendezvous < token.itin.width {
            return;
        }
        let sectors = diknn_geom::Sector::partition(
            token.spec.q,
            token.itin.radius,
            self.cfg.sectors,
            token.itin.origin,
        );
        let sect = &sectors[token.sector as usize];
        let pos = ctx.position(at);
        if sect.dist_to_border(pos) <= token.itin.width {
            let msg = RendezvousMsg {
                qid: token.spec.qid,
                counts: token.advertised_counts(),
            };
            self.broadcast(ctx, at, DiknnMsg::Rendezvous(msg));
            token.last_rendezvous = token.frontier;
        }
    }

    fn finish_sector(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, token: SectorToken) {
        if self.token_is_stale(&token) {
            // A re-issued chain owns this sector now; finishing from the
            // stale copy would cancel the live chain's watchdog and report
            // a superseded traversal as the sector's result.
            return;
        }
        ctx.record_proto(
            at,
            ProtoEvent::SectorFinished {
                qid: token.spec.qid,
                attempt: token.spec.attempt,
                sector: token.sector,
                epoch: token.epoch,
            },
        );
        // The traversal is over; any watchdog still watching a handoff of
        // this sector is moot.
        if let Some(w) = self.watchdogs.remove(&(token.spec.qid, token.sector)) {
            ctx.cancel_timer(w.timer);
        }
        let result = ResultMsg {
            spec: token.spec,
            sector: token.sector,
            gpsr: GpsrHeader::new(token.spec.sink_pos),
            candidates: token.candidates.clone(),
            explored: token.explored,
            final_radius: token.itin.radius,
            itinerary_hops: token.hops,
        };
        // The result's journey home is as mortal as the token was: keep
        // watching until the sink merges this sector, re-sending on
        // silence (a relay crashing mid-route otherwise loses the sector).
        // `sink_merge` disarms; armed before routing so a synchronous
        // merge (sink is `at` or a direct neighbour) cleans up naturally.
        if self.cfg.token_watchdog {
            let pending = self.sinks.get(&token.spec.qid).is_some_and(|s| {
                !s.done && !s.counted.contains(&(token.spec.attempt, token.sector))
            });
            if pending {
                let timer = ctx.set_timer(
                    at,
                    SimDuration::from_secs_f64(self.cfg.watchdog_timeout),
                    key(K_WATCHDOG, token.spec.qid, token.sector as u32),
                );
                self.watchdogs.insert(
                    (token.spec.qid, token.sector),
                    Watchdog {
                        holder: at,
                        sent_to: at,
                        token,
                        finished: true,
                        timer,
                    },
                );
            }
        }
        self.route_result(ctx, at, result, None);
    }

    // ---------- result return ----------------------------------------

    fn route_result(
        &mut self,
        ctx: &mut Ctx<DiknnMsg>,
        at: NodeId,
        msg: ResultMsg,
        from: Option<NodeId>,
    ) {
        if at == msg.spec.sink {
            return self.sink_merge(ctx, at, msg);
        }
        let neighbors = reliable(ctx, at);
        // If the sink is a direct neighbour, short-circuit.
        if neighbors.iter().any(|n| n.id == msg.spec.sink) {
            let sink = msg.spec.sink;
            return self.send(ctx, at, sink, DiknnMsg::Result(msg));
        }
        let exclude = self
            .result_excludes
            .get(&(msg.spec.qid, msg.sector))
            .cloned()
            .unwrap_or_default();
        let prev_pos = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &msg.gpsr,
            &neighbors,
            prev_pos,
            &exclude,
            self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                let fwd = ResultMsg {
                    gpsr: header,
                    ..msg
                };
                self.send(ctx, at, next, DiknnMsg::Result(fwd));
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                // Routed to the sink's last known position but the sink is
                // not in the local table (it moved, or its beacon was
                // missed). Last resort: transmit to it directly — the MAC
                // retries deliver it if it is still within radio reach.
                let sink = msg.spec.sink;
                self.send(ctx, at, sink, DiknnMsg::Result(msg));
            }
        }
    }

    fn sink_merge(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, msg: ResultMsg) {
        debug_assert_eq!(at, msg.spec.sink);
        let qid = msg.spec.qid;
        // The sector reported all the way back: its watchdog is moot.
        if let Some(w) = self.watchdogs.remove(&(qid, msg.sector)) {
            ctx.cancel_timer(w.timer);
        }
        let Some(state) = self.sinks.get_mut(&qid) else {
            return;
        };
        if state.done {
            return;
        }
        // Candidates are merged from any attempt and any duplicate (the
        // set union is idempotent and stale data is still real data), but
        // only the first result per (current attempt, sector) counts
        // toward completion.
        state.merged.merge(&msg.candidates);
        state.max_final_radius = state.max_final_radius.max(msg.final_radius);
        if msg.spec.attempt == state.attempt && state.counted.insert((msg.spec.attempt, msg.sector))
        {
            state.returned += 1;
            state.explored += msg.explored;
            state.last_merge_at = ctx.now();
        }
        let done = state.returned >= state.expected;
        ctx.record_proto(
            at,
            ProtoEvent::SinkMerge {
                qid,
                attempt: msg.spec.attempt,
                sector: msg.sector,
            },
        );
        if done {
            self.finalize(ctx, qid, false);
        }
    }

    /// Complete a query: all parts arrived, or the sink timeout fired.
    fn finalize(&mut self, ctx: &mut Ctx<DiknnMsg>, qid: u32, timed_out: bool) {
        let Some(state) = self.sinks.get_mut(&qid) else {
            return;
        };
        if state.done {
            return;
        }
        state.done = true;
        let outcome = &mut self.outcomes[qid as usize];
        outcome.parts_returned = state.returned;
        outcome.explored_nodes = state.explored;
        outcome.final_radius = state.max_final_radius.max(outcome.boundary_radius);
        outcome.answer = state.merged.ids();
        outcome.answer.truncate(outcome.k);
        if state.returned > 0 {
            // Completion moment: when the last merged partial arrived (the
            // timeout itself is bookkeeping, not protocol traffic).
            outcome.completed_at = Some(if timed_out {
                state.last_merge_at
            } else {
                ctx.now()
            });
        }
        outcome.status = if state.returned >= state.expected {
            QueryStatus::Completed
        } else if state.returned > 0 {
            QueryStatus::PartialTimeout
        } else {
            QueryStatus::TokenLost
        };
        ctx.record_proto(
            outcome.sink,
            ProtoEvent::QueryDone {
                qid,
                status: outcome.status.label(),
                answer: outcome.answer.clone(),
            },
        );
        // Drop any recovery state still alive for this query; pending
        // watchdog timers become harmless no-ops without their entries.
        self.watchdogs.retain(|&(q, _), _| q != qid);
        self.settle_serving(ctx, qid);
    }

    // ---------- fault recovery ----------------------------------------

    /// `sink_timeout` expired for `(qid, attempt)`. Total silence with
    /// retry budget left launches a fresh dissemination; anything else
    /// finalises with whatever partials arrived.
    fn sink_timeout(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, qid: u32, attempt: u8) {
        let retry = match self.sinks.get(&qid) {
            Some(s) if !s.done && s.attempt == attempt => {
                s.returned == 0 && (attempt as u32) < self.cfg.max_query_retries
            }
            _ => return,
        };
        if retry {
            self.retry_query(ctx, at, qid);
        } else {
            self.finalize(ctx, qid, true);
        }
    }

    /// Re-issue a silent query from the sink's *current* position with a
    /// rotated itinerary origin (bounded by `max_query_retries`).
    fn retry_query(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, qid: u32) {
        let attempt = {
            let Some(state) = self.sinks.get_mut(&qid) else {
                return;
            };
            state.attempt += 1;
            state.attempt
        };
        ctx.stats_mut().query_retries += 1;
        // Recovery state of the failed attempt must neither constrain nor
        // resurrect the new dissemination.
        let stale: Vec<TimerId> = self
            .watchdogs
            .iter()
            .filter(|(&(q, _), _)| q == qid)
            .map(|(_, w)| w.timer)
            .collect();
        for t in stale {
            ctx.cancel_timer(t);
        }
        self.watchdogs.retain(|&(q, _), _| q != qid);
        self.token_excludes.retain(|&(q, _), _| q != qid);
        self.result_excludes.retain(|&(q, _), _| q != qid);
        self.query_excludes.remove(&qid);
        let (sink, q, k) = {
            let o = &self.outcomes[qid as usize];
            (o.sink, o.q, o.k)
        };
        let spec = QuerySpec {
            qid,
            sink,
            sink_pos: ctx.position(sink),
            q,
            k: k.max(1) as u32,
            issued_at: ctx.now(),
            attempt,
        };
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(self.cfg.sink_timeout),
            key(K_SINK_TIMEOUT, qid, attempt as u32),
        );
        ctx.record_proto(
            at,
            ProtoEvent::QueryIssued {
                qid,
                attempt,
                k: spec.k,
            },
        );
        let msg = QueryMsg {
            spec,
            gpsr: GpsrHeader::new(q),
            list: Vec::new(),
        };
        self.handle_query_arrival(ctx, at, msg, None);
    }

    /// The watchdog at `at` saw no durable progress from the successor it
    /// handed `(qid, sector)` to: re-issue the saved token, or — with the
    /// re-issue budget exhausted — salvage its partial state.
    fn watchdog_fire(&mut self, ctx: &mut Ctx<DiknnMsg>, at: NodeId, qid: u32, sector: u8) {
        let Some(w) = self.watchdogs.remove(&(qid, sector)) else {
            return; // disarmed in time
        };
        if w.holder != at {
            // A later handoff re-armed the watch elsewhere; this timer is
            // stale.
            self.watchdogs.insert((qid, sector), w);
            return;
        }
        if self.sinks.get(&qid).is_none_or(|s| s.done) {
            return;
        }
        if self.token_is_stale(&w.token) {
            // The sector re-issued past this holder while its watch was
            // armed (a stale handoff had hijacked the slot): there is
            // nothing left to recover from this copy, and re-issuing it
            // would duplicate the live epoch.
            return;
        }
        let mut token = w.token;
        if w.finished {
            // The sector finished but its result never reached the sink —
            // the carrier likely died en route. Re-send it while the
            // re-issue budget lasts (finish_sector re-arms this watch).
            if token.reissues >= self.cfg.max_token_reissues {
                return; // budget gone: the sector stays partial
            }
            token.reissues += 1;
            ctx.stats_mut().tokens_reissued += 1;
            return self.finish_sector(ctx, at, token);
        }
        if token.reissues >= self.cfg.max_token_reissues {
            // Budget exhausted: report what the sector had at the handoff
            // rather than losing it outright.
            return self.finish_sector(ctx, at, token);
        }
        token.reissues += 1;
        token.epoch += 1;
        self.token_epochs
            .insert((qid, token.spec.attempt, sector), token.epoch);
        ctx.stats_mut().tokens_reissued += 1;
        ctx.record_proto(
            at,
            ProtoEvent::TokenReissued {
                qid,
                attempt: token.spec.attempt,
                sector,
                epoch: token.epoch,
            },
        );
        // The silent successor is suspect — avoid re-selecting it.
        self.token_excludes
            .entry((qid, sector))
            .or_default()
            .push(w.sent_to);
        self.advance_token(ctx, at, token);
    }
}

impl Protocol for Diknn {
    type Msg = DiknnMsg;

    fn on_start(&mut self, ctx: &mut Ctx<DiknnMsg>) {
        self.radio_range = ctx.config().radio_range;
        for (i, req) in self.requests.clone().into_iter().enumerate() {
            assert!(
                req.sink.index() < ctx.node_count(),
                "request sink out of range"
            );
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64(req.at),
                key(K_ISSUE, 0, i as u32),
            );
        }
    }

    fn on_timer(&mut self, at: NodeId, timer_key: u64, ctx: &mut Ctx<DiknnMsg>) {
        match key_kind(timer_key) {
            K_ISSUE => self.issue_query(ctx, key_aux(timer_key) as usize),
            K_COLLECT => {
                self.collection_done(ctx, at, key_qid(timer_key), key_aux(timer_key) as u8)
            }
            K_REPLY => {
                let qid = key_qid(timer_key);
                if let Some(pending) = self.pending_replies.remove(&(qid, at.0)) {
                    let cached = self
                        .rdv_cache
                        .get(&(qid, at.0))
                        .cloned()
                        .unwrap_or_default();
                    let reply = ReplyMsg {
                        qid,
                        sector: pending.sector,
                        responder: at,
                        position: ctx.position(at),
                        speed: ctx.speed(at),
                        cached_counts: cached,
                    };
                    self.send(ctx, at, pending.to, DiknnMsg::Reply(reply));
                }
            }
            K_SINK_TIMEOUT => {
                self.sink_timeout(ctx, at, key_qid(timer_key), key_aux(timer_key) as u8);
            }
            K_WATCHDOG => {
                self.watchdog_fire(ctx, at, key_qid(timer_key), key_aux(timer_key) as u8);
            }
            K_ADMIT => self.admission_retry(ctx, key_qid(timer_key)),
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &DiknnMsg, ctx: &mut Ctx<DiknnMsg>) {
        match msg {
            DiknnMsg::Query(m) => {
                self.handle_query_arrival(ctx, at, m.clone(), Some(from));
            }
            DiknnMsg::Token(t) => {
                // Duplicate suppression: a watchdog re-issue bumped the
                // epoch, so a lower-epoch copy still roaming is stale.
                let ek = (t.spec.qid, t.spec.attempt, t.sector);
                let cur = self.token_epochs.get(&ek).copied().unwrap_or(0);
                if t.epoch < cur {
                    return;
                }
                self.token_epochs.insert(ek, t.epoch);
                self.token_excludes.remove(&(t.spec.qid, t.sector));
                self.start_collection(ctx, at, (**t).clone());
            }
            DiknnMsg::Probe(p) => {
                // Cache the piggybacked sector counts regardless of whether
                // we reply: this is how rendezvous information crosses
                // sector borders.
                if !p.counts.is_empty() {
                    let entry = self.rdv_cache.entry((p.qid, at.0)).or_default();
                    for &(sct, c) in &p.counts {
                        match entry.iter_mut().find(|(s2, _)| *s2 == sct) {
                            Some((_, c2)) => *c2 = (*c2).max(c),
                            None => entry.push((sct, c)),
                        }
                    }
                }
                if p.window <= 0.0 {
                    return; // poll-only probe: stay silent
                }
                let my_pos = ctx.position(at);
                if my_pos.dist(p.q) > p.radius {
                    return;
                }
                if matches!(self.responded.get(&(p.qid, at.0)), Some(&(a, _)) if a == p.attempt) {
                    return; // one response per attempt per node
                }
                self.responded.insert((p.qid, at.0), (p.attempt, p.sector));
                // Contention timer ordered by the angle α from the probe's
                // reference line (§3.3).
                let alpha = angle::ccw_sweep(p.ref_angle, p.qnode_pos.angle_to(my_pos));
                let jitter: f64 = ctx.rng().gen_range(0.0..self.cfg.collection_unit * 0.25);
                let delay = p.window * (alpha / diknn_geom::TAU) + jitter;
                self.pending_replies.insert(
                    (p.qid, at.0),
                    PendingReply {
                        to: p.qnode,
                        sector: p.sector,
                    },
                );
                ctx.set_timer(
                    at,
                    SimDuration::from_secs_f64(delay),
                    key(K_REPLY, p.qid, 0),
                );
            }
            DiknnMsg::Poll(p) => {
                let my_pos = ctx.position(at);
                if my_pos.dist(p.q) > p.radius {
                    return;
                }
                // A directed poll from the sector we responded to means
                // that reply was lost — answer again. Polls from other
                // sectors of the same attempt are not answered twice; a
                // fresh attempt starts from a clean slate.
                match self.responded.get(&(p.qid, at.0)) {
                    Some(&(a, s)) if a == p.attempt && s != p.sector => return,
                    _ => {}
                }
                self.responded.insert((p.qid, at.0), (p.attempt, p.sector));
                // Cancel any still-pending contention reply to avoid
                // answering twice.
                self.pending_replies.remove(&(p.qid, at.0));
                let cached = self
                    .rdv_cache
                    .get(&(p.qid, at.0))
                    .cloned()
                    .unwrap_or_default();
                let reply = ReplyMsg {
                    qid: p.qid,
                    sector: p.sector,
                    responder: at,
                    position: my_pos,
                    speed: ctx.speed(at),
                    cached_counts: cached,
                };
                self.send(ctx, at, p.qnode, DiknnMsg::Reply(reply));
            }
            DiknnMsg::Reply(r) => {
                let ckey = (r.qid, r.sector);
                let Some(coll) = self.collecting.get_mut(&ckey) else {
                    return; // late reply, Q-node moved on
                };
                if coll.node != at {
                    return; // reply raced a token handoff
                }
                let cand = Candidate {
                    id: r.responder,
                    position: r.position,
                    dist: r.position.dist(coll.token.spec.q),
                };
                ctx.record_proto(
                    at,
                    ProtoEvent::CandidateHeard {
                        qid: r.qid,
                        attempt: coll.token.spec.attempt,
                        sector: r.sector,
                        responder: r.responder,
                        dist: cand.dist,
                        radius: coll.token.itin.radius,
                    },
                );
                if !coll.heard.contains(&r.responder) {
                    coll.heard.push(r.responder);
                    if ckey.1 == BOOTSTRAP {
                        coll.bootstrap_replies.push(cand);
                        coll.bootstrap_speeds.push(r.speed);
                    } else {
                        coll.token.explored += 1;
                    }
                }
                if ckey.1 != BOOTSTRAP {
                    coll.token.candidates.insert(cand);
                    coll.token.max_speed = coll.token.max_speed.max(r.speed);
                    coll.token.merge_counts(&r.cached_counts);
                } else {
                    coll.token.merge_counts(&r.cached_counts);
                }
            }
            DiknnMsg::Rendezvous(m) => {
                let entry = self.rdv_cache.entry((m.qid, at.0)).or_default();
                for &(s, c) in &m.counts {
                    match entry.iter_mut().find(|(s2, _)| *s2 == s) {
                        Some((_, c2)) => *c2 = (*c2).max(c),
                        None => entry.push((s, c)),
                    }
                }
            }
            DiknnMsg::Result(m) => {
                self.result_excludes.remove(&(m.spec.qid, m.sector));
                if at == m.spec.sink {
                    self.sink_merge(ctx, at, m.clone());
                } else {
                    self.route_result(ctx, at, m.clone(), Some(from));
                }
            }
        }
    }

    fn on_send_failed(&mut self, at: NodeId, to: NodeId, msg: &DiknnMsg, ctx: &mut Ctx<DiknnMsg>) {
        match msg {
            DiknnMsg::Query(m) => {
                self.query_excludes.entry(m.spec.qid).or_default().push(to);
                self.forward_query(ctx, at, m.clone(), None);
            }
            DiknnMsg::Token(t) => {
                let k = (t.spec.qid, t.sector);
                let excl = self.token_excludes.entry(k).or_default();
                excl.push(to);
                if excl.len() > 16 {
                    // Too many dead neighbours: give up on this sector here.
                    self.token_excludes.remove(&k);
                    return self.finish_sector(ctx, at, (**t).clone());
                }
                self.advance_token(ctx, at, (**t).clone());
            }
            DiknnMsg::Result(m) => {
                let k = (m.spec.qid, m.sector);
                let excl = self.result_excludes.entry(k).or_default();
                excl.push(to);
                if excl.len() > 16 {
                    self.result_excludes.remove(&k);
                    return; // partial result lost
                }
                self.route_result(ctx, at, m.clone(), None);
            }
            // Lost replies/polls are data loss the protocol tolerates.
            DiknnMsg::Reply(_) | DiknnMsg::Poll(_) => {}
            DiknnMsg::Probe(_) | DiknnMsg::Rendezvous(_) => {}
        }
    }
}

impl KnnProtocol for Diknn {
    fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    fn outcomes_mut(&mut self) -> &mut [QueryOutcome] {
        &mut self.outcomes
    }

    fn finish(&mut self, ctx: &Ctx<DiknnMsg>) {
        if self.cfg.serving.enabled {
            // Merge members whose host never finalised before the run
            // ended: split whatever the host's sink has merged so far.
            let orphans: Vec<(u32, u32)> =
                self.serving.host_of.iter().map(|(&m, &h)| (m, h)).collect();
            for (member, host) in orphans {
                if self.outcomes[member as usize].status != QueryStatus::Pending {
                    continue;
                }
                let (m_q, m_k) = {
                    let o = &self.outcomes[member as usize];
                    (o.q, o.k)
                };
                let answer = self
                    .sinks
                    .get(&host)
                    .map(|s| Self::rank_for(s.merged.items(), m_q, m_k))
                    .unwrap_or_default();
                let o = &mut self.outcomes[member as usize];
                o.answer = answer;
                o.status = QueryStatus::Merged;
            }
            self.serving.host_of.clear();
            self.serving.members.clear();
            // Arrivals still parked behind an admission backoff when time
            // ran out were never executed: that is a rejection, not a loss
            // (a dead sink still reads as sink-unreachable below).
            let waiting: Vec<u32> = self.serving.defers.keys().copied().collect();
            for qid in waiting {
                let o = &mut self.outcomes[qid as usize];
                if o.status == QueryStatus::Pending && ctx.is_alive(o.sink) {
                    o.status = QueryStatus::Rejected;
                }
            }
            self.serving.defers.clear();
        }
        // Default classification for everything still pending (mirrors the
        // trait's fallback, which an override cannot delegate to).
        for o in self.outcomes_mut() {
            if o.status != QueryStatus::Pending {
                continue;
            }
            o.status = if o.completed_at.is_some() {
                if o.parts_returned >= o.parts_expected {
                    QueryStatus::Completed
                } else {
                    QueryStatus::PartialTimeout
                }
            } else if !ctx.is_alive(o.sink) {
                QueryStatus::SinkUnreachable
            } else if o.parts_returned > 0 {
                QueryStatus::PartialTimeout
            } else {
                QueryStatus::TokenLost
            };
        }
    }
}

/// Snapshot/restore of every mutable protocol field, in declaration order.
/// `cfg` is deliberately excluded: the restoring caller re-supplies the
/// configuration and the engine-level fingerprint guards against mixups.
/// Any change to this field list requires a [`diknn_sim::SNAP_VERSION`]
/// bump.
impl diknn_snap::SnapState for Diknn {
    fn snap_state(&self, w: &mut diknn_snap::SnapWriter) {
        self.requests.snap(w);
        self.outcomes.snap(w);
        self.sinks.snap(w);
        self.collecting.snap(w);
        self.pending_replies.snap(w);
        self.responded.snap(w);
        self.rdv_cache.snap(w);
        self.token_excludes.snap(w);
        self.query_excludes.snap(w);
        self.result_excludes.snap(w);
        self.watchdogs.snap(w);
        self.token_epochs.snap(w);
        self.serving.snap(w);
        self.radio_range.snap(w);
        for v in &self.tx_by_kind {
            w.put_u64(*v);
        }
        self.token_trace.snap(w);
        self.route_trace.snap(w);
    }

    fn restore_state(
        &mut self,
        r: &mut diknn_snap::SnapReader<'_>,
    ) -> Result<(), diknn_snap::SnapError> {
        self.requests = Snap::unsnap(r)?;
        self.outcomes = Snap::unsnap(r)?;
        self.sinks = Snap::unsnap(r)?;
        self.collecting = Snap::unsnap(r)?;
        self.pending_replies = Snap::unsnap(r)?;
        self.responded = Snap::unsnap(r)?;
        self.rdv_cache = Snap::unsnap(r)?;
        self.token_excludes = Snap::unsnap(r)?;
        self.query_excludes = Snap::unsnap(r)?;
        self.result_excludes = Snap::unsnap(r)?;
        self.watchdogs = Snap::unsnap(r)?;
        self.token_epochs = Snap::unsnap(r)?;
        self.serving = Snap::unsnap(r)?;
        self.radio_range = Snap::unsnap(r)?;
        for v in &mut self.tx_by_kind {
            *v = r.take_u64()?;
        }
        self.token_trace = Snap::unsnap(r)?;
        self.route_trace = Snap::unsnap(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_key_round_trips() {
        let k = key(K_COLLECT, 0xDEAD_BEEF, 0x12_3456);
        assert_eq!(key_kind(k), K_COLLECT);
        assert_eq!(key_qid(k), 0xDEAD_BEEF);
        assert_eq!(key_aux(k), 0x12_3456);
    }

    #[test]
    fn origin_is_deterministic_and_spread() {
        let a = Diknn::origin_for(1, 0);
        let b = Diknn::origin_for(1, 0);
        let c = Diknn::origin_for(2, 0);
        assert_eq!(a, b);
        assert!(diknn_geom::angle::diff(a, c) > 0.1);
    }

    #[test]
    fn retry_attempts_rotate_the_origin() {
        let a = Diknn::origin_for(3, 0);
        let b = Diknn::origin_for(3, 1);
        assert!(
            diknn_geom::angle::diff(a, b) > 0.5,
            "retry must take a different itinerary"
        );
    }

    // ---------- serving-layer edge cases ------------------------------
    //
    // These drive `serve_query` directly through `Simulator::drive`,
    // fabricating protocol state to pin the exact boundary behaviour that
    // end-to-end runs cannot time precisely (integer-ns ages, hosts that
    // never finalise).

    use crate::config::ServingConfig;
    use diknn_mobility::StaticMobility;
    use diknn_sim::{SharedMobility, SimConfig, Simulator};
    use std::sync::Arc;

    fn pending_outcome(qid: u32, sink: NodeId, q: Point, k: usize, at: SimTime) -> QueryOutcome {
        QueryOutcome {
            qid,
            sink,
            q,
            k,
            issued_at: at,
            completed_at: None,
            answer: Vec::new(),
            boundary_radius: 0.0,
            final_radius: 0.0,
            routing_hops: 0,
            parts_expected: 0,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        }
    }

    /// A 3-node static simulator advanced to t = 10 s, so `ctx.now()` is a
    /// realistic mid-run instant when the closures below fabricate state.
    fn tiny_serving_sim(serving: ServingConfig) -> Simulator<Diknn> {
        let cfg = DiknnConfig {
            serving,
            ..DiknnConfig::default()
        };
        let plans: Vec<SharedMobility> = (0..3)
            .map(|i| {
                Arc::new(StaticMobility::new(Point::new(
                    20.0 + 30.0 * i as f64,
                    50.0,
                ))) as SharedMobility
            })
            .collect();
        let sim_cfg = SimConfig {
            field: diknn_geom::Rect::new(0.0, 0.0, 100.0, 100.0),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(sim_cfg, plans, Diknn::new(cfg, Vec::new()), 9);
        sim.run_until(SimTime::from_secs_f64(10.0));
        sim
    }

    #[test]
    fn cache_hit_at_exact_ttl_expiry() {
        let serving = ServingConfig {
            drift_rate_mps: 0.0, // age bound is exactly the TTL
            cache_ttl_s: 2.0,
            ..ServingConfig::enabled()
        };
        let mut sim = tiny_serving_sim(serving);
        sim.drive(|p, ctx| {
            let now = ctx.now();
            // Entry whose age is exactly the TTL, to the nanosecond.
            let born = SimTime::from_nanos(now.as_nanos() - 2_000_000_000);
            p.serving.cache.push(CacheEntry {
                src_qid: 7,
                q: Point::new(50.0, 50.0),
                k: 8,
                completed_at: born,
                candidates: vec![
                    Candidate {
                        id: NodeId(1),
                        position: Point::new(50.0, 50.0),
                        dist: 0.0,
                    },
                    Candidate {
                        id: NodeId(2),
                        position: Point::new(80.0, 50.0),
                        dist: 30.0,
                    },
                ],
            });
            p.outcomes.push(pending_outcome(
                0,
                NodeId(0),
                Point::new(52.0, 50.0),
                2,
                now,
            ));
            p.serve_query(ctx, 0);
            assert_eq!(
                p.outcomes[0].status,
                QueryStatus::CacheHit,
                "an entry exactly at TTL age must still serve (inclusive bound)"
            );
            assert_eq!(p.outcomes[0].answer, vec![NodeId(1), NodeId(2)]);
            assert_eq!(p.outcomes[0].completed_at, Some(now));
        });
    }

    #[test]
    fn cache_entry_one_nanosecond_past_ttl_is_stale() {
        let serving = ServingConfig {
            drift_rate_mps: 0.0,
            cache_ttl_s: 2.0,
            ..ServingConfig::enabled()
        };
        let mut sim = tiny_serving_sim(serving);
        sim.drive(|p, ctx| {
            let now = ctx.now();
            let born = SimTime::from_nanos(now.as_nanos() - 2_000_000_001);
            p.serving.cache.push(CacheEntry {
                src_qid: 7,
                q: Point::new(50.0, 50.0),
                k: 8,
                completed_at: born,
                candidates: vec![Candidate {
                    id: NodeId(1),
                    position: Point::new(50.0, 50.0),
                    dist: 0.0,
                }],
            });
            p.outcomes.push(pending_outcome(
                0,
                NodeId(0),
                Point::new(52.0, 50.0),
                2,
                now,
            ));
            p.serve_query(ctx, 0);
            assert_ne!(
                p.outcomes[0].status,
                QueryStatus::CacheHit,
                "an entry 1 ns past the TTL must not serve"
            );
            assert!(
                p.serving.cache.is_empty(),
                "the stale entry must have been evicted by the retain pass"
            );
            // The miss falls through to admission and launches for real.
            assert!(p.serving.active.contains(&0));
        });
    }

    #[test]
    fn merge_member_attributed_when_host_never_finalises() {
        let serving = ServingConfig {
            merge_radius_m: 30.0,
            ..ServingConfig::enabled()
        };
        let mut sim = tiny_serving_sim(serving);
        let host_q = Point::new(50.0, 50.0);
        sim.drive(|p, ctx| {
            let now = ctx.now();
            // An in-flight host with a partially filled merged pool.
            p.outcomes
                .push(pending_outcome(0, NodeId(0), host_q, 4, now));
            p.serving.active.insert(0);
            let mut merged = CandidateSet::new(4);
            for (id, x) in [(1u32, 40.0), (2, 60.0), (3, 90.0)] {
                merged.insert(Candidate {
                    id: NodeId(id),
                    position: Point::new(x, 50.0),
                    dist: host_q.dist(Point::new(x, 50.0)),
                });
            }
            p.sinks.insert(
                0,
                SinkState {
                    expected: 4,
                    merged,
                    returned: 1,
                    explored: 3,
                    max_final_radius: 30.0,
                    last_merge_at: now,
                    done: false,
                    attempt: 0,
                    counted: BTreeSet::new(),
                },
            );
            // A nearby arrival merges onto it instead of launching.
            p.outcomes.push(pending_outcome(
                1,
                NodeId(1),
                Point::new(60.0, 50.0),
                2,
                now,
            ));
            p.serve_query(ctx, 1);
            assert_eq!(
                p.serving.host_of.get(&1),
                Some(&0),
                "member must attach to the in-flight host"
            );
            assert_eq!(p.outcomes[1].status, QueryStatus::Pending);
        });
        // The run ends with the host still in flight: `finish` must settle
        // the orphaned member from whatever the host's sink merged so far,
        // re-ranked for the member's own query point.
        let (mut protocol, ctx) = sim.into_parts();
        protocol.finish(&ctx);
        let member = &protocol.outcomes()[1];
        assert_eq!(member.status, QueryStatus::Merged);
        assert_eq!(
            member.answer,
            vec![NodeId(2), NodeId(1)],
            "answer must be ranked around the member's point, not the host's"
        );
        let host = &protocol.outcomes()[0];
        assert_eq!(
            host.status,
            QueryStatus::TokenLost,
            "the host itself keeps its own (failed) classification"
        );
    }
}
