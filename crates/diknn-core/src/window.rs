//! Itinerary-based window (range) queries — the \[31\] foundation DIKNN
//! builds on ("an infrastructure-free method was proposed in \[31\] but it
//! applies to window query only", §2).
//!
//! A window query asks for *all* sensor nodes inside an axis-aligned
//! rectangle. The itinerary is a horizontal comb sweep over the window:
//! parallel scanlines spaced `w` apart, connected at alternating ends —
//! the same coverage argument (`w = √3·r/2`) as DIKNN's sub-itineraries.
//!
//! This module provides the itinerary geometry plus the [`WindowQuery`]
//! protocol: route to the window's entry corner, sweep it with a single
//! Q-node token collecting responses, and route the result back to the
//! sink. It shares the simulator, GPSR and collection machinery with DIKNN
//! and serves as the `S = 1`-style ancestor in ablations.

use std::collections::{BTreeMap, BTreeSet};

use diknn_geom::{Point, Polyline, Rect};
use diknn_routing::{plan_next_hop, GpsrHeader, RouteStep};
use diknn_sim::{Ctx, NodeId, Protocol, SimDuration, SimTime};
use rand::Rng;

use crate::candidates::Candidate;

const K_ISSUE: u8 = 1;
const K_COLLECT: u8 = 2;
const K_REPLY: u8 = 3;

fn key(kind: u8, qid: u32, aux: u32) -> u64 {
    ((kind as u64) << 56) | ((qid as u64) << 24) | (aux as u64 & 0xFF_FFFF)
}

/// Build the comb-sweep itinerary over `window` with scanline spacing `w`.
/// The sweep starts at the bottom-left corner and serpentines upward.
pub fn window_itinerary(window: Rect, w: f64) -> Polyline {
    assert!(w > 0.0, "scanline spacing must be positive");
    assert!(!window.is_empty(), "empty window");
    let mut pts = Vec::new();
    // Scanlines at y = min + w/2, min + 3w/2, … covering the full height.
    let mut y = window.min_y + w / 2.0;
    let mut leftward = false;
    // Degenerate short windows still get one central scanline.
    if window.height() <= w {
        y = (window.min_y + window.max_y) / 2.0;
    }
    loop {
        let (x0, x1) = if leftward {
            (window.max_x, window.min_x)
        } else {
            (window.min_x, window.max_x)
        };
        pts.push(Point::new(x0, y));
        pts.push(Point::new(x1, y));
        leftward = !leftward;
        // Stop only once this scanline already covers the top edge;
        // otherwise place the next line, clamped so it never overshoots
        // (the final pair of lines may be closer than w, never farther).
        if y + w / 2.0 >= window.max_y - 1e-9 {
            break;
        }
        y = (y + w).min(window.max_y - w / 2.0);
    }
    Polyline::new(pts)
}

/// A window query request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRequest {
    /// Issue time in seconds.
    pub at: f64,
    pub sink: NodeId,
    pub window: Rect,
}

/// Outcome of a window query.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowOutcome {
    pub qid: u32,
    pub sink: NodeId,
    pub window: Rect,
    pub issued_at: SimTime,
    pub completed_at: Option<SimTime>,
    /// Nodes reported inside the window (with their reported positions).
    pub members: Vec<Candidate>,
    /// Q-node hops taken by the sweep.
    pub sweep_hops: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WSpec {
    qid: u32,
    sink: NodeId,
    sink_pos: Point,
    window: Rect,
}

/// Window-query wire messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowMsg {
    /// Routing phase toward the sweep entry point.
    Query { spec: WSpec, gpsr: GpsrHeader },
    /// Sweep token hopping Q-node to Q-node.
    Token {
        spec: WSpec,
        frontier: f64,
        members: Vec<Candidate>,
        hops: u32,
    },
    /// Q-node probe soliciting in-window responses.
    Probe {
        qid: u32,
        qnode: NodeId,
        window: Rect,
        win_secs: f64,
    },
    /// D-node response.
    Reply {
        qid: u32,
        node: NodeId,
        position: Point,
    },
    /// Final member list routed back to the sink.
    Result {
        spec: WSpec,
        gpsr: GpsrHeader,
        members: Vec<Candidate>,
        hops: u32,
    },
}

impl WindowMsg {
    /// Query id for per-query energy attribution (every window frame is
    /// query-scoped).
    fn qid(&self) -> u32 {
        match self {
            WindowMsg::Query { spec, .. }
            | WindowMsg::Token { spec, .. }
            | WindowMsg::Result { spec, .. } => spec.qid,
            WindowMsg::Probe { qid, .. } | WindowMsg::Reply { qid, .. } => *qid,
        }
    }

    fn wire_bytes(&self) -> usize {
        match self {
            WindowMsg::Query { .. } => 32,
            WindowMsg::Token { members, .. } => 32 + 10 * members.len(),
            WindowMsg::Probe { .. } => 40,
            WindowMsg::Reply { .. } => 34,
            WindowMsg::Result { members, .. } => 32 + 10 * members.len(),
        }
    }
}

struct Collecting {
    node: NodeId,
    spec: WSpec,
    frontier: f64,
    members: Vec<Candidate>,
    hops: u32,
}

/// The itinerary window-query protocol.
pub struct WindowQuery {
    requests: Vec<WindowRequest>,
    outcomes: Vec<WindowOutcome>,
    /// Scanline spacing (set from the radio range at start).
    width: f64,
    radio_range: f64,
    collecting: BTreeMap<u32, Collecting>,
    responded: BTreeSet<(u32, u32)>,
    pending_replies: BTreeMap<(u32, u32), NodeId>,
    collection_window: f64,
    /// Neighbours that failed to take the sweep token, per query (cleared
    /// on successful handoff).
    token_excludes: BTreeMap<u32, Vec<NodeId>>,
    /// Per-query budget for re-routing failed query/result packets.
    route_retries: BTreeMap<u32, u32>,
}

impl WindowQuery {
    pub fn new(requests: Vec<WindowRequest>) -> Self {
        WindowQuery {
            requests,
            outcomes: Vec::new(),
            width: 0.0,
            radio_range: 0.0,
            collecting: BTreeMap::new(),
            responded: BTreeSet::new(),
            pending_replies: BTreeMap::new(),
            collection_window: 0.144,
            token_excludes: BTreeMap::new(),
            route_retries: BTreeMap::new(),
        }
    }

    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.outcomes
    }

    fn send(&self, ctx: &mut Ctx<WindowMsg>, from: NodeId, to: NodeId, msg: WindowMsg) {
        let bytes = msg.wire_bytes();
        let flow = Some(msg.qid());
        ctx.unicast_flow(from, to, bytes, msg, flow);
    }

    fn itinerary(&self, spec: &WSpec) -> Polyline {
        window_itinerary(spec.window, self.width)
    }

    fn issue(&mut self, ctx: &mut Ctx<WindowMsg>, idx: usize) {
        let req = self.requests[idx];
        let qid = self.outcomes.len() as u32;
        let spec = WSpec {
            qid,
            sink: req.sink,
            sink_pos: ctx.position(req.sink),
            window: req.window,
        };
        self.outcomes.push(WindowOutcome {
            qid,
            sink: req.sink,
            window: req.window,
            issued_at: ctx.now(),
            completed_at: None,
            members: Vec::new(),
            sweep_hops: 0,
        });
        let entry = self.itinerary(&spec).start();
        let msg = WindowMsg::Query {
            spec,
            gpsr: GpsrHeader::new(entry),
        };
        self.route_query(ctx, req.sink, msg, None);
    }

    fn route_query(
        &mut self,
        ctx: &mut Ctx<WindowMsg>,
        at: NodeId,
        msg: WindowMsg,
        from: Option<NodeId>,
    ) {
        let WindowMsg::Query { spec, gpsr } = msg else {
            unreachable!()
        };
        let neighbors = ctx.neighbors(at);
        let prev = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev,
            &[],
            1.5 * self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                self.send(ctx, at, next, WindowMsg::Query { spec, gpsr: header });
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                // Entry Q-node: begin the sweep here.
                self.start_collection(ctx, at, spec, 0.0, Vec::new(), 0);
            }
        }
    }

    fn start_collection(
        &mut self,
        ctx: &mut Ctx<WindowMsg>,
        at: NodeId,
        spec: WSpec,
        frontier: f64,
        members: Vec<Candidate>,
        hops: u32,
    ) {
        let probe = WindowMsg::Probe {
            qid: spec.qid,
            qnode: at,
            window: spec.window,
            win_secs: self.collection_window,
        };
        let bytes = probe.wire_bytes();
        ctx.broadcast_flow(at, bytes, probe, Some(spec.qid));
        self.collecting.insert(
            spec.qid,
            Collecting {
                node: at,
                spec,
                frontier,
                members,
                hops,
            },
        );
        ctx.set_timer(
            at,
            SimDuration::from_secs_f64(self.collection_window + 0.02),
            key(K_COLLECT, spec.qid, 0),
        );
    }

    /// Collection done: advance the sweep or return the result.
    fn advance(&mut self, ctx: &mut Ctx<WindowMsg>, qid: u32) {
        let Some(coll) = self.collecting.remove(&qid) else {
            return;
        };
        let at = coll.node;
        let spec = coll.spec;
        let poly = self.itinerary(&spec);
        let my_pos = ctx.position(at);
        let neighbors = ctx.neighbors(at);
        let step = self.radio_range * 0.6;
        let mut frontier = coll.frontier;
        let members = coll.members;
        let mut hops = coll.hops;
        let mut target_arclen = frontier + step;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if hops > 300 || attempts > 200 {
                return self.finish(ctx, at, spec, members, hops);
            }
            let end_reached = target_arclen >= poly.length();
            let ta = target_arclen.min(poly.length());
            let target = poly.point_at(ta);
            let my_d = my_pos.dist(target);
            let excludes = self.token_excludes.get(&qid).cloned().unwrap_or_default();
            let next = neighbors
                .iter()
                .filter(|n| !excludes.contains(&n.id))
                .filter(|n| n.position.dist(target) < my_d - 0.5)
                .min_by(|a, b| {
                    a.position
                        .dist(target)
                        .total_cmp(&b.position.dist(target))
                        .then(a.id.cmp(&b.id))
                });
            if let Some(n) = next {
                frontier = frontier.max(ta - step);
                let proj = poly.project_from(n.position, frontier);
                if proj.dist <= self.width {
                    frontier = frontier.max(proj.arclen);
                }
                hops += 1;
                let token = WindowMsg::Token {
                    spec,
                    frontier,
                    members,
                    hops,
                };
                return self.send(ctx, at, n.id, token);
            }
            if my_d <= self.radio_range {
                frontier = ta;
                if end_reached {
                    return self.finish(ctx, at, spec, members, hops);
                }
                target_arclen = frontier + step;
                continue;
            }
            target_arclen += step;
            if target_arclen - frontier > 3.0 * self.radio_range || end_reached {
                // Void: the window sweep simply skips (bounded network
                // realism; the DIKNN crate's detour machinery is the
                // evolved answer to this).
                if end_reached {
                    return self.finish(ctx, at, spec, members, hops);
                }
                frontier = ta;
                target_arclen = frontier + step;
            }
        }
    }

    fn finish(
        &mut self,
        ctx: &mut Ctx<WindowMsg>,
        at: NodeId,
        spec: WSpec,
        members: Vec<Candidate>,
        hops: u32,
    ) {
        let msg = WindowMsg::Result {
            spec,
            gpsr: GpsrHeader::new(spec.sink_pos),
            members,
            hops,
        };
        self.route_result(ctx, at, msg, None);
    }

    fn route_result(
        &mut self,
        ctx: &mut Ctx<WindowMsg>,
        at: NodeId,
        msg: WindowMsg,
        from: Option<NodeId>,
    ) {
        let WindowMsg::Result { spec, .. } = &msg else {
            unreachable!()
        };
        let spec = *spec;
        if at == spec.sink {
            return self.absorb(ctx, msg);
        }
        let neighbors = ctx.neighbors(at);
        if neighbors.iter().any(|n| n.id == spec.sink) {
            return self.send(ctx, at, spec.sink, msg);
        }
        let WindowMsg::Result {
            gpsr,
            members,
            hops,
            ..
        } = msg
        else {
            unreachable!()
        };
        let prev = from.map(|f| (f, ctx.position(f)));
        match plan_next_hop(
            at,
            ctx.position(at),
            &gpsr,
            &neighbors,
            prev,
            &[],
            self.radio_range,
        ) {
            RouteStep::Forward { next, header } => {
                self.send(
                    ctx,
                    at,
                    next,
                    WindowMsg::Result {
                        spec,
                        gpsr: header,
                        members,
                        hops,
                    },
                );
            }
            RouteStep::Arrived | RouteStep::NoRoute => {
                let sink = spec.sink;
                self.send(
                    ctx,
                    at,
                    sink,
                    WindowMsg::Result {
                        spec,
                        gpsr,
                        members,
                        hops,
                    },
                );
            }
        }
    }

    fn absorb(&mut self, ctx: &mut Ctx<WindowMsg>, msg: WindowMsg) {
        let WindowMsg::Result {
            spec,
            members,
            hops,
            ..
        } = msg
        else {
            unreachable!()
        };
        let o = &mut self.outcomes[spec.qid as usize];
        if o.completed_at.is_none() {
            o.completed_at = Some(ctx.now());
            o.members = members;
            o.sweep_hops = hops;
        }
    }
}

impl Protocol for WindowQuery {
    type Msg = WindowMsg;

    fn on_start(&mut self, ctx: &mut Ctx<WindowMsg>) {
        self.radio_range = ctx.config().radio_range;
        self.width = crate::itinerary::ItinerarySpec::recommended_width(self.radio_range);
        for (i, req) in self.requests.clone().into_iter().enumerate() {
            ctx.set_timer(
                req.sink,
                SimDuration::from_secs_f64(req.at),
                key(K_ISSUE, 0, i as u32),
            );
        }
    }

    fn on_timer(&mut self, at: NodeId, timer_key: u64, ctx: &mut Ctx<WindowMsg>) {
        let kind = (timer_key >> 56) as u8;
        let qid = ((timer_key >> 24) & 0xFFFF_FFFF) as u32;
        let aux = (timer_key & 0xFF_FFFF) as u32;
        match kind {
            K_ISSUE => self.issue(ctx, aux as usize),
            K_COLLECT => self.advance(ctx, qid),
            K_REPLY => {
                if let Some(to) = self.pending_replies.remove(&(qid, at.0)) {
                    let reply = WindowMsg::Reply {
                        qid,
                        node: at,
                        position: ctx.position(at),
                    };
                    self.send(ctx, at, to, reply);
                }
            }
            _ => unreachable!("unknown timer kind"),
        }
    }

    fn on_send_failed(
        &mut self,
        at: NodeId,
        to: NodeId,
        msg: &WindowMsg,
        ctx: &mut Ctx<WindowMsg>,
    ) {
        match msg {
            WindowMsg::Token {
                spec,
                frontier,
                members,
                hops,
            } => {
                let e = self.token_excludes.entry(spec.qid).or_default();
                e.push(to);
                if e.len() <= 12 {
                    // Re-collect here and pick another next Q-node.
                    self.collecting.insert(
                        spec.qid,
                        Collecting {
                            node: at,
                            spec: *spec,
                            frontier: *frontier,
                            members: members.clone(),
                            hops: *hops,
                        },
                    );
                    self.advance(ctx, spec.qid);
                } else {
                    self.token_excludes.remove(&spec.qid);
                    self.finish(ctx, at, *spec, members.clone(), *hops);
                }
            }
            WindowMsg::Result { spec, .. } => {
                let tries = self.route_retries.entry(spec.qid).or_insert(0);
                *tries += 1;
                if *tries <= 10 {
                    self.route_result(ctx, at, msg.clone(), None);
                }
            }
            WindowMsg::Query { spec, .. } => {
                let tries = self.route_retries.entry(spec.qid).or_insert(0);
                *tries += 1;
                if *tries <= 10 {
                    self.route_query(ctx, at, msg.clone(), None);
                }
            }
            WindowMsg::Probe { .. } | WindowMsg::Reply { .. } => {}
        }
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &WindowMsg, ctx: &mut Ctx<WindowMsg>) {
        match msg {
            WindowMsg::Query { .. } => self.route_query(ctx, at, msg.clone(), Some(from)),
            WindowMsg::Token {
                spec,
                frontier,
                members,
                hops,
            } => {
                self.token_excludes.remove(&spec.qid);
                self.start_collection(ctx, at, *spec, *frontier, members.clone(), *hops);
            }
            WindowMsg::Probe {
                qid,
                qnode,
                window,
                win_secs,
            } => {
                if !window.contains(ctx.position(at)) {
                    return;
                }
                if !self.responded.insert((*qid, at.0)) {
                    return;
                }
                let delay: f64 = ctx.rng().gen_range(0.0..win_secs.max(0.001));
                self.pending_replies.insert((*qid, at.0), *qnode);
                ctx.set_timer(at, SimDuration::from_secs_f64(delay), key(K_REPLY, *qid, 0));
            }
            WindowMsg::Reply {
                qid,
                node,
                position,
            } => {
                if let Some(coll) = self.collecting.get_mut(qid) {
                    if coll.node == at && !coll.members.iter().any(|c| c.id == *node) {
                        coll.members.push(Candidate {
                            id: *node,
                            position: *position,
                            dist: 0.0,
                        });
                    }
                }
            }
            WindowMsg::Result { .. } => self.route_result(ctx, at, msg.clone(), Some(from)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comb_itinerary_covers_the_window() {
        let win = Rect::new(10.0, 10.0, 90.0, 60.0);
        let w = 17.32;
        let poly = window_itinerary(win, w);
        // Deterministic sampling: every point of the window within w/√2.
        for i in 0..500 {
            let fx = (i % 25) as f64 / 24.0;
            let fy = (i / 25) as f64 / 19.0;
            let p = Point::new(win.min_x + fx * win.width(), win.min_y + fy * win.height());
            let d = poly.dist_to_point(p);
            assert!(d <= w / 2.0 + 1e-9, "gap {d} at {p:?}");
        }
    }

    #[test]
    fn comb_length_scales_with_area_over_width() {
        let win = Rect::new(0.0, 0.0, 100.0, 100.0);
        let l1 = window_itinerary(win, 20.0).length();
        let l2 = window_itinerary(win, 10.0).length();
        assert!(
            l2 > 1.7 * l1,
            "halving w should ~double the sweep: {l1} {l2}"
        );
    }

    #[test]
    fn awkward_height_leaves_no_top_gap() {
        // height = 2.4w used to leave a 0.9w strip above the last line.
        let w = 17.32;
        let win = Rect::new(0.0, 0.0, 80.0, 2.4 * w);
        let poly = window_itinerary(win, w);
        for i in 0..200 {
            let p = Point::new(
                win.min_x + (i % 20) as f64 / 19.0 * win.width(),
                win.min_y + (i / 20) as f64 / 9.0 * win.height(),
            );
            assert!(poly.dist_to_point(p) <= w / 2.0 + 1e-9, "gap at {p:?}");
        }
    }

    #[test]
    fn degenerate_thin_window_gets_one_scanline() {
        let win = Rect::new(0.0, 0.0, 50.0, 5.0);
        let poly = window_itinerary(win, 17.0);
        assert_eq!(poly.waypoints().len(), 2);
        assert!((poly.length() - 50.0).abs() < 1e-9);
    }
}
