//! Protocol-side plumbing for the flight recorder (see `diknn_sim::trace`).
//!
//! The simulator owns the event stream; protocol implementations emit their
//! trace points through the [`TraceSink`] trait so the same instrumented
//! code path serves both a live [`Ctx`] (events land in the simulator's
//! ring buffer, interleaved with radio/fault events) and simulator-free
//! unit tests (a [`VecSink`] captures them for direct assertions).

use diknn_sim::{Ctx, NodeId, ProtoEvent};

/// A consumer of protocol-level trace events.
pub trait TraceSink {
    /// Record that `ev` happened at `node` "now" (the sink supplies the
    /// clock — the simulator stamps its current time).
    fn proto_event(&mut self, node: NodeId, ev: ProtoEvent);
}

impl<M: Clone> TraceSink for Ctx<M> {
    fn proto_event(&mut self, node: NodeId, ev: ProtoEvent) {
        self.record_proto(node, ev);
    }
}

/// A capturing sink for simulator-free tests.
#[derive(Debug, Default)]
pub struct VecSink {
    pub events: Vec<(NodeId, ProtoEvent)>,
}

impl TraceSink for VecSink {
    fn proto_event(&mut self, node: NodeId, ev: ProtoEvent) {
        self.events.push((node, ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_captures_in_order() {
        let mut sink = VecSink::default();
        sink.proto_event(
            NodeId(1),
            ProtoEvent::QueryIssued {
                qid: 0,
                attempt: 0,
                k: 3,
            },
        );
        sink.proto_event(
            NodeId(2),
            ProtoEvent::SinkMerge {
                qid: 0,
                attempt: 0,
                sector: 1,
            },
        );
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].0, NodeId(1));
        assert!(matches!(
            sink.events[1].1,
            ProtoEvent::SinkMerge { sector: 1, .. }
        ));
    }
}
