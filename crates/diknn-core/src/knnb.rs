//! The KNNB boundary-estimation algorithm (paper §4.2, Algorithm 1).
//!
//! During the routing phase every hop `i` appends to a list `L` its location
//! `loc_i` and the number of *newly encountered* neighbours `enc_i`. At the
//! home node, KNNB walks `L` backwards, growing a density sample
//! (`neighbors / approx_area`) hop by hop, and returns the first hop
//! distance `d = |loc_i − q|` whose implied node count
//! `est_k = π d² · density` reaches `k`. The coverage area between two
//! successive hops is approximated by the rectangle `r · |loc_i −
//! loc_{i−1}|` (Figure 5), seeded with the half-disc `π r²/2` around the
//! home node. The algorithm is O(hops).

use diknn_geom::Point;

/// One routing-phase hop record: the entry appended to list `L`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopRecord {
    /// Location of the node that performed this hop.
    pub loc: Point,
    /// Number of neighbours newly encountered at this hop (neighbours
    /// farther than `r` from the previous hop's node).
    pub enc: u32,
}

diknn_snap::snap_struct!(HopRecord { loc, enc });

/// Result of boundary estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boundary {
    /// Estimated KNN boundary radius `R`.
    pub radius: f64,
    /// The density estimate (nodes/m²) used for the returned radius.
    pub density: f64,
}

/// Run KNNB. `l` is the hop list in routing order (first hop first), `q`
/// the query point, `r` the radio range and `k` the requested neighbour
/// count.
///
/// Deviations from the paper's pseudocode, both fail-safes:
/// * If the accumulated information never reaches `est_k ≥ k` (short routes
///   or sparse networks), the radius is extrapolated from the full-list
///   density, `R = sqrt(k / (π·D))` — the same equation solved for `R`.
/// * An empty list falls back to assuming a single node per `π r²/2`.
pub fn knnb(l: &[HopRecord], q: Point, r: f64, k: usize) -> Boundary {
    assert!(k > 0, "k must be positive");
    assert!(r > 0.0, "radio range must be positive");
    let k = k as f64;

    if l.is_empty() {
        // No information at all: assume the home node's own half-disc holds
        // one node and extrapolate.
        let density = 1.0 / (std::f64::consts::PI * r * r / 2.0);
        return Boundary {
            radius: (k / (std::f64::consts::PI * density)).sqrt(),
            density,
        };
    }

    let mut neighbors = f64::from(l[l.len() - 1].enc);
    let mut approx_area = std::f64::consts::PI * r * r / 2.0;
    let mut i = l.len() as isize - 1;
    let mut last_density = (neighbors.max(1.0)) / approx_area;

    while i >= 0 {
        let idx = i as usize;
        let d = l[idx].loc.dist(q);
        let density = neighbors.max(1.0) / approx_area;
        last_density = density;
        let est_k = std::f64::consts::PI * d * d * density;
        if est_k >= k && d > 0.0 {
            return Boundary { radius: d, density };
        }
        if idx > 0 {
            neighbors += f64::from(l[idx - 1].enc);
            approx_area += r * l[idx].loc.dist(l[idx - 1].loc);
        }
        i -= 1;
    }

    // Fallback: solve est_k = k for R using the best density estimate,
    // floored at the farthest hop distance so the estimate is monotone in
    // k (a smaller k may have matched a far hop inside the loop).
    let max_d = l.iter().map(|h| h.loc.dist(q)).fold(0.0f64, f64::max);
    Boundary {
        radius: (k / (std::f64::consts::PI * last_density))
            .sqrt()
            .max(max_d),
        density: last_density,
    }
}

/// The conservative boundary of the original KPT [29, 30]: `R = k × MHD`
/// where `MHD` is the expected per-hop advance (the paper's example uses
/// `R = 20·15 = 300` for `k = 20, MHD = 15`). Grows linearly in `k`, i.e.
/// the enclosed *area* grows quadratically — the flooding behaviour the
/// paper criticises. Used by the `boundary_compare` experiment.
pub fn kpt_conservative_radius(k: usize, mean_hop_distance: f64) -> f64 {
    k as f64 * mean_hop_distance
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic hop list walking straight toward q over a field of
    /// uniform density `d` nodes/m², with `r = 20`.
    fn synthetic_list(q: Point, hops: usize, density: f64) -> Vec<HopRecord> {
        let r = 20.0;
        let step = 15.0; // typical greedy advance
        (0..hops)
            .map(|i| {
                let remaining = (hops - i) as f64;
                HopRecord {
                    loc: Point::new(q.x - remaining * step, q.y),
                    // Each hop sweeps roughly a rectangle r × step of new area.
                    enc: (density * r * step).round() as u32,
                }
            })
            .collect()
    }

    #[test]
    fn uniform_density_estimate_is_accurate() {
        // 200 nodes on 115×115 -> density ≈ 0.0151 nodes/m².
        let density = 200.0 / (115.0 * 115.0);
        let q = Point::new(100.0, 57.0);
        let l = synthetic_list(q, 6, density);
        for k in [5usize, 10, 20, 40] {
            let est = knnb(&l, q, 20.0, k);
            let optimal = (k as f64 / (std::f64::consts::PI * density)).sqrt();
            // The returned radius is quantised to hop locations, so allow
            // one hop step (15 m) of slack.
            assert!(
                (est.radius - optimal).abs() <= 16.0,
                "k={k}: estimated {} vs optimal {optimal}",
                est.radius
            );
            // Must enclose at least ~k expected nodes.
            let implied = std::f64::consts::PI * est.radius * est.radius * density;
            assert!(implied >= k as f64 * 0.5, "k={k}: implied {implied}");
        }
    }

    #[test]
    fn radius_monotone_in_k() {
        let density = 0.015;
        let q = Point::new(90.0, 50.0);
        let l = synthetic_list(q, 6, density);
        let radii: Vec<f64> = [1usize, 5, 10, 20, 50, 100]
            .iter()
            .map(|&k| knnb(&l, q, 20.0, k).radius)
            .collect();
        for w in radii.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "radius not monotone: {radii:?}");
        }
    }

    #[test]
    fn empty_list_fallback() {
        let b = knnb(&[], Point::ORIGIN, 20.0, 10);
        assert!(b.radius > 0.0);
        assert!(b.radius.is_finite());
    }

    #[test]
    fn small_k_uses_near_hops_only() {
        // For k=1 the last hop (closest to q) should already satisfy
        // est_k >= 1, giving a radius near the last-hop distance.
        let density = 0.015;
        let q = Point::new(90.0, 50.0);
        let l = synthetic_list(q, 6, density);
        let b = knnb(&l, q, 20.0, 1);
        let last_dist = l.last().unwrap().loc.dist(q);
        assert!(b.radius <= last_dist + 1e-9);
    }

    #[test]
    fn fallback_extrapolates_when_route_too_short() {
        // One hop, tiny enc: est_k never reaches k inside the list.
        let q = Point::ORIGIN;
        let l = vec![HopRecord {
            loc: Point::new(5.0, 0.0),
            enc: 2,
        }];
        let b = knnb(&l, q, 20.0, 50);
        assert!(b.radius > 5.0, "must extrapolate beyond the hop distance");
        assert!(b.radius.is_finite());
    }

    #[test]
    fn denser_networks_give_smaller_boundaries() {
        let q = Point::new(90.0, 50.0);
        let sparse = knnb(&synthetic_list(q, 6, 0.005), q, 20.0, 20);
        let dense = knnb(&synthetic_list(q, 6, 0.05), q, 20.0, 20);
        assert!(
            dense.radius < sparse.radius,
            "dense {} !< sparse {}",
            dense.radius,
            sparse.radius
        );
    }

    #[test]
    fn zero_density_route_stays_finite() {
        // Every hop reports zero new encounters (e.g. a stale neighbour
        // table): density must floor at one node per seeded half-disc, not
        // divide toward zero and blow the radius to infinity.
        let q = Point::new(50.0, 50.0);
        let l: Vec<HopRecord> = (0..4)
            .map(|i| HopRecord {
                loc: Point::new(i as f64 * 15.0, 50.0),
                enc: 0,
            })
            .collect();
        let b = knnb(&l, q, 20.0, 10);
        assert!(b.radius.is_finite() && b.radius > 0.0, "{b:?}");
        assert!(b.density.is_finite() && b.density > 0.0, "{b:?}");
    }

    #[test]
    fn duplicate_hop_positions_add_no_area() {
        // A short list with duplicate positions (a node re-appended after a
        // routing retry) contributes zero rectangle area; the seeded
        // half-disc keeps the density denominator positive.
        let loc = Point::new(30.0, 30.0);
        let l = vec![HopRecord { loc, enc: 3 }, HopRecord { loc, enc: 0 }];
        let b = knnb(&l, Point::new(60.0, 30.0), 20.0, 8);
        assert!(b.radius.is_finite() && b.radius > 0.0, "{b:?}");
        assert!(b.density.is_finite() && b.density > 0.0, "{b:?}");
    }

    #[test]
    fn hops_exactly_at_query_point_never_return_zero_radius() {
        // d = 0 hops satisfy any est_k but a zero radius would collapse the
        // itinerary; the `d > 0` guard must push past them.
        let q = Point::new(10.0, 10.0);
        let l = vec![HopRecord { loc: q, enc: 50 }, HopRecord { loc: q, enc: 50 }];
        let b = knnb(&l, q, 20.0, 1);
        assert!(b.radius.is_finite() && b.radius > 0.0, "{b:?}");
    }

    #[test]
    fn k_beyond_network_size_extrapolates_conservatively() {
        // k far above anything the route saw: the fallback must cover the
        // whole observed route (radius ≥ farthest hop) and imply ≥ k nodes
        // at the returned density, while staying finite.
        let q = Point::new(90.0, 50.0);
        let l = synthetic_list(q, 4, 0.015);
        let max_d = l.iter().map(|h| h.loc.dist(q)).fold(0.0f64, f64::max);
        for k in [500usize, 10_000] {
            let b = knnb(&l, q, 20.0, k);
            assert!(b.radius.is_finite(), "k={k}: {b:?}");
            assert!(b.radius >= max_d, "k={k}: {b:?}");
            let implied = std::f64::consts::PI * b.radius * b.radius * b.density;
            assert!(implied >= k as f64 - 1e-6, "k={k}: implied {implied}");
        }
    }

    #[test]
    fn kpt_radius_grows_linearly() {
        assert_eq!(kpt_conservative_radius(20, 15.0), 300.0);
        assert_eq!(kpt_conservative_radius(40, 15.0), 600.0);
    }

    #[test]
    fn knnb_much_smaller_than_kpt_conservative() {
        // §4.2: KNNB radii are generally ~1/sqrt(kπ) of KPT's.
        let density = 200.0 / (115.0 * 115.0);
        let q = Point::new(100.0, 57.0);
        let l = synthetic_list(q, 6, density);
        for k in [20usize, 60, 100] {
            let ours = knnb(&l, q, 20.0, k).radius;
            let theirs = kpt_conservative_radius(k, 15.0);
            assert!(ours < theirs / 4.0, "k={k}: KNNB {ours} not ≪ KPT {theirs}");
        }
    }
}
