//! DIKNN wire messages.
//!
//! Payload *sizes* drive airtime and energy in the simulator; the structs
//! here carry whatever Rust data the protocol logic needs, and
//! [`DiknnMsg::wire_bytes`] reports what the field would cost on air
//! (positions as 2×4 B, ids/counters 2–4 B, per-candidate responses 10 B).

use crate::candidates::CandidateSet;
use crate::config::DiknnConfig;
use crate::knnb::HopRecord;
use crate::token::SectorToken;
use diknn_geom::Point;
use diknn_routing::GpsrHeader;
use diknn_sim::{NodeId, SimTime};

/// Immutable query description established at issue time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    pub qid: u32,
    /// Node that issued the query and expects the result.
    pub sink: NodeId,
    /// Sink position at issue time (results are routed back here).
    pub sink_pos: Point,
    /// Query point.
    pub q: Point,
    /// Requested number of nearest neighbours.
    pub k: u32,
    pub issued_at: SimTime,
    /// Sink-side retry attempt this dissemination belongs to (0 = first
    /// issue). Stale results from an earlier attempt still contribute
    /// candidates at the sink but do not count towards completion.
    pub attempt: u8,
}

/// Routing-phase message: the query travelling sink → home node, gathering
/// the KNNB information list `L` hop by hop (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMsg {
    pub spec: QuerySpec,
    pub gpsr: GpsrHeader,
    pub list: Vec<HopRecord>,
}

/// Probe broadcast by a Q-node to solicit D-node responses (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeMsg {
    pub qid: u32,
    pub sector: u8,
    /// Retry attempt of the dissemination this probe belongs to; D-nodes
    /// re-reply on a fresh attempt even if they answered an earlier one.
    pub attempt: u8,
    pub qnode: NodeId,
    pub qnode_pos: Point,
    pub q: Point,
    /// Current boundary radius: only nodes inside reply.
    pub radius: f64,
    /// Reference line for the contention timers.
    pub ref_angle: f64,
    /// Contention window length in seconds (0 ⇒ poll-only probe: D-nodes
    /// stay silent and wait to be polled).
    pub window: f64,
    /// Piggybacked per-sector explored counts. Probe discs of adjacent
    /// sub-itineraries overlap near the borders, so the counts hop between
    /// sectors through shared D-nodes — the rendezvous exchange of §4.3
    /// riding on existing traffic.
    pub counts: Vec<(u8, u32)>,
}

/// A D-node's response to a probe or poll.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplyMsg {
    pub qid: u32,
    /// Sector of the collection this reply answers (BOOTSTRAP for the home
    /// node's initial collection).
    pub sector: u8,
    pub responder: NodeId,
    pub position: Point,
    pub speed: f64,
    /// Rendezvous statistics this node has overheard: `(sector, explored)`.
    pub cached_counts: Vec<(u8, u32)>,
}

/// Explicit poll (token-ring / combined collection schemes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollMsg {
    pub qid: u32,
    pub sector: u8,
    /// Retry attempt (see [`ProbeMsg::attempt`]).
    pub attempt: u8,
    pub qnode: NodeId,
    pub q: Point,
    pub radius: f64,
}

/// Rendezvous broadcast at sector borders: per-sector explored counts
/// (§4.3, Figure 6).
#[derive(Debug, Clone, PartialEq)]
pub struct RendezvousMsg {
    pub qid: u32,
    pub counts: Vec<(u8, u32)>,
}

/// A sector's final partial result travelling back to the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultMsg {
    pub spec: QuerySpec,
    pub sector: u8,
    pub gpsr: GpsrHeader,
    pub candidates: CandidateSet,
    pub explored: u32,
    /// Final boundary radius this sector used (after adjustments).
    pub final_radius: f64,
    /// Hops taken by the token along the itinerary.
    pub itinerary_hops: u32,
}

/// All DIKNN frames.
#[derive(Debug, Clone, PartialEq)]
pub enum DiknnMsg {
    Query(QueryMsg),
    Token(Box<SectorToken>),
    Probe(ProbeMsg),
    Reply(ReplyMsg),
    Poll(PollMsg),
    Rendezvous(RendezvousMsg),
    Result(ResultMsg),
}

diknn_snap::snap_struct!(QuerySpec {
    qid,
    sink,
    sink_pos,
    q,
    k,
    issued_at,
    attempt
});
diknn_snap::snap_struct!(QueryMsg { spec, gpsr, list });
diknn_snap::snap_struct!(ProbeMsg {
    qid,
    sector,
    attempt,
    qnode,
    qnode_pos,
    q,
    radius,
    ref_angle,
    window,
    counts
});
diknn_snap::snap_struct!(ReplyMsg {
    qid,
    sector,
    responder,
    position,
    speed,
    cached_counts
});
diknn_snap::snap_struct!(PollMsg {
    qid,
    sector,
    attempt,
    qnode,
    q,
    radius
});
diknn_snap::snap_struct!(RendezvousMsg { qid, counts });
diknn_snap::snap_struct!(ResultMsg {
    spec,
    sector,
    gpsr,
    candidates,
    explored,
    final_radius,
    itinerary_hops
});
diknn_snap::snap_enum!(DiknnMsg {
    0 => Query(m),
    1 => Token(t),
    2 => Probe(m),
    3 => Reply(m),
    4 => Poll(m),
    5 => Rendezvous(m),
    6 => Result(m),
});

impl DiknnMsg {
    /// The query this frame belongs to. Every DIKNN frame is query-scoped,
    /// so this is total; the engine uses it as the flow label for
    /// per-query energy attribution.
    pub fn qid(&self) -> u32 {
        match self {
            DiknnMsg::Query(m) => m.spec.qid,
            DiknnMsg::Token(t) => t.spec.qid,
            DiknnMsg::Probe(m) => m.qid,
            DiknnMsg::Reply(m) => m.qid,
            DiknnMsg::Poll(m) => m.qid,
            DiknnMsg::Rendezvous(m) => m.qid,
            DiknnMsg::Result(m) => m.spec.qid,
        }
    }

    /// Approximate on-air payload size in bytes.
    pub fn wire_bytes(&self, cfg: &DiknnConfig) -> usize {
        let base = cfg.base_msg_bytes;
        match self {
            // loc (8) + enc (2) per hop record.
            DiknnMsg::Query(m) => base + 10 * m.list.len(),
            DiknnMsg::Token(t) => {
                base + t.candidates.wire_bytes(cfg.response_bytes) + 5 * t.sector_counts.len()
            }
            DiknnMsg::Probe(m) => base + 16 + 5 * m.counts.len(),
            DiknnMsg::Reply(m) => base + cfg.response_bytes + 5 * m.cached_counts.len(),
            DiknnMsg::Poll(_) => base,
            DiknnMsg::Rendezvous(m) => base + 5 * m.counts.len(),
            DiknnMsg::Result(m) => base + m.candidates.wire_bytes(cfg.response_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itinerary::ItinerarySpec;

    fn spec() -> QuerySpec {
        QuerySpec {
            qid: 1,
            sink: NodeId(0),
            sink_pos: Point::ORIGIN,
            q: Point::new(50.0, 50.0),
            k: 10,
            issued_at: SimTime::ZERO,
            attempt: 0,
        }
    }

    #[test]
    fn query_size_grows_with_hop_list() {
        let cfg = DiknnConfig::default();
        let mut m = QueryMsg {
            spec: spec(),
            gpsr: GpsrHeader::new(Point::new(50.0, 50.0)),
            list: Vec::new(),
        };
        let empty = DiknnMsg::Query(m.clone()).wire_bytes(&cfg);
        m.list.push(HopRecord {
            loc: Point::ORIGIN,
            enc: 5,
        });
        let one = DiknnMsg::Query(m).wire_bytes(&cfg);
        assert_eq!(one - empty, 10);
    }

    #[test]
    fn result_size_grows_with_candidates() {
        let cfg = DiknnConfig::default();
        let mut cands = CandidateSet::new(10);
        let mk = |c: &CandidateSet| {
            DiknnMsg::Result(ResultMsg {
                spec: spec(),
                sector: 0,
                gpsr: GpsrHeader::new(Point::ORIGIN),
                candidates: c.clone(),
                explored: 0,
                final_radius: 30.0,
                itinerary_hops: 0,
            })
            .wire_bytes(&cfg)
        };
        let empty = mk(&cands);
        cands.insert(crate::candidates::Candidate {
            id: NodeId(3),
            position: Point::ORIGIN,
            dist: 1.0,
        });
        assert_eq!(mk(&cands) - empty, cfg.response_bytes);
    }

    #[test]
    fn token_size_includes_state() {
        let cfg = DiknnConfig::default();
        let t = SectorToken::new(
            spec(),
            0,
            ItinerarySpec::new(Point::new(50.0, 50.0), 30.0, 8, 17.0),
            SimTime::ZERO,
        );
        let sz = DiknnMsg::Token(Box::new(t)).wire_bytes(&cfg);
        assert!(sz >= cfg.base_msg_bytes);
    }
}
