//! Query outcomes: what a KNN protocol reports per query, consumed by the
//! workload harness to compute latency, energy and accuracy. Shared by the
//! baselines crate so every protocol is measured identically.

use diknn_geom::Point;
use diknn_sim::{NodeId, SimTime};

/// A KNN query to be issued during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// Issue time in seconds.
    pub at: f64,
    /// Issuing (sink) node.
    pub sink: NodeId,
    /// Query point.
    pub q: Point,
    /// Number of nearest neighbours requested.
    pub k: usize,
}

/// Per-query result record.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub qid: u32,
    pub sink: NodeId,
    pub q: Point,
    pub k: usize,
    pub issued_at: SimTime,
    /// When the sink finalised the answer (None: nothing ever came back).
    pub completed_at: Option<SimTime>,
    /// Node ids returned as the KNN answer (≤ k).
    pub answer: Vec<NodeId>,
    /// Search boundary radius initially estimated (KNNB for DIKNN/KPT,
    /// irrelevant 0.0 for Peer-tree).
    pub boundary_radius: f64,
    /// Largest boundary radius actually used after dynamic adjustment.
    pub final_radius: f64,
    /// Hops of the sink→home routing phase.
    pub routing_hops: u32,
    /// Partial results expected (sectors for DIKNN, subtrees for KPT, 1 for
    /// Peer-tree).
    pub parts_expected: u32,
    /// Partial results actually merged before completion/timeout.
    pub parts_returned: u32,
    /// Total distinct nodes that reported data for this query.
    pub explored_nodes: u32,
}

impl QueryOutcome {
    /// Latency in seconds, if the query completed.
    pub fn latency(&self) -> Option<f64> {
        self.completed_at
            .map(|t| (t - self.issued_at).as_secs_f64())
    }
}

/// Implemented by every KNN protocol in this reproduction so the workload
/// harness can drive them uniformly.
pub trait KnnProtocol: diknn_sim::Protocol {
    /// Outcomes of all queries issued so far (finished or not).
    fn outcomes(&self) -> &[QueryOutcome];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_requires_completion() {
        let mut o = QueryOutcome {
            qid: 1,
            sink: NodeId(0),
            q: Point::ORIGIN,
            k: 5,
            issued_at: SimTime::from_secs_f64(2.0),
            completed_at: None,
            answer: vec![],
            boundary_radius: 10.0,
            final_radius: 10.0,
            routing_hops: 3,
            parts_expected: 8,
            parts_returned: 0,
            explored_nodes: 0,
        };
        assert_eq!(o.latency(), None);
        o.completed_at = Some(SimTime::from_secs_f64(2.5));
        assert!((o.latency().unwrap() - 0.5).abs() < 1e-9);
    }
}
