//! Query outcomes: what a KNN protocol reports per query, consumed by the
//! workload harness to compute latency, energy and accuracy. Shared by the
//! baselines crate so every protocol is measured identically.

use diknn_geom::Point;
use diknn_sim::{NodeId, SimTime};

/// A KNN query to be issued during a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// Issue time in seconds.
    pub at: f64,
    /// Issuing (sink) node.
    pub sink: NodeId,
    /// Query point.
    pub q: Point,
    /// Number of nearest neighbours requested.
    pub k: usize,
}

diknn_snap::snap_struct!(QueryRequest { at, sink, q, k });

/// How a query terminated — the structured degradation reason consumed by
/// the fault-sweep harness. Every query ends in exactly one non-`Pending`
/// state once [`KnnProtocol::finish`] has run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryStatus {
    /// Still running (or [`KnnProtocol::finish`] was never called).
    Pending,
    /// All expected partial results were merged at the sink.
    Completed,
    /// The sink timed out with *some* partial results merged.
    PartialTimeout,
    /// The sink heard nothing at all: the query, a token, or every result
    /// was lost and the recovery budget ran out.
    TokenLost,
    /// The sink itself was dead when the run ended; nobody was left to
    /// account for the query.
    SinkUnreachable,
    /// The serving layer refused the query: load stayed above the admission
    /// ceiling through every deferral, so it was never executed. The answer
    /// is empty by construction.
    Rejected,
    /// The serving layer attached the query to a spatially overlapping
    /// in-flight query; the answer was split out of the host's merged
    /// candidates with exact per-query re-ranking.
    Merged,
    /// The serving layer answered the query from a fresh cached result of
    /// an earlier query at (nearly) the same point, inside the TTL and the
    /// mobility-drift bound.
    CacheHit,
}

diknn_snap::snap_enum!(QueryStatus {
    0 => Pending,
    1 => Completed,
    2 => PartialTimeout,
    3 => TokenLost,
    4 => SinkUnreachable,
    5 => Rejected,
    6 => Merged,
    7 => CacheHit,
});

impl QueryStatus {
    /// Short stable label for tables and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            QueryStatus::Pending => "pending",
            QueryStatus::Completed => "completed",
            QueryStatus::PartialTimeout => "partial-timeout",
            QueryStatus::TokenLost => "token-lost",
            QueryStatus::SinkUnreachable => "sink-unreachable",
            QueryStatus::Rejected => "rejected",
            QueryStatus::Merged => "merged",
            QueryStatus::CacheHit => "cache-hit",
        }
    }
}

/// Per-query result record.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub qid: u32,
    pub sink: NodeId,
    pub q: Point,
    pub k: usize,
    pub issued_at: SimTime,
    /// When the sink finalised the answer (None: nothing ever came back).
    pub completed_at: Option<SimTime>,
    /// Node ids returned as the KNN answer (≤ k).
    pub answer: Vec<NodeId>,
    /// Search boundary radius initially estimated (KNNB for DIKNN/KPT,
    /// irrelevant 0.0 for Peer-tree).
    pub boundary_radius: f64,
    /// Largest boundary radius actually used after dynamic adjustment.
    pub final_radius: f64,
    /// Hops of the sink→home routing phase.
    pub routing_hops: u32,
    /// Partial results expected (sectors for DIKNN, subtrees for KPT, 1 for
    /// Peer-tree).
    pub parts_expected: u32,
    /// Partial results actually merged before completion/timeout.
    pub parts_returned: u32,
    /// Total distinct nodes that reported data for this query.
    pub explored_nodes: u32,
    /// Structured termination reason (see [`QueryStatus`]).
    pub status: QueryStatus,
}

diknn_snap::snap_struct!(QueryOutcome {
    qid,
    sink,
    q,
    k,
    issued_at,
    completed_at,
    answer,
    boundary_radius,
    final_radius,
    routing_hops,
    parts_expected,
    parts_returned,
    explored_nodes,
    status
});

impl QueryOutcome {
    /// Latency in seconds, if the query completed.
    pub fn latency(&self) -> Option<f64> {
        self.completed_at
            .map(|t| (t - self.issued_at).as_secs_f64())
    }
}

/// Implemented by every KNN protocol in this reproduction so the workload
/// harness can drive them uniformly.
pub trait KnnProtocol: diknn_sim::Protocol {
    /// Outcomes of all queries issued so far (finished or not).
    fn outcomes(&self) -> &[QueryOutcome];

    /// Mutable access to the outcomes, for post-run classification.
    fn outcomes_mut(&mut self) -> &mut [QueryOutcome];

    /// Classify any still-`Pending` outcome after the run ended. Protocols
    /// that finalise eagerly (a timer fired at a live sink) have already
    /// stamped a status; this covers queries whose sink died or whose
    /// timeout never fired before the time limit.
    fn finish(&mut self, ctx: &diknn_sim::Ctx<Self::Msg>) {
        for o in self.outcomes_mut() {
            if o.status != QueryStatus::Pending {
                continue;
            }
            o.status = if o.completed_at.is_some() {
                if o.parts_returned >= o.parts_expected {
                    QueryStatus::Completed
                } else {
                    QueryStatus::PartialTimeout
                }
            } else if !ctx.is_alive(o.sink) {
                QueryStatus::SinkUnreachable
            } else if o.parts_returned > 0 {
                QueryStatus::PartialTimeout
            } else {
                QueryStatus::TokenLost
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_requires_completion() {
        let mut o = QueryOutcome {
            qid: 1,
            sink: NodeId(0),
            q: Point::ORIGIN,
            k: 5,
            issued_at: SimTime::from_secs_f64(2.0),
            completed_at: None,
            answer: vec![],
            boundary_radius: 10.0,
            final_radius: 10.0,
            routing_hops: 3,
            parts_expected: 8,
            parts_returned: 0,
            explored_nodes: 0,
            status: QueryStatus::Pending,
        };
        assert_eq!(o.latency(), None);
        o.completed_at = Some(SimTime::from_secs_f64(2.5));
        assert!((o.latency().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn status_labels_are_stable() {
        assert_eq!(QueryStatus::Completed.label(), "completed");
        assert_eq!(QueryStatus::PartialTimeout.label(), "partial-timeout");
        assert_eq!(QueryStatus::TokenLost.label(), "token-lost");
        assert_eq!(QueryStatus::SinkUnreachable.label(), "sink-unreachable");
        assert_eq!(QueryStatus::Rejected.label(), "rejected");
        assert_eq!(QueryStatus::Merged.label(), "merged");
        assert_eq!(QueryStatus::CacheHit.label(), "cache-hit");
    }
}
