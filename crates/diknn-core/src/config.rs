//! DIKNN protocol parameters (defaults = the paper's settings table, §5.1).

use diknn_sim::ConfigError;

/// How a Q-node collects responses from the D-nodes that heard its probe
/// (§3.3 "data collection scheme" and footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionScheme {
    /// Contention-based: each D-node delays its reply by a timer
    /// proportional to its angle α from the probe's reference line
    /// (`timer = (α/2π)·i·m`), desynchronising replies.
    Contention,
    /// Token-ring: the Q-node polls each candidate D-node in turn —
    /// collision-free but one extra poll frame per D-node.
    TokenRing,
    /// The paper's combined scheme: a contention round first, then explicit
    /// polls for neighbours that stayed silent.
    Combined,
}

/// Sink-side serving layer: admission control, spatial query merging and
/// short-TTL result caching (DESIGN.md §12). Disabled by default — with
/// `enabled == false` the protocol behaves bit-identically to a build
/// without the serving layer (golden traces are pinned on this).
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Master switch. Off: every query is admitted immediately, no merge,
    /// no cache, no serving trace events.
    pub enabled: bool,
    /// Admission ceiling: maximum queries in flight (admitted, not yet
    /// terminal) across all sinks. Arrivals beyond it are deferred, then
    /// rejected. Must be nonzero.
    pub max_in_flight: u32,
    /// Base retry-after for a deferred query, in seconds. The actual quote
    /// comes from the load signal ([`diknn_sim::LoadSignal::retry_after`])
    /// and is bounded to `[retry_after_s, max_retry_after_s]`.
    pub retry_after_s: f64,
    /// Hard cap on a single retry-after quote, in seconds.
    pub max_retry_after_s: f64,
    /// How many deferrals a query may suffer before it is terminally
    /// rejected (status `rejected`, never executed).
    pub max_admission_defers: u32,
    /// Sliding window (seconds) of the load signal's completion rate.
    pub load_window_s: f64,
    /// Spatial merge radius in metres: a new arrival whose query point lies
    /// within this distance of an in-flight query's point (and whose `k`
    /// does not exceed the host's) rides the host's itinerary instead of
    /// launching its own. `0.0` disables merging.
    pub merge_radius_m: f64,
    /// Result-cache radius in metres: a new arrival within this distance of
    /// a fresh completed query's point (with `k` not exceeding the cached
    /// `k`) is answered from the cache. `0.0` disables caching.
    pub cache_radius_m: f64,
    /// Cache TTL in seconds. Entries older than this are never served.
    /// Must be positive.
    pub cache_ttl_s: f64,
    /// Mobility-staleness bound: the assumed worst-case node speed used to
    /// account cached answers against drift.
    pub drift_rate_mps: f64,
    /// Maximum tolerated drift in metres: a cache entry is stale once
    /// `age × drift_rate_mps` exceeds this, even inside the TTL.
    pub cache_drift_m: f64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            enabled: false,
            max_in_flight: 8,
            retry_after_s: 0.5,
            max_retry_after_s: 4.0,
            max_admission_defers: 6,
            load_window_s: 5.0,
            merge_radius_m: 10.0,
            cache_radius_m: 10.0,
            cache_ttl_s: 2.0,
            drift_rate_mps: 5.0,
            cache_drift_m: 10.0,
        }
    }
}

impl ServingConfig {
    /// An enabled serving layer with the default knobs.
    pub fn enabled() -> Self {
        ServingConfig {
            enabled: true,
            ..ServingConfig::default()
        }
    }

    /// Reject nonsensical serving knobs with typed errors (shared
    /// [`ConfigError`] vocabulary with the simulator config). Checked even
    /// while `enabled == false` so a bad config cannot lurk behind the
    /// switch.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_in_flight == 0 {
            return Err(ConfigError::ZeroAdmissionCeiling);
        }
        if self.cache_ttl_s <= 0.0 || self.cache_ttl_s.is_nan() {
            return Err(ConfigError::NonPositiveCacheTtl(self.cache_ttl_s));
        }
        if self.merge_radius_m < 0.0 || self.merge_radius_m.is_nan() {
            return Err(ConfigError::NegativeMergeRadius(self.merge_radius_m));
        }
        if self.cache_radius_m < 0.0 || self.cache_radius_m.is_nan() {
            return Err(ConfigError::NegativeMergeRadius(self.cache_radius_m));
        }
        assert!(
            self.retry_after_s > 0.0 && self.max_retry_after_s >= self.retry_after_s,
            "retry-after bounds must satisfy 0 < base <= max"
        );
        assert!(self.load_window_s > 0.0, "load window must be positive");
        assert!(
            self.drift_rate_mps >= 0.0 && self.cache_drift_m >= 0.0,
            "drift accounting must be non-negative"
        );
        Ok(())
    }
}

/// Protocol configuration carried by [`crate::Diknn`].
#[derive(Debug, Clone)]
pub struct DiknnConfig {
    /// Number of sectors `S` (default 8).
    pub sectors: usize,
    /// Itinerary width as a fraction of the radio range; the default is the
    /// paper's `w = √3·r/2`.
    pub width_factor: f64,
    /// Data-collection time unit `m` in seconds (default 0.018 s): how long
    /// the Q-node budgets per expected replier.
    pub collection_unit: f64,
    /// Upper bound on repliers assumed when sizing the contention window
    /// (the window is `collection_unit × contention_slots`).
    pub contention_slots: f64,
    /// Mobility assurance gain `g ∈ [0, 1]` (§4.3; default 0.1).
    pub assurance_gain: f64,
    /// Enable rendezvous-based dynamic boundary adjustment (§4.3).
    pub rendezvous: bool,
    /// Early-stop margin: a sector may truncate its traversal once the
    /// estimated number of explored nodes reaches `margin × k`.
    pub early_stop_margin: f64,
    /// Extension target: sectors keep growing the boundary until the
    /// estimated explored total reaches `extend_target × k` (KNNB aims at
    /// *exactly* k expected nodes, so without headroom roughly half the
    /// true KNNs near the rim would be missed). Must be below
    /// `early_stop_margin`.
    pub extend_target: f64,
    /// Boundary-extension cap: `R` may grow to at most `cap × R₀` through
    /// rendezvous under-count extension plus mobility assurance.
    pub max_radius_growth: f64,
    /// Per-node query response payload (10 bytes in the paper).
    pub response_bytes: usize,
    /// Fixed per-message overhead assumed for protocol bookkeeping fields
    /// (ids, radii, counters) when sizing packets.
    pub base_msg_bytes: usize,
    /// Data collection scheme.
    pub collection: CollectionScheme,
    /// Give up on a query at the sink after this many seconds without all
    /// sector results (straggler sectors are simply not merged).
    pub sink_timeout: f64,
    /// Token-loss watchdog: after handing the token off, a Q-node watches
    /// for the sector to progress past its successor and re-issues the
    /// token on silence (fail-stop crashes and deep fades otherwise kill
    /// the whole sector).
    pub token_watchdog: bool,
    /// Seconds without durable sector progress (next handoff, sector
    /// finish, or sink merge) before the watchdog re-issues the token. Must
    /// comfortably exceed one collection round (contention window + polls)
    /// so a busy-but-alive successor is not doubled.
    pub watchdog_timeout: f64,
    /// Re-issue budget per sector token; when exhausted the watchdog holder
    /// salvages the token's partial result and reports it to the sink.
    pub max_token_reissues: u32,
    /// Whole-query retries the sink may launch when `sink_timeout` expires
    /// with *zero* results merged (fresh dissemination, rotated itinerary
    /// origin). Partial results are kept and never retried.
    pub max_query_retries: u32,
    /// Sink-side serving layer (admission / merge / cache). Disabled by
    /// default; see [`ServingConfig`].
    pub serving: ServingConfig,
}

impl Default for DiknnConfig {
    fn default() -> Self {
        DiknnConfig {
            sectors: 8,
            width_factor: 3.0_f64.sqrt() / 2.0,
            collection_unit: 0.018,
            contention_slots: 8.0,
            assurance_gain: 0.1,
            rendezvous: true,
            early_stop_margin: 1.25,
            extend_target: 1.15,
            max_radius_growth: 2.0,
            response_bytes: 10,
            base_msg_bytes: 24,
            collection: CollectionScheme::Combined,
            sink_timeout: 20.0,
            token_watchdog: true,
            watchdog_timeout: 0.75,
            max_token_reissues: 2,
            max_query_retries: 1,
            serving: ServingConfig::default(),
        }
    }
}

impl DiknnConfig {
    pub fn validate(&self) {
        assert!(self.sectors >= 1, "need at least one sector");
        assert!(
            self.width_factor > 0.0 && self.width_factor <= 2.0,
            "width factor out of range"
        );
        assert!(
            (0.0..=1.0).contains(&self.assurance_gain),
            "assurance gain must be in [0, 1]"
        );
        assert!(self.collection_unit > 0.0);
        assert!(self.max_radius_growth >= 1.0);
        assert!(self.early_stop_margin >= 1.0);
        assert!(
            self.extend_target >= 1.0 && self.extend_target <= self.early_stop_margin,
            "extend target must be in [1, early_stop_margin]"
        );
        assert!(
            self.watchdog_timeout > 0.0 && self.watchdog_timeout.is_finite(),
            "watchdog timeout must be positive and finite"
        );
        assert!(self.sink_timeout > 0.0, "sink timeout must be positive");
        if let Err(e) = self.serving.validate() {
            panic!("serving config: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DiknnConfig::default();
        assert_eq!(c.sectors, 8);
        assert!((c.width_factor - 0.866_025_403_784_438_6).abs() < 1e-12);
        assert!((c.collection_unit - 0.018).abs() < 1e-12);
        assert!((c.assurance_gain - 0.1).abs() < 1e-12);
        assert!(c.rendezvous);
        assert_eq!(c.response_bytes, 10);
        c.validate();
    }

    #[test]
    fn serving_defaults_are_off_and_valid() {
        let s = ServingConfig::default();
        assert!(!s.enabled);
        assert_eq!(s.validate(), Ok(()));
        assert!(ServingConfig::enabled().enabled);
    }

    #[test]
    fn serving_rejects_zero_admission_ceiling() {
        let s = ServingConfig {
            max_in_flight: 0,
            ..ServingConfig::default()
        };
        assert_eq!(s.validate(), Err(ConfigError::ZeroAdmissionCeiling));
    }

    #[test]
    fn serving_rejects_non_positive_cache_ttl() {
        for ttl in [0.0, -1.0, f64::NAN] {
            let s = ServingConfig {
                cache_ttl_s: ttl,
                ..ServingConfig::default()
            };
            assert!(
                matches!(s.validate(), Err(ConfigError::NonPositiveCacheTtl(_))),
                "ttl {ttl} must be rejected"
            );
        }
    }

    #[test]
    fn serving_rejects_negative_merge_radius() {
        let s = ServingConfig {
            merge_radius_m: -0.1,
            ..ServingConfig::default()
        };
        assert_eq!(s.validate(), Err(ConfigError::NegativeMergeRadius(-0.1)));
        let s = ServingConfig {
            cache_radius_m: -2.0,
            ..ServingConfig::default()
        };
        assert_eq!(s.validate(), Err(ConfigError::NegativeMergeRadius(-2.0)));
    }

    #[test]
    #[should_panic(expected = "serving config")]
    fn protocol_validate_surfaces_serving_errors() {
        DiknnConfig {
            serving: ServingConfig {
                max_in_flight: 0,
                ..ServingConfig::default()
            },
            ..DiknnConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "assurance gain")]
    fn rejects_bad_gain() {
        DiknnConfig {
            assurance_gain: 1.5,
            ..DiknnConfig::default()
        }
        .validate();
    }
}
