//! Continuous KNN monitoring on top of snapshot DIKNN.
//!
//! The paper focuses on *snapshot* queries and notes that the continuous
//! in-network techniques [5, 6, 11, 23] "are good for constant monitoring
//! of queries of long-standing interest but do not suit well for on-demand
//! queries" (§2). The complementary direction — standing KNN interest
//! served by an infrastructure-free protocol — falls out naturally:
//! re-issue the snapshot query every `period` seconds and report the
//! *delta* of the answer set.
//!
//! [`ContinuousKnn`] wraps [`crate::Diknn`]: it schedules the rounds,
//! forwards all protocol events to the inner instance, and derives per-round
//! membership changes (joined/left) at the sink. This stays true to the
//! paper's architecture (no infrastructure persists between rounds) while
//! quantifying what a standing query costs under mobility.

use diknn_geom::Point;
use diknn_sim::{Ctx, NodeId, Protocol, SimTime};

use crate::config::DiknnConfig;
use crate::messages::DiknnMsg;
use crate::outcome::{KnnProtocol, QueryRequest};
use crate::protocol::Diknn;

/// A standing KNN interest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorRequest {
    /// First evaluation time, in seconds.
    pub start_at: f64,
    /// Re-evaluation period, in seconds.
    pub period: f64,
    /// Number of rounds to run.
    pub rounds: usize,
    pub sink: NodeId,
    pub q: Point,
    pub k: usize,
}

/// Membership change between consecutive rounds of one monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDelta {
    /// Monitor (request) index.
    pub monitor: usize,
    /// Round number within the monitor (0-based).
    pub round: usize,
    /// When the round's answer arrived at the sink.
    pub completed_at: Option<SimTime>,
    /// Nodes newly in the answer set.
    pub joined: Vec<NodeId>,
    /// Nodes that dropped out of the answer set.
    pub left: Vec<NodeId>,
    /// Full answer of the round.
    pub answer: Vec<NodeId>,
}

/// Continuous KNN monitoring protocol (periodic snapshot DIKNN).
pub struct ContinuousKnn {
    inner: Diknn,
    monitors: Vec<MonitorRequest>,
    /// Map from inner query index → (monitor, round).
    schedule: Vec<(usize, usize)>,
    deltas: Vec<RoundDelta>,
}

impl ContinuousKnn {
    pub fn new(cfg: DiknnConfig, monitors: Vec<MonitorRequest>) -> Self {
        let mut requests = Vec::new();
        let mut schedule = Vec::new();
        for (mi, m) in monitors.iter().enumerate() {
            assert!(m.period > 0.0, "monitor period must be positive");
            assert!(m.rounds > 0, "monitor needs at least one round");
            for round in 0..m.rounds {
                requests.push(QueryRequest {
                    at: m.start_at + round as f64 * m.period,
                    sink: m.sink,
                    q: m.q,
                    k: m.k,
                });
                schedule.push((mi, round));
            }
        }
        // The inner protocol assigns qids in *issue* (time) order, so sort
        // requests and schedule jointly by time — otherwise interleaved
        // rounds of different monitors would be misattributed. Stable sort
        // keeps same-time requests in declaration order, matching the
        // engine's timer tie-breaking.
        let mut paired: Vec<(QueryRequest, (usize, usize))> =
            requests.into_iter().zip(schedule).collect();
        paired.sort_by(|a, b| a.0.at.total_cmp(&b.0.at));
        let (requests, schedule): (Vec<_>, Vec<_>) = paired.into_iter().unzip();
        ContinuousKnn {
            inner: Diknn::new(cfg, requests),
            monitors,
            schedule,
            deltas: Vec::new(),
        }
    }

    /// The monitors being served.
    pub fn monitors(&self) -> &[MonitorRequest] {
        &self.monitors
    }

    /// Per-round membership deltas computed so far (completed rounds only;
    /// call after the run).
    pub fn deltas(&mut self) -> &[RoundDelta] {
        self.recompute_deltas();
        &self.deltas
    }

    /// Mean churn (|joined| + |left|) / k per round transition, a measure of
    /// how fast the true KNN set rotates under mobility.
    pub fn mean_churn(&mut self) -> f64 {
        self.recompute_deltas();
        let mut sum = 0.0;
        let mut n = 0usize;
        for d in &self.deltas {
            if d.round == 0 || d.completed_at.is_none() {
                continue;
            }
            let m = &self.monitors[d.monitor];
            sum += (d.joined.len() + d.left.len()) as f64 / m.k.max(1) as f64;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    fn recompute_deltas(&mut self) {
        self.deltas.clear();
        let outcomes = self.inner.outcomes();
        // Outcomes appear in issue order (qid == request index), so rounds
        // of one monitor are naturally ordered.
        let mut prev: Vec<Option<&[NodeId]>> = vec![None; self.monitors.len()];
        for (qid, &(mi, round)) in self.schedule.iter().enumerate() {
            let Some(o) = outcomes.get(qid) else {
                continue;
            };
            let answer: &[NodeId] = &o.answer;
            let (joined, left) = match prev[mi] {
                None => (answer.to_vec(), Vec::new()),
                Some(p) => (
                    answer.iter().filter(|n| !p.contains(n)).copied().collect(),
                    p.iter().filter(|n| !answer.contains(n)).copied().collect(),
                ),
            };
            self.deltas.push(RoundDelta {
                monitor: mi,
                round,
                completed_at: o.completed_at,
                joined,
                left,
                answer: answer.to_vec(),
            });
            if o.completed_at.is_some() {
                prev[mi] = Some(answer);
            }
        }
        self.deltas
            .sort_by_key(|d: &RoundDelta| (d.monitor, d.round));
    }
}

impl Protocol for ContinuousKnn {
    type Msg = DiknnMsg;

    fn on_start(&mut self, ctx: &mut Ctx<DiknnMsg>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &DiknnMsg, ctx: &mut Ctx<DiknnMsg>) {
        self.inner.on_message(at, from, msg, ctx);
    }

    fn on_timer(&mut self, at: NodeId, key: u64, ctx: &mut Ctx<DiknnMsg>) {
        self.inner.on_timer(at, key, ctx);
    }

    fn on_send_failed(&mut self, at: NodeId, to: NodeId, msg: &DiknnMsg, ctx: &mut Ctx<DiknnMsg>) {
        self.inner.on_send_failed(at, to, msg, ctx);
    }
}

impl KnnProtocol for ContinuousKnn {
    fn outcomes(&self) -> &[crate::QueryOutcome] {
        self.inner.outcomes()
    }

    fn outcomes_mut(&mut self) -> &mut [crate::QueryOutcome] {
        self.inner.outcomes_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_expands_rounds() {
        let m = MonitorRequest {
            start_at: 1.0,
            period: 5.0,
            rounds: 3,
            sink: NodeId(0),
            q: Point::new(50.0, 50.0),
            k: 5,
        };
        let c = ContinuousKnn::new(DiknnConfig::default(), vec![m]);
        assert_eq!(c.schedule.len(), 3);
        assert_eq!(c.schedule[2], (0, 2));
    }

    #[test]
    fn interleaved_monitors_map_to_time_ordered_qids() {
        // Monitor 0 fires at 1, 11; monitor 1 at 2, 4, 6: issue (time)
        // order is m0r0, m1r0, m1r1, m1r2, m0r1.
        let monitors = vec![
            MonitorRequest {
                start_at: 1.0,
                period: 10.0,
                rounds: 2,
                sink: NodeId(0),
                q: Point::ORIGIN,
                k: 3,
            },
            MonitorRequest {
                start_at: 2.0,
                period: 2.0,
                rounds: 3,
                sink: NodeId(1),
                q: Point::new(10.0, 0.0),
                k: 3,
            },
        ];
        let c = ContinuousKnn::new(DiknnConfig::default(), monitors);
        assert_eq!(c.schedule, vec![(0, 0), (1, 0), (1, 1), (1, 2), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rejects_zero_period() {
        let m = MonitorRequest {
            start_at: 1.0,
            period: 0.0,
            rounds: 2,
            sink: NodeId(0),
            q: Point::ORIGIN,
            k: 5,
        };
        ContinuousKnn::new(DiknnConfig::default(), vec![m]);
    }
}
