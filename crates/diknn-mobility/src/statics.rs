use crate::Mobility;
use diknn_geom::Point;

/// A node that never moves. This is the network model assumed by the paper's
/// baselines (KPT, Peer-tree) in their original publications, and the
/// `µmax = 0` corner of the mobility sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticMobility {
    position: Point,
}

impl StaticMobility {
    pub fn new(position: Point) -> Self {
        StaticMobility { position }
    }
}

impl Mobility for StaticMobility {
    fn position_at(&self, _t: f64) -> Point {
        self.position
    }

    fn speed_at(&self, _t: f64) -> f64 {
        0.0
    }

    fn max_speed(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_node_never_moves() {
        let m = StaticMobility::new(Point::new(3.0, 4.0));
        for t in [0.0, 1.0, 50.0, 1e6] {
            assert_eq!(m.position_at(t), Point::new(3.0, 4.0));
        }
    }
}
