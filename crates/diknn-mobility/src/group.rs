//! Reference-Point Group Mobility (RPGM).
//!
//! The paper's Figure 7 field is a population of caribou herds: animals
//! move *together*, each wandering around a drifting herd reference point.
//! RPGM models exactly that: a group leader performs random waypoint and
//! every member follows its own reference point (a fixed offset from the
//! leader) with bounded local deviation.
//!
//! Combined with [`crate::placement::clustered`] this gives mobile herds
//! whose spatial irregularity *persists over time* — a stricter stress for
//! density-based boundary estimation than independent RWP, where clusters
//! diffuse away.

use crate::rwp::{RandomWaypoint, RwpConfig};
use crate::Mobility;
use diknn_geom::{Point, Rect, Vec2};
use rand::Rng;
use std::sync::Arc;

/// Parameters of a herd.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupConfig {
    /// Field the herd's leader roams in.
    pub field: Rect,
    /// Leader (herd) speed `µmax` in m/s.
    pub leader_speed: f64,
    /// Radius of the herd: member reference offsets are within this.
    pub spread: f64,
    /// Amplitude of each member's local wander around its reference point.
    pub wander: f64,
    /// Period of the local wander in seconds.
    pub wander_period: f64,
    /// Plan horizon in seconds.
    pub horizon: f64,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            field: Rect::new(0.0, 0.0, 200.0, 200.0),
            leader_speed: 2.0,
            spread: 15.0,
            wander: 3.0,
            wander_period: 20.0,
            horizon: 200.0,
        }
    }
}

/// A herd: one shared leader trajectory plus per-member offsets.
pub struct Group {
    leader: Arc<RandomWaypoint>,
    cfg: GroupConfig,
}

impl Group {
    /// Create a herd whose leader starts at `center`.
    pub fn new(center: Point, cfg: GroupConfig, rng: &mut impl Rng) -> Self {
        let leader_cfg = RwpConfig {
            // The leader roams a shrunken field so the whole herd stays
            // inside the real one.
            field: Rect::new(
                cfg.field.min_x + cfg.spread,
                cfg.field.min_y + cfg.spread,
                (cfg.field.max_x - cfg.spread).max(cfg.field.min_x + cfg.spread + 1.0),
                (cfg.field.max_y - cfg.spread).max(cfg.field.min_y + cfg.spread + 1.0),
            ),
            ..RwpConfig::new(cfg.field, cfg.leader_speed, cfg.horizon)
        };
        Group {
            leader: Arc::new(RandomWaypoint::new(center, &leader_cfg, rng)),
            cfg,
        }
    }

    /// Spawn one member with a random reference offset and wander phase.
    pub fn member(&self, rng: &mut impl Rng) -> GroupMember {
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let rho = self.cfg.spread * rng.gen_range(0.0f64..1.0).sqrt();
        GroupMember {
            leader: Arc::clone(&self.leader),
            offset: Vec2::from_angle(theta) * rho,
            wander: self.cfg.wander,
            wander_period: self.cfg.wander_period.max(1e-3),
            phase: rng.gen_range(0.0..std::f64::consts::TAU),
            phase2: rng.gen_range(0.0..std::f64::consts::TAU),
            field: self.cfg.field,
        }
    }

    /// The leader's position (the herd reference point) at time `t`.
    pub fn leader_position_at(&self, t: f64) -> Point {
        self.leader.position_at(t)
    }
}

/// One herd member: leader position + fixed offset + smooth local wander.
pub struct GroupMember {
    leader: Arc<RandomWaypoint>,
    offset: Vec2,
    wander: f64,
    wander_period: f64,
    phase: f64,
    phase2: f64,
    field: Rect,
}

impl GroupMember {
    fn wander_at(&self, t: f64) -> Vec2 {
        // Smooth quasi-random wander: two incommensurate sinusoids.
        let w = std::f64::consts::TAU / self.wander_period;
        Vec2::new(
            self.wander * (w * t + self.phase).sin(),
            self.wander * (w * t * 0.731 + self.phase2).cos(),
        )
    }
}

impl Mobility for GroupMember {
    fn position_at(&self, t: f64) -> Point {
        self.field
            .clamp(self.leader.position_at(t) + self.offset + self.wander_at(t))
    }

    fn speed_at(&self, t: f64) -> f64 {
        // Finite-difference magnitude over a short interval; exact enough
        // for the assurance-gain statistics.
        let dt = 0.1;
        self.position_at(t).dist(self.position_at(t + dt)) / dt
    }

    fn max_speed(&self) -> f64 {
        self.leader.max_speed() + self.wander * std::f64::consts::TAU / self.wander_period * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn herd(seed: u64) -> (Group, Vec<GroupMember>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = GroupConfig::default();
        let group = Group::new(Point::new(100.0, 100.0), cfg, &mut rng);
        let members = (0..12).map(|_| group.member(&mut rng)).collect();
        (group, members)
    }

    #[test]
    fn members_stay_near_the_leader() {
        let (group, members) = herd(1);
        let cfg = GroupConfig::default();
        for i in 0..40 {
            let t = i as f64 * 3.7;
            let leader = group.leader_position_at(t);
            for m in &members {
                let d = m.position_at(t).dist(leader);
                assert!(
                    d <= cfg.spread + cfg.wander * 2.0 + 1e-6,
                    "member strayed {d} m from the herd at t={t}"
                );
            }
        }
    }

    #[test]
    fn members_stay_inside_the_field() {
        let (_, members) = herd(2);
        let field = GroupConfig::default().field;
        for i in 0..100 {
            let t = i as f64 * 1.3;
            for m in &members {
                assert!(field.contains(m.position_at(t)));
            }
        }
    }

    #[test]
    fn herd_moves_as_a_whole() {
        let (group, members) = herd(3);
        // Over a long window the leader moves far; members' displacement
        // must track it (cohesion), while members differ from each other.
        let t0 = 0.0;
        let t1 = 120.0;
        let leader_shift = group
            .leader_position_at(t0)
            .dist(group.leader_position_at(t1));
        assert!(leader_shift > 10.0, "leader barely moved: {leader_shift}");
        for m in &members {
            let shift = m.position_at(t0).dist(m.position_at(t1));
            assert!(
                (shift - leader_shift).abs() < GroupConfig::default().spread * 2.0 + 12.0,
                "member shift {shift} inconsistent with herd {leader_shift}"
            );
        }
        // Two members are not identical trajectories.
        let a = members[0].position_at(50.0);
        let b = members[1].position_at(50.0);
        assert!(a.dist(b) > 0.1);
    }

    #[test]
    fn wander_is_smooth_and_bounded() {
        let (_, members) = herd(4);
        let m = &members[0];
        let max = m.max_speed();
        let mut t = 0.0;
        while t < 60.0 {
            let d = m.position_at(t).dist(m.position_at(t + 0.05));
            assert!(
                d <= max * 0.05 + 1e-6,
                "speed {:.2} > bound {max:.2}",
                d / 0.05
            );
            t += 0.05;
        }
    }

    #[test]
    fn speed_at_is_consistent_with_motion() {
        let (_, members) = herd(5);
        let m = &members[0];
        let v = m.speed_at(10.0);
        assert!(v >= 0.0 && v <= m.max_speed() + 1e-6);
    }
}
