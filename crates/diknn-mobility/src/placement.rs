//! Initial node placements.
//!
//! The paper's main experiments place 200 nodes uniformly at random in a
//! 115×115 m² field (§5.1). The Figure 7 visualisation instead uses a
//! real-world caribou distribution with strong spatial irregularity; we
//! substitute a Gaussian-mixture ("herds") placement that reproduces the
//! irregularity phenomena DIKNN's rendezvous mechanism targets — see the
//! substitution notes in DESIGN.md.

use diknn_geom::{Point, Rect};
use rand::Rng;

/// Uniform-random placement of `n` nodes in `field`.
pub fn uniform(field: Rect, n: usize, rng: &mut impl Rng) -> Vec<Point> {
    assert!(!field.is_empty(), "placement field must be non-empty");
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(field.min_x..=field.max_x),
                rng.gen_range(field.min_y..=field.max_y),
            )
        })
        .collect()
}

/// Regular grid placement, `cols × rows` nodes centred in equal cells.
/// The "nodes form a grid" assumption the paper criticises in §4.2 —
/// useful as a best-case density baseline in tests and ablations.
pub fn grid(field: Rect, cols: usize, rows: usize) -> Vec<Point> {
    assert!(cols > 0 && rows > 0, "grid needs positive dimensions");
    let dx = field.width() / cols as f64;
    let dy = field.height() / rows as f64;
    let mut pts = Vec::with_capacity(cols * rows);
    for j in 0..rows {
        for i in 0..cols {
            pts.push(Point::new(
                field.min_x + (i as f64 + 0.5) * dx,
                field.min_y + (j as f64 + 0.5) * dy,
            ));
        }
    }
    pts
}

/// Parameters of the clustered placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of Gaussian clusters ("herds").
    pub clusters: usize,
    /// Standard deviation of each cluster, in metres.
    pub sigma: f64,
    /// Fraction of nodes scattered uniformly as background (0..=1); the rest
    /// are split evenly among clusters.
    pub background_fraction: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            clusters: 4,
            sigma: 8.0,
            background_fraction: 0.15,
        }
    }
}

/// Clustered ("caribou-herd") placement: cluster centres uniform in the
/// field, members Gaussian around their centre (clamped to the field), plus
/// a uniform background. This produces the spatial irregularity of \[8\] that
/// degrades density-based boundary estimation and creates itinerary voids.
pub fn clustered(field: Rect, n: usize, cfg: &ClusterConfig, rng: &mut impl Rng) -> Vec<Point> {
    assert!(cfg.clusters > 0, "need at least one cluster");
    assert!(
        (0.0..=1.0).contains(&cfg.background_fraction),
        "background fraction must be in [0, 1]"
    );
    let centers: Vec<Point> = uniform(field, cfg.clusters, rng);
    let n_background = (n as f64 * cfg.background_fraction).round() as usize;
    let n_clustered = n.saturating_sub(n_background);
    let mut pts = Vec::with_capacity(n);
    for i in 0..n_clustered {
        let c = centers[i % centers.len()];
        pts.push(field.clamp(Point::new(
            c.x + gaussian(rng) * cfg.sigma,
            c.y + gaussian(rng) * cfg.sigma,
        )));
    }
    pts.extend(uniform(field, n_background, rng));
    pts
}

/// Standard normal sample via Box–Muller (keeps us off extra dependencies).
fn gaussian(rng: &mut impl Rng) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A simple measure of spatial irregularity: the coefficient of variation of
/// per-cell counts over a `g×g` grid. Uniform placements score near
/// `1/sqrt(mean)`·…, clustered placements score much higher; tests use the
/// *relative* ordering only.
pub fn irregularity(field: Rect, points: &[Point], g: usize) -> f64 {
    assert!(g > 0);
    let mut counts = vec![0usize; g * g];
    for p in points {
        let cx = (((p.x - field.min_x) / field.width().max(1e-12)) * g as f64) as usize;
        let cy = (((p.y - field.min_y) / field.height().max(1e-12)) * g as f64) as usize;
        let cx = cx.min(g - 1);
        let cy = cy.min(g - 1);
        counts[cy * g + cx] += 1;
    }
    let mean = points.len() as f64 / (g * g) as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / (g * g) as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn field() -> Rect {
        Rect::new(0.0, 0.0, 115.0, 115.0)
    }

    #[test]
    fn uniform_stays_in_field_and_counts() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = uniform(field(), 200, &mut rng);
        assert_eq!(pts.len(), 200);
        assert!(pts.iter().all(|&p| field().contains(p)));
    }

    #[test]
    fn grid_is_regular() {
        let pts = grid(field(), 5, 4);
        assert_eq!(pts.len(), 20);
        assert!(pts.iter().all(|&p| field().contains(p)));
        // First cell centre.
        assert_eq!(pts[0], Point::new(11.5, 14.375));
    }

    #[test]
    fn clustered_stays_in_field() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pts = clustered(field(), 300, &ClusterConfig::default(), &mut rng);
        assert_eq!(pts.len(), 300);
        assert!(pts.iter().all(|&p| field().contains(p)));
    }

    #[test]
    fn clustered_is_more_irregular_than_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let u = uniform(field(), 400, &mut rng);
        let c = clustered(field(), 400, &ClusterConfig::default(), &mut rng);
        let iu = irregularity(field(), &u, 6);
        let ic = irregularity(field(), &c, 6);
        assert!(
            ic > 1.5 * iu,
            "clustered irregularity {ic} not clearly above uniform {iu}"
        );
    }

    #[test]
    fn irregularity_of_perfect_grid_is_low() {
        let pts = grid(field(), 10, 10);
        let score = irregularity(field(), &pts, 5);
        assert!(score < 1e-9, "grid should fill cells evenly, got {score}");
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let a = uniform(field(), 50, &mut SmallRng::seed_from_u64(9));
        let b = uniform(field(), 50, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "gaussian variance {var}");
    }
}
