use crate::Mobility;
use diknn_geom::Point;

/// Piecewise-linear playback of an externally supplied trajectory.
///
/// Used to feed recorded or hand-crafted trajectories into the simulator —
/// e.g. the deterministic crossing patterns in the integration tests, or a
/// converted animal-tracking trace in the Figure 7 style experiments.
#[derive(Debug, Clone)]
pub struct WaypointTrace {
    /// `(time, position)` samples, strictly increasing in time.
    samples: Vec<(f64, Point)>,
    max_speed: f64,
}

impl WaypointTrace {
    /// Build from `(time, position)` samples. Samples are sorted by time;
    /// duplicate timestamps keep the last position. At least one sample is
    /// required.
    pub fn new(mut samples: Vec<(f64, Point)>) -> Self {
        assert!(!samples.is_empty(), "trace needs at least one sample");
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        samples.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // Keep the later sample's position for a duplicate timestamp.
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        let max_speed = samples
            .windows(2)
            .map(|w| {
                let dt = w[1].0 - w[0].0;
                if dt > 0.0 {
                    w[0].1.dist(w[1].1) / dt
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max);
        WaypointTrace { samples, max_speed }
    }

    /// Convenience: a trace that visits `points` at a constant `speed`,
    /// starting at time 0.
    pub fn at_constant_speed(points: &[Point], speed: f64) -> Self {
        assert!(speed > 0.0, "trace speed must be positive");
        assert!(!points.is_empty(), "trace needs at least one point");
        let mut t = 0.0;
        let mut samples = vec![(0.0, points[0])];
        for w in points.windows(2) {
            t += w[0].dist(w[1]) / speed;
            samples.push((t, w[1]));
        }
        WaypointTrace::new(samples)
    }
}

impl Mobility for WaypointTrace {
    fn position_at(&self, t: f64) -> Point {
        let idx = self.samples.partition_point(|s| s.0 <= t);
        if idx == 0 {
            return self.samples[0].1;
        }
        if idx == self.samples.len() {
            return self.samples[idx - 1].1;
        }
        let (t0, p0) = self.samples[idx - 1];
        let (t1, p1) = self.samples[idx];
        let frac = if t1 > t0 { (t - t0) / (t1 - t0) } else { 1.0 };
        p0.lerp(p1, frac)
    }

    fn speed_at(&self, t: f64) -> f64 {
        let idx = self.samples.partition_point(|s| s.0 <= t);
        if idx == 0 || idx == self.samples.len() {
            return 0.0;
        }
        let (t0, p0) = self.samples[idx - 1];
        let (t1, p1) = self.samples[idx];
        if t1 > t0 {
            p0.dist(p1) / (t1 - t0)
        } else {
            0.0
        }
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_samples() {
        let tr = WaypointTrace::new(vec![
            (0.0, Point::new(0.0, 0.0)),
            (10.0, Point::new(10.0, 0.0)),
        ]);
        assert_eq!(tr.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(tr.position_at(-1.0), Point::new(0.0, 0.0));
        assert_eq!(tr.position_at(20.0), Point::new(10.0, 0.0));
        assert!((tr.speed_at(5.0) - 1.0).abs() < 1e-12);
        assert_eq!(tr.speed_at(20.0), 0.0);
        assert!((tr.max_speed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_speed_constructor() {
        let tr = WaypointTrace::at_constant_speed(
            &[
                Point::new(0.0, 0.0),
                Point::new(3.0, 4.0),
                Point::new(3.0, 10.0),
            ],
            2.0,
        );
        // First leg is 5 m at 2 m/s -> arrives at t=2.5.
        assert_eq!(tr.position_at(2.5), Point::new(3.0, 4.0));
        assert!((tr.max_speed() - 2.0).abs() < 1e-9);
        // Second leg 6 m -> arrives at t=5.5.
        assert_eq!(tr.position_at(5.5), Point::new(3.0, 10.0));
    }

    #[test]
    fn unsorted_and_duplicate_samples() {
        let tr = WaypointTrace::new(vec![
            (10.0, Point::new(10.0, 0.0)),
            (0.0, Point::new(0.0, 0.0)),
            (10.0, Point::new(12.0, 0.0)), // duplicate time, later wins
        ]);
        assert_eq!(tr.position_at(20.0), Point::new(12.0, 0.0));
    }
}
