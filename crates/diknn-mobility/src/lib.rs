//! Node mobility for the DIKNN reproduction.
//!
//! The paper models sensor movement with the **random waypoint** (RWP) model:
//! each node repeatedly picks a uniform destination in the field and walks
//! there at a uniform-random speed in `(0, µmax]` (§5.1). Ground-truth KNN
//! accuracy is computed against *exact* node positions at the query's valid
//! time, so mobility here is **analytic**: a [`Mobility`] plan is a pure
//! function from time to position, precomputed deterministically from a seed.
//!
//! Besides RWP this crate provides:
//!
//! * [`StaticMobility`] — stationary nodes (the fixed-network assumption the
//!   paper's baselines were designed for).
//! * [`WaypointTrace`] — piecewise-linear playback of an externally supplied
//!   trajectory.
//! * [`Group`] / [`GroupMember`] — Reference-Point Group Mobility: herds
//!   whose members follow a wandering leader (the Figure 7 caribou
//!   behaviour).
//! * [`placement`] — initial node placements: uniform, grid, and the
//!   clustered Gaussian-mixture placement standing in for the Gros Morne
//!   caribou distribution of Figure 7 (see DESIGN.md substitutions).
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

mod group;
pub mod placement;
mod rwp;
mod statics;
mod trace;
pub mod trace_io;

pub use group::{Group, GroupConfig, GroupMember};
pub use rwp::{RandomWaypoint, RwpConfig};
pub use statics::StaticMobility;
pub use trace::WaypointTrace;
pub use trace_io::{read_traces, write_traces, TraceError};

use diknn_geom::Point;

/// An analytic motion plan: exact position at any simulated time.
///
/// Implementations must be *total* over `t >= 0` and deterministic; the
/// simulator, the protocols and the ground-truth oracle all sample the same
/// plan, which is what makes pre-/post-accuracy measurements exact.
pub trait Mobility: Send + Sync {
    /// Exact position at time `t` seconds (clamped to the plan's horizon).
    fn position_at(&self, t: f64) -> Point;

    /// Instantaneous speed at time `t`, in m/s.
    fn speed_at(&self, t: f64) -> f64;

    /// An upper bound on the node's speed over the whole plan, in m/s.
    ///
    /// DIKNN's mobility-assurance mechanism (§4.3) tracks the fastest speed
    /// observed during dissemination; tests compare against this bound.
    fn max_speed(&self) -> f64;
}

/// A boxed mobility plan, as stored per node by the simulator.
pub type BoxedMobility = Box<dyn Mobility>;

impl Mobility for Box<dyn Mobility> {
    fn position_at(&self, t: f64) -> Point {
        self.as_ref().position_at(t)
    }
    fn speed_at(&self, t: f64) -> f64 {
        self.as_ref().speed_at(t)
    }
    fn max_speed(&self) -> f64 {
        self.as_ref().max_speed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_mobility_delegates() {
        let m: BoxedMobility = Box::new(StaticMobility::new(Point::new(1.0, 2.0)));
        assert_eq!(m.position_at(10.0), Point::new(1.0, 2.0));
        assert_eq!(m.speed_at(10.0), 0.0);
        assert_eq!(m.max_speed(), 0.0);
    }
}
