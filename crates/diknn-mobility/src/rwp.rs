use crate::Mobility;
use diknn_geom::{Point, Rect};
use rand::Rng;

/// Configuration of the random waypoint model (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RwpConfig {
    /// Field the node roams in; destinations are uniform over this rectangle.
    pub field: Rect,
    /// Maximum speed `µmax` in m/s. Leg speeds are uniform in
    /// `[min_speed, µmax]`.
    pub max_speed: f64,
    /// Minimum leg speed in m/s. The paper says "0 to µmax", but a literal
    /// zero-speed leg never terminates (the classic RWP speed-decay
    /// pathology), so a small positive floor is used.
    pub min_speed: f64,
    /// Pause time at each waypoint, in seconds (0 in the paper's setup).
    pub pause: f64,
    /// Plan horizon in seconds: legs are generated until at least this time.
    /// Beyond the horizon the node freezes at its last position.
    pub horizon: f64,
}

impl RwpConfig {
    /// The paper's default: roam the given field at up to `max_speed`,
    /// no pauses, plan for `horizon` seconds.
    pub fn new(field: Rect, max_speed: f64, horizon: f64) -> Self {
        RwpConfig {
            field,
            max_speed,
            min_speed: (0.1 * max_speed).clamp(1e-3, 0.5),
            pause: 0.0,
            horizon,
        }
    }
}

/// One straight-line leg of a random-waypoint trajectory.
#[derive(Debug, Clone, Copy)]
struct Leg {
    /// Departure time from `from` (after any pause).
    start: f64,
    /// Arrival time at `to`; `end >= start`.
    end: f64,
    from: Point,
    to: Point,
    speed: f64,
}

/// The random waypoint model: pick a uniform destination, walk at a uniform
/// random speed, pause, repeat. The entire trajectory is generated eagerly
/// at construction from the provided RNG, so lookups are pure and the plan
/// can be shared with the ground-truth oracle.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    legs: Vec<Leg>,
    max_speed: f64,
}

impl RandomWaypoint {
    /// Build a trajectory starting at `start`, using `rng` for destinations
    /// and speeds.
    pub fn new(start: Point, cfg: &RwpConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.max_speed > 0.0, "RWP needs a positive max speed");
        assert!(
            cfg.min_speed > 0.0 && cfg.min_speed <= cfg.max_speed,
            "RWP min speed must be in (0, max_speed]"
        );
        assert!(!cfg.field.is_empty(), "RWP field must be non-empty");
        let mut legs = Vec::new();
        let mut t = 0.0;
        let mut pos = cfg.field.clamp(start);
        let mut max_seen = 0.0f64;
        while t < cfg.horizon {
            let dest = Point::new(
                rng.gen_range(cfg.field.min_x..=cfg.field.max_x),
                rng.gen_range(cfg.field.min_y..=cfg.field.max_y),
            );
            let speed = rng.gen_range(cfg.min_speed..=cfg.max_speed);
            let dist = pos.dist(dest);
            let travel = dist / speed;
            let start_t = t + cfg.pause;
            legs.push(Leg {
                start: start_t,
                end: start_t + travel,
                from: pos,
                to: dest,
                speed,
            });
            max_seen = max_seen.max(speed);
            t = start_t + travel;
            pos = dest;
        }
        RandomWaypoint {
            legs,
            max_speed: max_seen,
        }
    }

    fn leg_at(&self, t: f64) -> Option<&Leg> {
        // Legs are sorted by start time; binary search the last leg with
        // start <= t.
        let idx = self.legs.partition_point(|l| l.start <= t);
        if idx == 0 {
            None
        } else {
            Some(&self.legs[idx - 1])
        }
    }
}

impl Mobility for RandomWaypoint {
    fn position_at(&self, t: f64) -> Point {
        match self.leg_at(t) {
            None => self.legs.first().map(|l| l.from).unwrap_or(Point::ORIGIN),
            Some(leg) => {
                if t >= leg.end {
                    // Pausing at the waypoint or past the horizon.
                    leg.to
                } else {
                    let frac = if leg.end > leg.start {
                        (t - leg.start) / (leg.end - leg.start)
                    } else {
                        1.0
                    };
                    leg.from.lerp(leg.to, frac)
                }
            }
        }
    }

    fn speed_at(&self, t: f64) -> f64 {
        match self.leg_at(t) {
            Some(leg) if t < leg.end => leg.speed,
            _ => 0.0,
        }
    }

    fn max_speed(&self) -> f64 {
        self.max_speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mobility;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn field() -> Rect {
        Rect::new(0.0, 0.0, 115.0, 115.0)
    }

    fn plan(seed: u64, max_speed: f64) -> RandomWaypoint {
        let mut rng = SmallRng::seed_from_u64(seed);
        RandomWaypoint::new(
            Point::new(50.0, 50.0),
            &RwpConfig::new(field(), max_speed, 200.0),
            &mut rng,
        )
    }

    #[test]
    fn starts_at_start_position() {
        let m = plan(42, 10.0);
        assert_eq!(m.position_at(0.0), Point::new(50.0, 50.0));
    }

    #[test]
    fn stays_inside_field() {
        let m = plan(7, 30.0);
        let f = field();
        let mut t = 0.0;
        while t < 220.0 {
            assert!(f.contains(m.position_at(t)), "escaped field at t={t}");
            t += 0.25;
        }
    }

    #[test]
    fn respects_speed_bound() {
        let m = plan(3, 10.0);
        assert!(m.max_speed() <= 10.0);
        let dt = 0.01;
        let mut t = 0.0;
        while t < 150.0 {
            let d = m.position_at(t).dist(m.position_at(t + dt));
            assert!(
                d <= 10.0 * dt + 1e-9,
                "moved {d} m in {dt}s at t={t} (>{} m/s)",
                d / dt
            );
            t += 1.37;
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = plan(99, 15.0);
        let b = plan(99, 15.0);
        for i in 0..100 {
            let t = i as f64 * 1.7;
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = plan(1, 15.0);
        let b = plan(2, 15.0);
        let moved = (1..50).any(|i| {
            let t = i as f64;
            a.position_at(t) != b.position_at(t)
        });
        assert!(moved);
    }

    #[test]
    fn freezes_past_horizon() {
        let m = plan(5, 10.0);
        let end = m.position_at(1e6);
        assert_eq!(m.position_at(2e6), end);
        assert_eq!(m.speed_at(1e6), 0.0);
    }

    #[test]
    fn motion_is_continuous() {
        let m = plan(11, 20.0);
        let mut t = 0.0;
        let mut prev = m.position_at(0.0);
        while t < 150.0 {
            t += 0.05;
            let cur = m.position_at(t);
            assert!(prev.dist(cur) <= 20.0 * 0.05 + 1e-9);
            prev = cur;
        }
    }

    #[test]
    fn pause_holds_position() {
        let mut rng = SmallRng::seed_from_u64(13);
        let cfg = RwpConfig {
            pause: 5.0,
            ..RwpConfig::new(field(), 10.0, 100.0)
        };
        let m = RandomWaypoint::new(Point::new(10.0, 10.0), &cfg, &mut rng);
        // The initial pause holds the start position for 5 seconds.
        assert_eq!(m.position_at(0.0), Point::new(10.0, 10.0));
        assert_eq!(m.position_at(4.9), Point::new(10.0, 10.0));
        assert_eq!(m.speed_at(2.0), 0.0);
    }
}
