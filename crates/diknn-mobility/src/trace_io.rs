//! Plain-text trace serialisation.
//!
//! The paper's Figure 7 uses real animal-tracking data \[27\]. This module
//! lets such data be imported: a trace file is CSV-like lines
//! `node_id,time_s,x,y` (header lines and `#` comments ignored), one sample
//! per line, any order. Export writes the same format by sampling plans at
//! a fixed rate, so synthetic scenarios can be round-tripped, plotted, or
//! fed to other tools.

use crate::{Mobility, WaypointTrace};
use diknn_geom::Point;
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Parse a trace file into per-node [`WaypointTrace`]s, ordered by node id.
///
/// Unknown/malformed lines produce an error naming the line number. Node
/// ids may be sparse; the result maps each id to its trace.
pub fn read_traces(reader: impl BufRead) -> io::Result<BTreeMap<u64, WaypointTrace>> {
    let mut samples: BTreeMap<u64, Vec<(f64, Point)>> = BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Skip a header line.
        if lineno == 0 && trimmed.chars().next().is_some_and(|c| c.is_alphabetic()) {
            continue;
        }
        let mut parts = trimmed.split(',').map(str::trim);
        let parse_err = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: bad {what}: {trimmed:?}", lineno + 1),
            )
        };
        let id: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("node id"))?;
        let t: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("time"))?;
        let x: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("x"))?;
        let y: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("y"))?;
        if !t.is_finite() || !x.is_finite() || !y.is_finite() {
            return Err(parse_err("finite value"));
        }
        samples.entry(id).or_default().push((t, Point::new(x, y)));
    }
    samples
        .into_iter()
        .map(|(id, s)| {
            if s.is_empty() {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node {id} has no samples"),
                ))
            } else {
                Ok((id, WaypointTrace::new(s)))
            }
        })
        .collect()
}

/// Sample mobility plans every `interval` seconds over `[0, duration]` and
/// write them in the trace format (with a header line).
pub fn write_traces(
    mut writer: impl Write,
    plans: &[impl Mobility],
    duration: f64,
    interval: f64,
) -> io::Result<()> {
    assert!(interval > 0.0, "sampling interval must be positive");
    writeln!(writer, "node,time_s,x,y")?;
    for (id, plan) in plans.iter().enumerate() {
        let mut t = 0.0;
        while t <= duration + 1e-9 {
            let p = plan.position_at(t);
            writeln!(writer, "{id},{t:.3},{:.3},{:.3}", p.x, p.y)?;
            t += interval;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticMobility;

    #[test]
    fn round_trip() {
        let plans = vec![
            StaticMobility::new(Point::new(1.0, 2.0)),
            StaticMobility::new(Point::new(3.5, -4.25)),
        ];
        let mut buf = Vec::new();
        write_traces(&mut buf, &plans, 2.0, 1.0).unwrap();
        let traces = read_traces(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[&0].position_at(1.5), Point::new(1.0, 2.0));
        assert_eq!(traces[&1].position_at(0.0), Point::new(3.5, -4.25));
    }

    #[test]
    fn parses_comments_and_header() {
        let text = "node,time_s,x,y\n# comment\n7,0.0,1.0,2.0\n7,10.0,11.0,2.0\n";
        let traces = read_traces(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(traces.len(), 1);
        let tr = &traces[&7];
        assert_eq!(tr.position_at(5.0), Point::new(6.0, 2.0)); // interpolated
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "1,notanumber,2,3\n",
            "1,0.0,inf,3\n",
            "1,0.0,2.0\n",            // missing y
            "1,0,0,0\nx,0.0,2.0,3.0\n", // bad id past the header line
        ] {
            let err = read_traces(io::BufReader::new(bad.as_bytes()));
            assert!(err.is_err(), "accepted malformed line {bad:?}");
        }
    }

    #[test]
    fn moving_trace_round_trip_accuracy() {
        // A linearly moving plan sampled at 0.5 s reproduces positions at
        // sample times exactly and interpolates in between.
        let plan = crate::WaypointTrace::at_constant_speed(
            &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            1.0,
        );
        let mut buf = Vec::new();
        write_traces(&mut buf, std::slice::from_ref(&plan), 10.0, 0.5).unwrap();
        let traces = read_traces(io::BufReader::new(&buf[..])).unwrap();
        let rt = &traces[&0];
        for i in 0..20 {
            let t = i as f64 * 0.5;
            assert!(rt.position_at(t).dist(plan.position_at(t)) < 1e-3);
        }
    }
}
