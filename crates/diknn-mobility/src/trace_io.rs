//! Plain-text trace serialisation.
//!
//! The paper's Figure 7 uses real animal-tracking data \[27\]. This module
//! lets such data be imported: a trace file is CSV-like lines
//! `node_id,time_s,x,y` (header lines and `#` comments ignored), one sample
//! per line, any order. Export writes the same format by sampling plans at
//! a fixed rate, so synthetic scenarios can be round-tripped, plotted, or
//! fed to other tools.

use crate::{Mobility, WaypointTrace};
use diknn_geom::Point;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Failure while reading a trace file.
///
/// Parse failures carry the 1-based line number and the offending line so
/// callers can point a user at the exact spot in a large trace file.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// A data line could not be parsed. `field` names the first field that
    /// failed (`"node id"`, `"time"`, `"x"`, `"y"`, or `"finite value"`).
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Which field failed to parse.
        field: &'static str,
        /// The offending line, trimmed.
        content: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceError::Parse {
                line,
                field,
                content,
            } => write!(f, "trace line {line}: bad {field}: {content:?}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Parse a trace file into per-node [`WaypointTrace`]s, ordered by node id.
///
/// Malformed lines produce [`TraceError::Parse`] naming the 1-based line
/// number. Node ids may be sparse; the result maps each id to its trace.
pub fn read_traces(reader: impl BufRead) -> Result<BTreeMap<u64, WaypointTrace>, TraceError> {
    let mut samples: BTreeMap<u64, Vec<(f64, Point)>> = BTreeMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Skip a header line.
        if lineno == 0 && trimmed.chars().next().is_some_and(|c| c.is_alphabetic()) {
            continue;
        }
        let mut parts = trimmed.split(',').map(str::trim);
        let parse_err = |field: &'static str| TraceError::Parse {
            line: lineno + 1,
            field,
            content: trimmed.to_string(),
        };
        let id: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("node id"))?;
        let t: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("time"))?;
        let x: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("x"))?;
        let y: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err("y"))?;
        if !t.is_finite() || !x.is_finite() || !y.is_finite() {
            return Err(parse_err("finite value"));
        }
        samples.entry(id).or_default().push((t, Point::new(x, y)));
    }
    // Every entry was created by the push above, so each group is non-empty
    // and `WaypointTrace::new` is safe.
    Ok(samples
        .into_iter()
        .map(|(id, s)| (id, WaypointTrace::new(s)))
        .collect())
}

/// Sample mobility plans every `interval` seconds over `[0, duration]` and
/// write them in the trace format (with a header line).
pub fn write_traces(
    mut writer: impl Write,
    plans: &[impl Mobility],
    duration: f64,
    interval: f64,
) -> io::Result<()> {
    assert!(interval > 0.0, "sampling interval must be positive");
    writeln!(writer, "node,time_s,x,y")?;
    for (id, plan) in plans.iter().enumerate() {
        let mut t = 0.0;
        while t <= duration + 1e-9 {
            let p = plan.position_at(t);
            writeln!(writer, "{id},{t:.3},{:.3},{:.3}", p.x, p.y)?;
            t += interval;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StaticMobility;

    #[test]
    fn round_trip() {
        let plans = vec![
            StaticMobility::new(Point::new(1.0, 2.0)),
            StaticMobility::new(Point::new(3.5, -4.25)),
        ];
        let mut buf = Vec::new();
        write_traces(&mut buf, &plans, 2.0, 1.0).unwrap();
        let traces = read_traces(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[&0].position_at(1.5), Point::new(1.0, 2.0));
        assert_eq!(traces[&1].position_at(0.0), Point::new(3.5, -4.25));
    }

    #[test]
    fn parses_comments_and_header() {
        let text = "node,time_s,x,y\n# comment\n7,0.0,1.0,2.0\n7,10.0,11.0,2.0\n";
        let traces = read_traces(io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(traces.len(), 1);
        let tr = &traces[&7];
        assert_eq!(tr.position_at(5.0), Point::new(6.0, 2.0)); // interpolated
    }

    #[test]
    fn rejects_malformed_lines() {
        // (input, expected 1-based line, expected failing field)
        for (bad, line, field) in [
            ("1,notanumber,2,3\n", 1, "time"),
            ("1,0.0,inf,3\n", 1, "finite value"),
            ("1,0.0,2.0\n", 1, "y"),                    // missing y
            ("1,0,0,0\nx,0.0,2.0,3.0\n", 2, "node id"), // bad id past the header line
        ] {
            match read_traces(io::BufReader::new(bad.as_bytes())) {
                Err(TraceError::Parse {
                    line: l, field: f, ..
                }) => {
                    assert_eq!((l, f), (line, field), "wrong location for {bad:?}");
                }
                other => panic!("accepted malformed line {bad:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn parse_error_display_names_the_line() {
        let err = read_traces(io::BufReader::new(&b"# c\n5,oops,1,2\n"[..])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("time"), "{msg}");
    }

    #[test]
    fn moving_trace_round_trip_accuracy() {
        // A linearly moving plan sampled at 0.5 s reproduces positions at
        // sample times exactly and interpolates in between.
        let plan = crate::WaypointTrace::at_constant_speed(
            &[Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            1.0,
        );
        let mut buf = Vec::new();
        write_traces(&mut buf, std::slice::from_ref(&plan), 10.0, 0.5).unwrap();
        let traces = read_traces(io::BufReader::new(&buf[..])).unwrap();
        let rt = &traces[&0];
        for i in 0..20 {
            let t = i as f64 * 0.5;
            assert!(rt.position_at(t).dist(plan.position_at(t)) < 1e-3);
        }
    }
}
