//! Seam audit for the sharded engine (ISSUE 10 bugfix sweep): every site
//! where shard-local ownership could disagree with global geometry gets a
//! constructed regression test *before* the sharded run loop relies on it.
//!
//! * [`ShardMap`] edges — a node exactly on a partition boundary must
//!   belong to exactly one band, deterministically, and out-of-field
//!   drifters must clamp the way [`SpatialGrid`] clamps them into edge
//!   cells (so shard ownership and grid membership never disagree).
//! * Drift padding across bands — a padded audible-set query whose window
//!   spans two (or more) shard bands must see every candidate the global
//!   brute-force scan sees, for senders parked exactly on the seam.
//! * [`Sector::contains`] on a seam — the itinerary sectors partition the
//!   disk with inclusive borders; a KNN boundary point that happens to lie
//!   exactly on a shard boundary must still be claimed by at least one and
//!   at most two (seam-adjacent) sectors, never zero.
//! * [`AudibleWorld::compute`] ≡ engine oracle — the shard workers'
//!   audible-set function must equal the brute-force scan for boundary
//!   placements, with and without the spatial grid, including drifted
//!   positions answered through a stale (padded) grid.

use std::sync::Arc;

use diknn_geom::{Point, Rect, Sector};
use diknn_mobility::{StaticMobility, WaypointTrace};
use diknn_sim::{
    AudibleWorld, FramePool, Handle, NodeId, ShardMap, SharedMobility, SimTime, SpatialGrid,
    WorkItem,
};

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 100.0,
    max_y: 100.0,
};
const RANGE: f64 = 20.0;

/// Mint a real (pool-issued) frame handle for test work items.
fn handle() -> Handle {
    FramePool::<u8>::new().insert(0)
}

/// Brute-force audible set: alive ids within `RANGE` of `origin`
/// (excluding the sender), ascending.
fn brute(positions: &[Point], alive: &[bool], from: usize, origin: Point) -> Vec<NodeId> {
    (0..positions.len())
        .filter(|&i| i != from && alive[i] && origin.dist_sq(positions[i]) <= RANGE * RANGE)
        .map(|i| NodeId(i as u32))
        .collect()
}

fn static_world(positions: &[Point], with_grid: bool) -> (AudibleWorld, Vec<bool>) {
    let mobility: Vec<SharedMobility> = positions
        .iter()
        .map(|&p| Arc::new(StaticMobility::new(p)) as SharedMobility)
        .collect();
    let alive = vec![true; positions.len()];
    let grid = with_grid.then(|| {
        Arc::new(SpatialGrid::build(
            FIELD,
            RANGE,
            positions,
            0.0,
            0.5 * RANGE,
            SimTime::ZERO,
        ))
    });
    let world = AudibleWorld::new(
        Arc::new(mobility),
        grid,
        Arc::new(alive.clone()),
        FIELD,
        RANGE,
        0,
    );
    (world, alive)
}

#[test]
fn node_exactly_on_partition_edge_belongs_to_one_band() {
    for shards in [2, 3, 4, 7] {
        let map = ShardMap::new(FIELD, shards);
        let band_w = FIELD.width() / shards as f64;
        for b in 0..shards {
            let edge = FIELD.min_x + b as f64 * band_w;
            let owner = map.shard_of(Point::new(edge, 50.0));
            // A boundary point goes to the upper band (the one starting at
            // the edge) — same rule as `SpatialGrid` cell edges.
            assert_eq!(owner, b, "{shards} shards, edge {edge}");
            // Ownership is exclusive: a hair below the edge is the lower
            // band (except at the field minimum, which has no lower band).
            if b > 0 {
                let below = map.shard_of(Point::new(edge - 1e-9, 50.0));
                assert_eq!(below, b - 1, "{shards} shards, below edge {edge}");
            }
        }
    }
}

#[test]
fn shard_clamping_matches_grid_clamping() {
    // The grid clamps out-of-field positions into edge cells; the shard
    // map must clamp the same drifters into edge bands, so a node the
    // grid files in column 0 can never be owned by a middle shard.
    let map = ShardMap::new(FIELD, 4);
    for &(x, want) in &[
        (-50.0, 0usize),
        (-1e-9, 0),
        (0.0, 0),
        (100.0, 3),
        (150.0, 3),
        (f64::MAX, 3),
    ] {
        assert_eq!(map.shard_of(Point::new(x, 0.0)), want, "x = {x}");
    }
}

#[test]
fn padded_query_spanning_two_bands_sees_every_candidate() {
    // Sender parked exactly on the 2-shard seam (x = 50) with receivers
    // straddling it, including receivers exactly at range² distance and
    // exactly on the seam themselves. The shard worker's grid-path answer
    // must equal the global brute-force scan — the query window is a
    // global-grid window, so band ownership must not leak into coverage.
    let seam = 50.0;
    let positions = vec![
        Point::new(seam, 50.0),         // 0: sender, on the seam
        Point::new(seam - 19.9, 50.0),  // 1: in range, left band
        Point::new(seam + 19.9, 50.0),  // 2: in range, right band
        Point::new(seam - RANGE, 50.0), // 3: exactly at range, left
        Point::new(seam + RANGE, 50.0), // 4: exactly at range, right
        Point::new(seam, 30.1),         // 5: in range, on the seam
        Point::new(seam - 20.1, 50.0),  // 6: out of range, left
        Point::new(seam + 25.0, 50.0),  // 7: out of range, right
    ];
    for with_grid in [false, true] {
        let (world, alive) = static_world(&positions, with_grid);
        let item = WorkItem {
            at: SimTime::ZERO,
            handle: handle(),
            from: NodeId(0),
        };
        let mut got = Vec::new();
        world.compute(&item, &mut got);
        let want = brute(&positions, &alive, 0, positions[0]);
        assert_eq!(got, want, "with_grid = {with_grid}");
        assert_eq!(
            got,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4), NodeId(5)]
        );
    }
}

#[test]
fn drift_padding_covers_movers_crossing_a_band_seam() {
    // Nodes race across the 2-band seam while the grid stays frozen at
    // t = 0: the drift pad (vmax · Δt) must widen the worker's query
    // window enough that a mover filed in the left band's cells is still
    // found when it is audible from a right-band sender — and vice versa.
    let vmax = 10.0;
    let t = SimTime::from_secs_f64(1.0); // movers are 10 m from their anchors
    let plan = |x0: f64, x1: f64| -> SharedMobility {
        Arc::new(WaypointTrace::new(vec![
            (0.0, Point::new(x0, 50.0)),
            (1.0, Point::new(x1, 50.0)),
        ])) as SharedMobility
    };
    // Sender static near the seam's right side; movers start deep in one
    // band and end within range on the other side.
    let mobility: Vec<SharedMobility> = vec![
        Arc::new(StaticMobility::new(Point::new(55.0, 50.0))) as SharedMobility,
        plan(34.0, 44.0), // left → still left band, enters range
        plan(48.0, 58.0), // crosses the seam into the sender's band
        plan(76.0, 66.0), // right → approaches from the right, enters range
        plan(20.0, 30.0), // stays far out of range
    ];
    let t0_positions: Vec<Point> = mobility.iter().map(|m| m.position_at(0.0)).collect();
    let grid = SpatialGrid::build(
        FIELD,
        RANGE,
        &t0_positions,
        vmax,
        0.5 * RANGE,
        SimTime::ZERO,
    );
    assert!(
        grid.drift_bound(t) >= vmax * 1.0 - 1e-9,
        "stale grid must pad by vmax·Δt"
    );
    let alive = vec![true; mobility.len()];
    let at_t: Vec<Point> = mobility.iter().map(|m| m.position_at(1.0)).collect();
    let world = AudibleWorld::new(
        Arc::new(mobility),
        Some(Arc::new(grid)),
        Arc::new(alive.clone()),
        FIELD,
        RANGE,
        0,
    );
    let item = WorkItem {
        at: t,
        handle: handle(),
        from: NodeId(0),
    };
    let mut got = Vec::new();
    world.compute(&item, &mut got);
    let want = brute(&at_t, &alive, 0, at_t[0]);
    assert_eq!(got, want);
    assert_eq!(got, vec![NodeId(1), NodeId(2), NodeId(3)]);
}

#[test]
fn sector_seams_on_shard_boundaries_leave_no_gaps() {
    // An itinerary apex on the shard seam, sectors whose borders run
    // straight up the seam: every probe point on the seam (and nudged a
    // hair to either side — the other shard) must be claimed by at least
    // one sector and at most two (only when it lies on a shared border).
    let apex = Point::new(50.0, 50.0);
    for sectors in [3usize, 4, 6] {
        // origin = π/2 puts one border exactly on the vertical seam.
        let parts = Sector::partition(apex, RANGE, sectors, std::f64::consts::FRAC_PI_2);
        for &dy in &[1.0, 5.0, RANGE - 1e-9, -1.0, -RANGE + 1e-9] {
            for &dx in &[0.0, 1e-9, -1e-9] {
                let p = Point::new(apex.x + dx, apex.y + dy);
                let claims = parts.iter().filter(|s| s.contains(p)).count();
                assert!(
                    (1..=2).contains(&claims),
                    "{sectors} sectors: point ({}, {}) claimed by {claims}",
                    p.x,
                    p.y
                );
            }
        }
    }
}

#[test]
fn boundary_heavy_placement_matches_brute_force_for_all_senders() {
    // A lattice snapped onto shard-band edges for 2, 4 and 7 bands plus
    // the grid's own cell edges: for *every* sender the worker's function
    // (grid path) must equal the brute-force scan (no-grid path).
    let mut positions = Vec::new();
    for shards in [2usize, 4, 7] {
        let band_w = FIELD.width() / shards as f64;
        for b in 0..=shards {
            let x = (FIELD.min_x + b as f64 * band_w).min(FIELD.max_x);
            for &y in &[0.0, 33.0, 50.0, 66.0, 100.0] {
                positions.push(Point::new(x, y));
            }
        }
    }
    let (grid_world, alive) = static_world(&positions, true);
    let (brute_world, _) = static_world(&positions, false);
    for from in 0..positions.len() {
        let item = WorkItem {
            at: SimTime::ZERO,
            handle: handle(),
            from: NodeId(from as u32),
        };
        let (mut via_grid, mut via_brute) = (Vec::new(), Vec::new());
        grid_world.compute(&item, &mut via_grid);
        brute_world.compute(&item, &mut via_brute);
        let want = brute(&positions, &alive, from, positions[from]);
        assert_eq!(via_grid, want, "grid path, sender {from}");
        assert_eq!(via_brute, want, "brute path, sender {from}");
    }
}
