//! Equivalence of the spatial grid with the brute-force oracle.
//!
//! The grid is only allowed to change *cost*, never behaviour: a range
//! query answered through `SpatialGrid` candidates + exact re-check must
//! produce exactly the set the O(n) scan produces, in the same order, for
//! any placement — including nodes exactly on cell boundaries, pairs at
//! exactly the range² boundary, out-of-field positions (clamped into edge
//! cells), and drifted positions covered by the `vmax · Δt` query pad.
//! A full-engine test then pins the strongest form of the claim: a whole
//! simulation under `NeighborIndex::Grid` is bit-identical to one under
//! `NeighborIndex::BruteForce`.

use diknn_geom::{Point, Rect};
use diknn_mobility::{Mobility, RandomWaypoint, RwpConfig, StaticMobility, WaypointTrace};
use diknn_sim::{
    Ctx, FaultPlan, FaultRegion, JamZone, NeighborIndex, NodeId, Protocol, SharedMobility,
    SimConfig, SimDuration, SimTime, Simulator, SpatialGrid, TraceConfig,
};
use proptest::prelude::*;
use proptest::ProptestConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 115.0,
    max_y: 115.0,
};
const RANGE: f64 = 20.0;

/// Brute-force oracle: ids within `radius` of `center`, ascending.
fn brute_in_range(positions: &[Point], center: Point, radius: f64) -> Vec<u32> {
    (0..positions.len() as u32)
        .filter(|&i| center.dist_sq(positions[i as usize]) <= radius * radius)
        .collect()
}

/// Grid path: candidates, exact re-check with the same predicate, sort.
fn grid_in_range(
    grid: &SpatialGrid,
    positions: &[Point],
    center: Point,
    radius: f64,
    now: SimTime,
) -> Vec<u32> {
    let mut cand = Vec::new();
    grid.candidates_near(center, radius, now, &mut cand);
    cand.sort_unstable();
    cand.retain(|&i| center.dist_sq(positions[i as usize]) <= radius * radius);
    cand
}

fn assert_equivalent(positions: &[Point], queries: &[Point]) {
    let grid = SpatialGrid::build(FIELD, RANGE, positions, 0.0, 0.5 * RANGE, SimTime::ZERO);
    for &q in queries {
        let brute = brute_in_range(positions, q, RANGE);
        let fast = grid_in_range(&grid, positions, q, RANGE, SimTime::ZERO);
        assert_eq!(fast, brute, "query at ({}, {})", q.x, q.y);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform random placements, including positions outside the field
    /// (the grid clamps them into edge cells; membership must not care).
    #[test]
    fn random_placements_match_brute_force(
        pts in prop::collection::vec((-10.0..130.0f64, -10.0..130.0f64), 1..150),
        qx in -10.0..130.0f64,
        qy in -10.0..130.0f64,
    ) {
        let positions: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let queries = [Point::new(qx, qy), positions[0]];
        assert_equivalent(&positions, &queries);
    }

    /// Clustered placements: everything piled into a few dense cells plus
    /// points snapped exactly onto cell-boundary coordinates.
    #[test]
    fn clustered_and_boundary_placements_match_brute_force(
        picks in prop::collection::vec((0usize..4, -3.0..3.0f64, -3.0..3.0f64), 1..120),
        snaps in prop::collection::vec((0usize..6, 0usize..6), 0..20),
        qc in 0usize..4,
    ) {
        let centers = [
            Point::new(10.0, 10.0),
            Point::new(60.0, 60.0),
            Point::new(60.0, 61.0),
            Point::new(110.0, 10.0),
        ];
        let mut positions: Vec<Point> = picks
            .iter()
            .map(|&(c, dx, dy)| Point::new(centers[c].x + dx, centers[c].y + dy))
            .collect();
        // Nodes exactly on cell corners (multiples of the cell size = 20):
        // the floor() bucketing must stay consistent with the query window.
        positions.extend(
            snaps
                .iter()
                .map(|&(i, j)| Point::new(i as f64 * RANGE, j as f64 * RANGE)),
        );
        let queries = [centers[qc], Point::new(40.0, 40.0)];
        assert_equivalent(&positions, &queries);
    }

    /// Drift coverage: the grid is built from stale positions, nodes have
    /// since moved at most `vmax · Δt`; the padded query must still agree
    /// with brute force evaluated on the *true* positions.
    #[test]
    fn padded_queries_cover_drifted_nodes(
        pts in prop::collection::vec(
            (0.0..115.0f64, 0.0..115.0f64, 0.0..std::f64::consts::TAU),
            1..100,
        ),
        vmax in 0.0..5.0f64,
        dt in 0.0..8.0f64,
        qx in 0.0..115.0f64,
        qy in 0.0..115.0f64,
    ) {
        let built: Vec<Point> = pts.iter().map(|&(x, y, _)| Point::new(x, y)).collect();
        // Each node drifts the maximum allowed distance in its own direction.
        let moved: Vec<Point> = pts
            .iter()
            .map(|&(x, y, theta)| Point::new(x, y).polar_offset(theta, vmax * dt))
            .collect();
        let grid = SpatialGrid::build(FIELD, RANGE, &built, vmax, 0.5 * RANGE, SimTime::ZERO);
        let now = SimTime::ZERO + SimDuration::from_secs_f64(dt);
        let q = Point::new(qx, qy);
        let brute = brute_in_range(&moved, q, RANGE);
        let fast = grid_in_range(&grid, &moved, q, RANGE, now);
        prop_assert_eq!(fast, brute);
    }

    /// Teleport-style playback jumps: a [`WaypointTrace`] crossing most of
    /// the field in a few milliseconds yields an enormous `max_speed`, and
    /// the grid's `vmax · Δt` pad must absorb exactly that — queries built
    /// from pre-jump buckets still agree with brute force on the true
    /// post-jump positions, with no forced refresh.
    #[test]
    fn trace_playback_jumps_stay_covered_by_the_pad(
        jumps in prop::collection::vec(
            // (start x, start y, landing x, landing y, jump time)
            (0.0..115.0f64, 0.0..115.0f64, 0.0..115.0f64, 0.0..115.0f64, 0.5..6.0f64),
            1..40,
        ),
        dt in 0.0..8.0f64,
        qx in 0.0..115.0f64,
        qy in 0.0..115.0f64,
    ) {
        let plans: Vec<WaypointTrace> = jumps
            .iter()
            .map(|&(x0, y0, x1, y1, at)| {
                WaypointTrace::new(vec![
                    (0.0, Point::new(x0, y0)),
                    (at, Point::new(x0, y0)),
                    // The node crosses to its landing point in 2 ms.
                    (at + 0.002, Point::new(x1, y1)),
                ])
            })
            .collect();
        let built: Vec<Point> = plans.iter().map(|p| p.position_at(0.0)).collect();
        let vmax = plans.iter().map(|p| p.max_speed()).fold(0.0, f64::max);
        let moved: Vec<Point> = plans.iter().map(|p| p.position_at(dt)).collect();
        let grid = SpatialGrid::build(FIELD, RANGE, &built, vmax, 0.5 * RANGE, SimTime::ZERO);
        let now = SimTime::ZERO + SimDuration::from_secs_f64(dt);
        let q = Point::new(qx, qy);
        let brute = brute_in_range(&moved, q, RANGE);
        let fast = grid_in_range(&grid, &moved, q, RANGE, now);
        prop_assert_eq!(fast, brute);
    }
}

/// Two nodes at *exactly* the radio range: `dist_sq <= range²` includes
/// them, and the grid must agree even though they sit in non-adjacent
/// cells' worth of distance.
#[test]
fn range_boundary_pair_is_included() {
    let positions = vec![Point::new(30.0, 30.0), Point::new(30.0 + RANGE, 30.0)];
    let grid = SpatialGrid::build(FIELD, RANGE, &positions, 0.0, 0.5 * RANGE, SimTime::ZERO);
    let fast = grid_in_range(&grid, &positions, positions[0], RANGE, SimTime::ZERO);
    assert_eq!(fast, vec![0, 1]);
    // Nudge epsilon outside: excluded by both paths.
    let positions = vec![
        Point::new(30.0, 30.0),
        Point::new(30.0 + RANGE + 1e-9, 30.0),
    ];
    let grid = SpatialGrid::build(FIELD, RANGE, &positions, 0.0, 0.5 * RANGE, SimTime::ZERO);
    let fast = grid_in_range(&grid, &positions, positions[0], RANGE, SimTime::ZERO);
    assert_eq!(fast, brute_in_range(&positions, positions[0], RANGE));
    assert_eq!(fast, vec![0]);
}

/// A chatty protocol exercising every grid-backed engine path: periodic
/// broadcasts (audible sets), oracle/table neighbour reads, and the
/// read-only snapshot (asserted equal to the pruning read en route).
struct Gossip {
    heard: u64,
    neighbor_checksum: u64,
}

impl Protocol for Gossip {
    type Msg = u8;

    fn on_start(&mut self, ctx: &mut Ctx<u8>) {
        for i in 0..ctx.node_count() as u32 {
            ctx.set_timer(NodeId(i), SimDuration::from_millis(200 + i as u64), 1);
        }
    }

    fn on_timer(&mut self, at: NodeId, _key: u64, ctx: &mut Ctx<u8>) {
        let snapshot = ctx.neighbors_snapshot(at);
        let pruned = ctx.neighbors(at);
        assert_eq!(
            snapshot, pruned,
            "read-only snapshot diverged from the pruning read at {at}"
        );
        self.neighbor_checksum = self
            .neighbor_checksum
            .wrapping_mul(31)
            .wrapping_add(pruned.len() as u64);
        ctx.broadcast(at, 24, 7);
        ctx.set_timer(at, SimDuration::from_millis(900), 1);
    }

    fn on_message(&mut self, _at: NodeId, _from: NodeId, _msg: &u8, _ctx: &mut Ctx<u8>) {
        self.heard += 1;
    }
}

fn mobile_nodes(n: usize, max_speed: f64, seed: u64) -> Vec<SharedMobility> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = RwpConfig::new(FIELD, max_speed.max(0.01), 30.0);
    (0..n)
        .map(|_| {
            let start = Point::new(rng.gen_range(0.0..115.0), rng.gen_range(0.0..115.0));
            Arc::new(RandomWaypoint::new(start, &cfg, &mut rng)) as SharedMobility
        })
        .collect()
}

fn run_gossip(index: NeighborIndex, seed: u64, oracle: bool) -> (String, u64, u64, f64) {
    let mut cfg = SimConfig {
        neighbor_index: index,
        oracle_neighbors: oracle,
        time_limit: SimDuration::from_secs_f64(12.0),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    };
    if oracle {
        cfg.beacon_interval = SimDuration::ZERO;
        cfg.neighbor_timeout = SimDuration::ZERO;
    }
    // A moving jam zone population check plus churn: every fault path that
    // consults positions runs through the index under test.
    cfg.faults = FaultPlan {
        jam_zones: vec![JamZone {
            region: FaultRegion::Circle {
                center: Point::new(60.0, 60.0),
                radius: 25.0,
            },
            from: SimDuration::from_secs_f64(2.0),
            until: SimDuration::from_secs_f64(9.0),
            loss: 0.6,
        }],
        ..FaultPlan::random_crashes(0.1, 1.0, 8.0)
    };
    let nodes = mobile_nodes(60, 3.0, seed ^ 0xABCD);
    let mut sim = Simulator::new(
        cfg,
        nodes,
        Gossip {
            heard: 0,
            neighbor_checksum: 0,
        },
        seed,
    );
    sim.warm_neighbor_tables();
    sim.run();
    let (proto, ctx) = sim.into_parts();
    (
        ctx.trace().render(),
        proto.heard,
        proto.neighbor_checksum,
        ctx.total_energy_j(),
    )
}

/// The whole-engine claim: grid and brute-force runs are bit-identical —
/// same trace bytes, same delivery counts, same neighbour-read history,
/// same energy — under mobility, crashes, and a jam zone.
#[test]
fn grid_and_brute_force_runs_are_bit_identical() {
    for seed in [3, 17, 2024] {
        let grid = run_gossip(NeighborIndex::Grid, seed, false);
        let brute = run_gossip(NeighborIndex::BruteForce, seed, false);
        assert!(!grid.0.is_empty(), "run recorded no trace events");
        assert_eq!(grid, brute, "seed {seed}: beacon-table runs diverged");
        // Oracle-neighbour mode reads ground truth through the index on
        // every neighbours() call — the hottest read path.
        let grid = run_gossip(NeighborIndex::Grid, seed, true);
        let brute = run_gossip(NeighborIndex::BruteForce, seed, true);
        assert_eq!(grid, brute, "seed {seed}: oracle runs diverged");
    }
}

/// Whole-engine teleport + churn: nodes on playback traces that jump
/// across the field mid-run, with crash/recovery faults layered on top.
/// Crashes never move a node and trace jumps are bounded by the trace's
/// own `max_speed`, so the grid needs no special-case refresh — and the
/// run must stay bit-identical to brute force.
#[test]
fn teleporting_traces_with_churn_run_bit_identical() {
    let mut rng = SmallRng::seed_from_u64(77);
    let nodes: Vec<SharedMobility> = (0..40)
        .map(|_| {
            let a = Point::new(rng.gen_range(0.0..115.0), rng.gen_range(0.0..115.0));
            let b = Point::new(rng.gen_range(0.0..115.0), rng.gen_range(0.0..115.0));
            let at = rng.gen_range(2.0..9.0);
            Arc::new(WaypointTrace::new(vec![
                (0.0, a),
                (at, a),
                (at + 0.002, b), // cross-field teleport in 2 ms
            ])) as SharedMobility
        })
        .collect();
    let run = |index: NeighborIndex| {
        let cfg = SimConfig {
            neighbor_index: index,
            time_limit: SimDuration::from_secs_f64(12.0),
            trace: TraceConfig::enabled(),
            faults: FaultPlan::random_crashes(0.15, 1.0, 8.0),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            cfg,
            nodes.clone(),
            Gossip {
                heard: 0,
                neighbor_checksum: 0,
            },
            13,
        );
        sim.warm_neighbor_tables();
        sim.run();
        let (proto, ctx) = sim.into_parts();
        (
            ctx.trace().render(),
            proto.heard,
            proto.neighbor_checksum,
            ctx.total_energy_j(),
        )
    };
    let grid = run(NeighborIndex::Grid);
    let brute = run(NeighborIndex::BruteForce);
    assert!(!grid.0.is_empty(), "run recorded no trace events");
    assert_eq!(grid, brute, "teleport runs diverged between indexes");
}

/// Static pathological placement: everyone in one cell (worst case for
/// the grid) — behaviour still identical.
#[test]
fn single_cell_pileup_matches_brute_force() {
    let positions: Vec<SharedMobility> = (0..25)
        .map(|i| {
            Arc::new(StaticMobility::new(Point::new(
                50.0 + (i % 5) as f64,
                50.0 + (i / 5) as f64,
            ))) as SharedMobility
        })
        .collect();
    let run = |index: NeighborIndex| {
        let cfg = SimConfig {
            neighbor_index: index,
            time_limit: SimDuration::from_secs_f64(6.0),
            trace: TraceConfig::enabled(),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            cfg,
            positions.clone(),
            Gossip {
                heard: 0,
                neighbor_checksum: 0,
            },
            9,
        );
        sim.warm_neighbor_tables();
        sim.run();
        let (proto, ctx) = sim.into_parts();
        (ctx.trace().render(), proto.heard, proto.neighbor_checksum)
    };
    assert_eq!(run(NeighborIndex::Grid), run(NeighborIndex::BruteForce));
}
