//! Focused MAC and energy-model tests: ARQ accounting, address filtering,
//! beacon/protocol energy separation, backoff saturation.

use std::sync::Arc;

use diknn_geom::Point;
use diknn_mobility::StaticMobility;
use diknn_sim::{
    Ctx, MacMode, NodeId, Protocol, SharedMobility, SimConfig, SimDuration, Simulator,
};

fn static_nodes(points: &[(f64, f64)]) -> Vec<SharedMobility> {
    points
        .iter()
        .map(|&(x, y)| Arc::new(StaticMobility::new(Point::new(x, y))) as SharedMobility)
        .collect()
}

fn quiet() -> SimConfig {
    SimConfig {
        beacon_interval: SimDuration::ZERO,
        ..SimConfig::default()
    }
}

struct OneShot {
    unicast_to: Option<u32>,
    payload: usize,
    received: usize,
}

impl Protocol for OneShot {
    type Msg = ();
    fn on_start(&mut self, ctx: &mut Ctx<()>) {
        match self.unicast_to {
            Some(t) => ctx.unicast(NodeId(0), NodeId(t), self.payload, ()),
            None => ctx.broadcast(NodeId(0), self.payload, ()),
        }
    }
    fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {
        self.received += 1;
    }
}

#[test]
fn address_filtering_charges_overhearers_header_only() {
    // Node 1 is the addressee, node 2 overhears.
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (12.0, 0.0)]);
    let payload = 200usize;
    let mut sim = Simulator::new(
        quiet(),
        nodes,
        OneShot {
            unicast_to: Some(1),
            payload,
            received: 0,
        },
        1,
    );
    sim.run();
    let cfg = SimConfig::default();
    let full = cfg.rx_power_w * ((cfg.header_bytes + payload) * 8) as f64 / cfg.bits_per_sec as f64;
    let header = cfg.rx_power_w * (cfg.header_bytes * 8) as f64 / cfg.bits_per_sec as f64;
    let e1 = sim.ctx().energy(NodeId(1)).rx_protocol_j;
    let e2 = sim.ctx().energy(NodeId(2)).rx_protocol_j;
    assert!((e1 - full).abs() < 1e-12, "addressee pays full rx: {e1}");
    assert!(
        (e2 - header).abs() < 1e-12,
        "overhearer pays header rx: {e2}"
    );
}

#[test]
fn broadcast_charges_everyone_full_rx() {
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (12.0, 0.0)]);
    let payload = 200usize;
    let mut sim = Simulator::new(
        quiet(),
        nodes,
        OneShot {
            unicast_to: None,
            payload,
            received: 0,
        },
        1,
    );
    sim.run();
    let e1 = sim.ctx().energy(NodeId(1)).rx_protocol_j;
    let e2 = sim.ctx().energy(NodeId(2)).rx_protocol_j;
    assert!((e1 - e2).abs() < 1e-15, "broadcast receivers pay equally");
}

#[test]
fn beacon_energy_is_metered_separately() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(5.0),
        ..SimConfig::default()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Idle, 1);
    sim.run();
    let e = sim.ctx().energy(NodeId(0));
    assert!(e.tx_beacon_j > 0.0, "beacon tx energy missing");
    assert!(e.rx_beacon_j > 0.0, "beacon rx energy missing");
    assert_eq!(e.tx_protocol_j, 0.0);
    assert_eq!(e.rx_protocol_j, 0.0);
    assert!(sim.ctx().total_protocol_energy_j() == 0.0);
    assert!(sim.ctx().total_energy_j() > 0.0);
}

#[test]
fn arq_gives_up_after_configured_retries() {
    struct Fail {
        failures: u32,
    }
    impl Protocol for Fail {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            ctx.unicast(NodeId(0), NodeId(1), 10, ());
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {
            panic!("out-of-range unicast must not be delivered");
        }
        fn on_send_failed(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {
            self.failures += 1;
        }
    }
    for retries in [0u32, 1, 5] {
        let cfg = SimConfig {
            unicast_retries: retries,
            ..quiet()
        };
        let nodes = static_nodes(&[(0.0, 0.0), (100.0, 0.0)]);
        let mut sim = Simulator::new(cfg, nodes, Fail { failures: 0 }, 1);
        sim.run();
        assert_eq!(sim.protocol().failures, 1);
        let s = sim.ctx().stats();
        assert_eq!(s.tx_frames, 1 + retries as u64, "retries={retries}");
        assert_eq!(s.arq_retries, retries as u64);
    }
}

#[test]
fn collision_destruction_charges_rx_airtime_exactly_once() {
    // Hidden-terminal collision: nodes 0 and 2 cannot hear each other
    // (30 m apart, 20 m range) and transmit overlapping frames; node 1
    // hears both and both copies are destroyed mid-frame. The radio still
    // listened for each frame's full airtime, so node 1 must be charged
    // rx_power × (airtime_A + airtime_B) — each destroyed frame exactly
    // once, never re-charged when the collision is resolved at TxEnd.
    struct Hidden {
        received: usize,
    }
    impl Protocol for Hidden {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            ctx.set_timer(NodeId(0), SimDuration::from_millis(10), 0);
            ctx.set_timer(NodeId(2), SimDuration::from_millis(20), 0);
        }
        fn on_timer(&mut self, at: NodeId, _: u64, ctx: &mut Ctx<()>) {
            ctx.broadcast(at, 900, ()); // ~29 ms airtime: generous overlap
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {
            self.received += 1;
        }
    }
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(1.0),
        ..quiet()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (15.0, 0.0), (30.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Hidden { received: 0 }, 1);
    sim.run();
    // The overlap really was a collision (one event corrupts both copies).
    assert_eq!(
        sim.ctx().stats().collisions,
        1,
        "expected a mutual collision"
    );
    assert_eq!(
        sim.protocol().received,
        0,
        "corrupted frames must not deliver"
    );
    let cfg = SimConfig::default();
    let airtime = ((cfg.header_bytes + 900) * 8) as f64 / cfg.bits_per_sec as f64;
    let expected = cfg.rx_power_w * 2.0 * airtime;
    let e1 = sim.ctx().energy(NodeId(1)).rx_protocol_j;
    assert!(
        (e1 - expected).abs() < 1e-12,
        "two destroyed frames must cost exactly two rx airtimes: {e1} vs {expected}"
    );
}

#[test]
fn energy_is_monotone_across_crash_and_recovery() {
    // Node 1 crashes mid-run and recovers; traffic keeps flowing the whole
    // time. Replay the energy meter readings from the trace: every node's
    // cumulative spend must be non-decreasing — a crash freezes the meter,
    // it never rewinds it, and recovery resumes from the frozen value.
    struct Chatter;
    impl Protocol for Chatter {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            for round in 0..40u64 {
                ctx.set_timer(
                    NodeId((round % 3) as u32),
                    SimDuration::from_millis(round * 50),
                    0,
                );
            }
        }
        fn on_timer(&mut self, at: NodeId, _: u64, ctx: &mut Ctx<()>) {
            ctx.broadcast(at, 100, ());
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(3.0),
        // A budget far above anything spendable: enables per-frame Energy
        // trace events without ever killing a node.
        faults: diknn_sim::FaultPlan {
            crashes: vec![diknn_sim::CrashSpec {
                node: 1,
                at: SimDuration::from_millis(500),
                recover_after: Some(SimDuration::from_millis(700)),
            }],
            energy_budget_j: Some(1e9),
            ..diknn_sim::FaultPlan::default()
        },
        trace: diknn_sim::TraceConfig::enabled(),
        ..quiet()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (15.0, 0.0), (10.0, 8.0)]);
    let mut sim = Simulator::new(cfg, nodes, Chatter, 5);
    sim.run();
    let s = sim.ctx().stats();
    assert_eq!(s.nodes_crashed, 1, "{s:?}");
    assert_eq!(s.nodes_recovered, 1, "{s:?}");
    let mut last = [0.0f64; 3];
    let mut samples = 0usize;
    for e in sim.ctx().trace().events() {
        if let diknn_sim::TraceKind::Energy { spent_j } = e.kind {
            let i = e.node.index();
            assert!(
                spent_j >= last[i],
                "node {} energy went backwards: {} -> {spent_j}",
                e.node,
                last[i]
            );
            last[i] = spent_j;
            samples += 1;
        }
    }
    assert!(samples > 10, "trace carried only {samples} energy samples");
    // The frozen-while-dead meter still matches the final accounting.
    for (i, &l) in last.iter().enumerate() {
        let total = sim.ctx().energy(NodeId(i as u32)).total_j();
        assert!(
            (total - l).abs() < 1e-12,
            "node {i}: trace ends at {l}, meter says {total}"
        );
    }
}

#[test]
fn backoff_saturation_drops_frames() {
    // A node surrounded by a permanently busy channel: saturate it with
    // long overlapping broadcasts from two hidden senders so the victim's
    // carrier sense never clears.
    struct Saturate {
        dropped: bool,
    }
    impl Protocol for Saturate {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            // Nodes 0 and 2 keep the channel busy around node 1.
            for round in 0..60u64 {
                ctx.set_timer(NodeId(0), SimDuration::from_millis(round * 30), 1);
                ctx.set_timer(NodeId(2), SimDuration::from_millis(round * 30 + 15), 1);
            }
            // Node 1 tries to unicast to node 3 while jammed.
            ctx.set_timer(NodeId(1), SimDuration::from_millis(100), 2);
        }
        fn on_timer(&mut self, at: NodeId, key: u64, ctx: &mut Ctx<u32>) {
            match key {
                1 => ctx.broadcast(at, 900, 0), // ~29 ms airtime each
                _ => ctx.unicast(NodeId(1), NodeId(3), 10, 1),
            }
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {}
        fn on_send_failed(&mut self, at: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {
            if at == NodeId(1) {
                self.dropped = true;
            }
        }
    }
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(3.0),
        max_backoffs: 3,
        ..quiet()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (15.0, 0.0), (30.0, 0.0), (15.0, 15.0)]);
    let mut sim = Simulator::new(cfg, nodes, Saturate { dropped: false }, 3);
    sim.run();
    let s = sim.ctx().stats();
    assert!(
        sim.protocol().dropped || s.mac_drops > 0 || s.unicast_failures > 0,
        "sustained jamming should cost something: {s:?}"
    );
}

#[test]
fn contention_free_mode_never_corrupts() {
    struct Spam;
    impl Protocol for Spam {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            for i in 0..50u64 {
                ctx.set_timer(NodeId((i % 3) as u32), SimDuration::from_millis(i), 0);
            }
        }
        fn on_timer(&mut self, at: NodeId, _: u64, ctx: &mut Ctx<()>) {
            ctx.broadcast(at, 500, ());
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let cfg = SimConfig {
        mac: MacMode::ContentionFree,
        time_limit: SimDuration::from_secs_f64(3.0),
        ..quiet()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (30.0, 0.0), (15.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Spam, 9);
    sim.run();
    assert_eq!(sim.ctx().stats().collisions, 0);
}
