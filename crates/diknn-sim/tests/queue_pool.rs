//! Hot-path data-structure equivalence and soundness (PR 9).
//!
//! The slab event queue and frame pool are only allowed to change *cost*,
//! never behaviour:
//!
//! * [`EventQueue`] must pop in exactly the order the old
//!   `BinaryHeap<Reverse<(SimTime, u64)>>` popped, for any interleaving of
//!   pushes and pops — proptested against the real `BinaryHeap` as the
//!   model.
//! * [`FramePool`] handles must stay sound under arbitrary churn: a
//!   removed handle never resolves again (even after its slot is reused),
//!   live handles always resolve to their own frame, and the LIFO free
//!   list makes slot assignment a pure function of the op sequence.
//! * Engine snapshots must be byte-stable across a restore round-trip, and
//!   the incremental audible-set cache must be semantically invisible: a
//!   run with `audible_cache` off is bit-identical to one with it on.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use diknn_geom::{Point, Rect};
use diknn_mobility::{RandomWaypoint, RwpConfig};
use diknn_sim::{
    Ctx, EventQueue, FramePool, NeighborIndex, NodeId, Protocol, SharedMobility, SimConfig,
    SimDuration, SimTime, Simulator, TraceConfig,
};
use proptest::prelude::*;
use proptest::ProptestConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

// ---- event queue vs BinaryHeap model -----------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interleaved pushes and pops: the 4-ary queue and the std BinaryHeap
    /// agree on every pop and every peek, including duplicate times broken
    /// by the sequence number (the engine's FIFO tie-break). Ops are
    /// scripted as `(tag, time, payload)` tuples: tag < 3 pushes (times
    /// drawn from a tight range so duplicates are common), else pops.
    #[test]
    fn event_queue_matches_binary_heap(
        ops in prop::collection::vec((0u8..5, 0u64..50, any::<u32>()), 1..200),
    ) {
        let mut fast: EventQueue<u32> = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (tag, time, payload) in ops {
            if tag < 3 {
                let t = SimTime::from_nanos(time);
                fast.push(t, seq, payload);
                model.push(Reverse((t, seq, payload)));
                seq += 1;
            } else {
                let want = model.pop().map(|Reverse(e)| e);
                prop_assert_eq!(fast.pop(), want);
            }
            prop_assert_eq!(fast.len(), model.len());
            let want_key = model.peek().map(|&Reverse((t, s, _))| (t, s));
            prop_assert_eq!(fast.peek_key(), want_key);
        }
        // Drain both: the full residual order must agree too.
        while let Some(Reverse(want)) = model.pop() {
            prop_assert_eq!(fast.pop(), Some(want));
        }
        prop_assert!(fast.is_empty());
    }

    /// Frame-pool churn: random insert/remove sequences against a
    /// `BTreeMap` model. Every handle ever issued is tracked; removed
    /// handles must stay dead forever, live ones must resolve to exactly
    /// their own frame, and slot assignment must be reproducible.
    #[test]
    fn frame_pool_is_sound_under_churn(script in prop::collection::vec(any::<u32>(), 1..300)) {
        let mut pool: FramePool<u64> = FramePool::new();
        let mut twin: FramePool<u64> = FramePool::new();
        // Live frames by handle, plus the graveyard of retired handles.
        let mut live: BTreeMap<diknn_sim::Handle, u64> = BTreeMap::new();
        let mut dead: Vec<diknn_sim::Handle> = Vec::new();
        let mut next_val = 0u64;
        for step in script {
            let remove = step % 3 == 0 && !live.is_empty();
            if remove {
                let idx = (step as usize / 3) % live.len();
                let (&h, &v) = live.iter().nth(idx).expect("non-empty");
                assert_eq!(pool.remove(h), Some(v));
                assert_eq!(twin.remove(h), Some(v));
                assert_eq!(pool.remove(h), None, "double free must be rejected");
                live.remove(&h);
                dead.push(h);
            } else {
                let h = pool.insert(next_val);
                // Same op sequence => same handle sequence (determinism).
                assert_eq!(twin.insert(next_val), h);
                live.insert(h, next_val);
                next_val += 1;
            }
            for (&h, &v) in &live {
                assert_eq!(pool.get(h), Some(&v));
            }
            for &h in &dead {
                assert_eq!(pool.get(h), None, "retired handle came back to life");
            }
            assert_eq!(pool.len(), live.len());
        }
    }
}

// ---- engine-level snapshot byte stability + cache transparency ---------

/// Broadcast-chatty protocol: every node rebroadcasts on a timer, so the
/// run exercises the audible-set path (and the frame pool) constantly.
struct Chatter {
    heard: u64,
}

impl Protocol for Chatter {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        for i in 0..ctx.node_count() as u32 {
            ctx.set_timer(NodeId(i), SimDuration::from_millis(100 + i as u64), 0);
        }
    }

    fn on_timer(&mut self, at: NodeId, _key: u64, ctx: &mut Ctx<u32>) {
        ctx.broadcast(at, 32, at.0);
        ctx.set_timer(at, SimDuration::from_millis(700), 0);
    }

    fn on_message(&mut self, _at: NodeId, _from: NodeId, _msg: &u32, _ctx: &mut Ctx<u32>) {
        self.heard += 1;
    }
}

impl diknn_snap::SnapState for Chatter {
    fn snap_state(&self, w: &mut diknn_snap::SnapWriter) {
        self.heard.snap(w);
    }
    fn restore_state(
        &mut self,
        r: &mut diknn_snap::SnapReader<'_>,
    ) -> Result<(), diknn_snap::SnapError> {
        self.heard = u64::unsnap(r)?;
        Ok(())
    }
}

use diknn_snap::Snap;

const FIELD: Rect = Rect {
    min_x: 0.0,
    min_y: 0.0,
    max_x: 115.0,
    max_y: 115.0,
};

fn mobile_nodes(n: usize, seed: u64) -> Vec<SharedMobility> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = RwpConfig::new(FIELD, 3.0, 30.0);
    (0..n)
        .map(|_| {
            let start = Point::new(rng.gen_range(0.0..115.0), rng.gen_range(0.0..115.0));
            Arc::new(RandomWaypoint::new(start, &cfg, &mut rng)) as SharedMobility
        })
        .collect()
}

fn chatter_cfg(audible_cache: bool) -> SimConfig {
    SimConfig {
        neighbor_index: NeighborIndex::Grid,
        audible_cache,
        time_limit: SimDuration::from_secs_f64(10.0),
        trace: TraceConfig::enabled(),
        ..SimConfig::default()
    }
}

/// Snapshot bytes must be a pure function of reached state: snapshotting,
/// restoring into a fresh simulator, and snapshotting again yields the
/// identical byte stream (heap layout and pool internals are canonicalized
/// or serialized verbatim).
#[test]
fn engine_snapshot_survives_a_restore_byte_for_byte() {
    let nodes = mobile_nodes(40, 0xFEED);
    let mut sim = Simulator::new(chatter_cfg(true), nodes.clone(), Chatter { heard: 0 }, 11);
    sim.run_until(SimTime::ZERO + SimDuration::from_secs_f64(4.0));
    let bytes = sim.snapshot();
    let restored = Simulator::restore(&bytes, chatter_cfg(true), nodes, Chatter { heard: 0 })
        .expect("restore");
    assert_eq!(
        restored.snapshot(),
        bytes,
        "snapshot bytes changed across a restore round-trip"
    );
}

/// The audible-set cache is pure memoization: with it disabled the run
/// must be bit-identical — same trace bytes, same deliveries, same energy.
/// Crossing a snapshot boundary mid-run (which cold-starts the cache) must
/// not perturb the result either.
#[test]
fn audible_cache_is_semantically_invisible() {
    let run = |audible_cache: bool, split: bool| {
        let nodes = mobile_nodes(50, 0xBEEF);
        let mut sim = Simulator::new(
            chatter_cfg(audible_cache),
            nodes.clone(),
            Chatter { heard: 0 },
            23,
        );
        if split {
            sim.run_until(SimTime::ZERO + SimDuration::from_secs_f64(5.0));
            let bytes = sim.snapshot();
            sim = Simulator::restore(
                &bytes,
                chatter_cfg(audible_cache),
                nodes,
                Chatter { heard: 0 },
            )
            .expect("restore");
        }
        sim.run();
        let hits = sim.ctx().perf().aud_cache_hits;
        let (proto, ctx) = sim.into_parts();
        (
            (ctx.trace().render(), proto.heard, ctx.total_energy_j()),
            hits,
        )
    };
    let (on, hits) = run(true, false);
    let (off, no_hits) = run(false, false);
    let (split, _) = run(true, true);
    assert!(!on.0.is_empty(), "run recorded no trace events");
    assert_eq!(on, off, "cache-on run diverged from cache-off");
    assert_eq!(on, split, "snapshot boundary perturbed the cached run");
    assert!(hits > 0, "dense broadcast run never hit the audible cache");
    assert_eq!(no_hits, 0, "disabled cache still reported hits");
}
