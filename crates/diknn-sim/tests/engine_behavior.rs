//! Behavioural tests of the simulator engine: delivery, range, collisions,
//! timers, beacons, energy, and determinism.

use std::sync::Arc;

use diknn_geom::{Point, Rect};
use diknn_mobility::{RandomWaypoint, RwpConfig, StaticMobility};
use diknn_sim::{
    Ctx, MacMode, NodeId, Protocol, SharedMobility, SimConfig, SimDuration, SimTime, Simulator,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn static_nodes(points: &[(f64, f64)]) -> Vec<SharedMobility> {
    points
        .iter()
        .map(|&(x, y)| Arc::new(StaticMobility::new(Point::new(x, y))) as SharedMobility)
        .collect()
}

/// Records every message each node receives.
#[derive(Default)]
struct Recorder {
    received: Vec<(NodeId, NodeId, u32)>,
    failed: Vec<(NodeId, NodeId)>,
    timers: Vec<(NodeId, u64, SimTime)>,
    start_sends: Vec<(NodeId, NodeId, u32)>,
    start_broadcasts: Vec<(NodeId, u32)>,
}

impl Protocol for Recorder {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        for &(from, to, tag) in &self.start_sends {
            ctx.unicast(from, to, 10, tag);
        }
        for &(from, tag) in &self.start_broadcasts {
            ctx.broadcast(from, 10, tag);
        }
    }

    fn on_message(&mut self, at: NodeId, from: NodeId, msg: &u32, _ctx: &mut Ctx<u32>) {
        self.received.push((at, from, *msg));
    }

    fn on_timer(&mut self, at: NodeId, key: u64, ctx: &mut Ctx<u32>) {
        self.timers.push((at, key, ctx.now()));
    }

    fn on_send_failed(&mut self, at: NodeId, to: NodeId, _msg: &u32, _ctx: &mut Ctx<u32>) {
        self.failed.push((at, to));
    }
}

fn quiet_config() -> SimConfig {
    // No beacons: tests drive traffic explicitly.
    SimConfig {
        beacon_interval: SimDuration::ZERO,
        ..SimConfig::default()
    }
}

#[test]
fn unicast_within_range_is_delivered() {
    let nodes = static_nodes(&[(0.0, 0.0), (15.0, 0.0)]);
    let proto = Recorder {
        start_sends: vec![(NodeId(0), NodeId(1), 7)],
        ..Recorder::default()
    };
    let mut sim = Simulator::new(quiet_config(), nodes, proto, 1);
    sim.run();
    assert_eq!(sim.protocol().received, vec![(NodeId(1), NodeId(0), 7)]);
    assert!(sim.protocol().failed.is_empty());
}

#[test]
fn unicast_out_of_range_fails_after_retries() {
    let nodes = static_nodes(&[(0.0, 0.0), (50.0, 0.0)]);
    let proto = Recorder {
        start_sends: vec![(NodeId(0), NodeId(1), 7)],
        ..Recorder::default()
    };
    let mut sim = Simulator::new(quiet_config(), nodes, proto, 1);
    sim.run();
    assert!(sim.protocol().received.is_empty());
    assert_eq!(sim.protocol().failed, vec![(NodeId(0), NodeId(1))]);
    let stats = *sim.ctx().stats();
    assert_eq!(stats.unicast_failures, 1);
    // Original + 3 ARQ retries went on the air.
    assert_eq!(stats.tx_frames, 4);
    assert_eq!(stats.arq_retries, 3);
}

#[test]
fn broadcast_reaches_only_nodes_in_range() {
    // Node 1 at 10 m (in range), node 2 at 19.9 m (in range),
    // node 3 at 25 m (out of range).
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (19.9, 0.0), (25.0, 0.0)]);
    let proto = Recorder {
        start_broadcasts: vec![(NodeId(0), 9)],
        ..Recorder::default()
    };
    let mut sim = Simulator::new(quiet_config(), nodes, proto, 1);
    sim.run();
    let mut got: Vec<u32> = sim.protocol().received.iter().map(|r| r.0 .0).collect();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2]);
}

#[test]
fn timers_fire_in_order_at_requested_times() {
    struct TimerProto {
        fired: Vec<(u64, f64)>,
    }
    impl Protocol for TimerProto {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            ctx.set_timer(NodeId(0), SimDuration::from_millis(500), 2);
            ctx.set_timer(NodeId(0), SimDuration::from_millis(100), 1);
            let cancel_me = ctx.set_timer(NodeId(0), SimDuration::from_millis(300), 99);
            ctx.cancel_timer(cancel_me);
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
        fn on_timer(&mut self, _at: NodeId, key: u64, ctx: &mut Ctx<()>) {
            self.fired.push((key, ctx.now().as_secs_f64()));
        }
    }
    let nodes = static_nodes(&[(0.0, 0.0)]);
    let mut sim = Simulator::new(quiet_config(), nodes, TimerProto { fired: vec![] }, 1);
    sim.run();
    let fired = &sim.protocol().fired;
    assert_eq!(fired.len(), 2);
    assert_eq!(fired[0].0, 1);
    assert!((fired[0].1 - 0.1).abs() < 1e-9);
    assert_eq!(fired[1].0, 2);
    assert!((fired[1].1 - 0.5).abs() < 1e-9);
}

#[test]
fn hidden_terminal_collision_destroys_both_receptions() {
    // A (0,0) and C (30,0) cannot hear each other; B (15,0) hears both.
    // Both transmit "simultaneously" -> B gets nothing in contention mode.
    struct TwoSenders;
    impl Protocol for TwoSenders {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            // Large payloads so the airtimes surely overlap despite jitter.
            ctx.broadcast(NodeId(0), 2000, 0);
            ctx.broadcast(NodeId(2), 2000, 2);
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {
            panic!("reception should have been destroyed by the collision");
        }
    }
    let nodes = static_nodes(&[(0.0, 0.0), (15.0, 0.0), (30.0, 0.0)]);
    let mut sim = Simulator::new(quiet_config(), nodes, TwoSenders, 3);
    sim.run();
    assert!(sim.ctx().stats().collisions >= 1);
}

#[test]
fn contention_free_mode_has_no_collisions() {
    struct TwoSenders {
        got: u32,
    }
    impl Protocol for TwoSenders {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.broadcast(NodeId(0), 2000, 0);
            ctx.broadcast(NodeId(2), 2000, 2);
        }
        fn on_message(&mut self, at: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {
            if at == NodeId(1) {
                self.got += 1;
            }
        }
    }
    let cfg = SimConfig {
        mac: MacMode::ContentionFree,
        ..quiet_config()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (15.0, 0.0), (30.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, TwoSenders { got: 0 }, 3);
    sim.run();
    assert_eq!(sim.protocol().got, 2);
    assert_eq!(sim.ctx().stats().collisions, 0);
}

#[test]
fn carrier_sense_serialises_neighbours() {
    // Two mutually audible senders: carrier sense + backoff should let both
    // frames through (no collision at the third node).
    struct TwoSenders {
        got: u32,
    }
    impl Protocol for TwoSenders {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            ctx.broadcast(NodeId(0), 500, 0);
            ctx.broadcast(NodeId(1), 500, 1);
        }
        fn on_message(&mut self, at: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {
            if at == NodeId(2) {
                self.got += 1;
            }
        }
    }
    // All three mutually in range.
    let nodes = static_nodes(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
    let mut got_totals = Vec::new();
    for seed in 0..20 {
        let mut sim = Simulator::new(
            quiet_config(),
            static_nodes_clone(&nodes),
            TwoSenders { got: 0 },
            seed,
        );
        sim.run();
        got_totals.push(sim.protocol().got);
    }
    // Backoff jitter is random; over 20 seeds the vast majority must
    // serialise cleanly.
    let clean = got_totals.iter().filter(|&&g| g == 2).count();
    assert!(
        clean >= 16,
        "only {clean}/20 runs serialised: {got_totals:?}"
    );
}

fn static_nodes_clone(nodes: &[SharedMobility]) -> Vec<SharedMobility> {
    nodes.to_vec()
}

#[test]
fn random_loss_drops_some_receptions() {
    struct Spammer {
        got: u32,
    }
    impl Protocol for Spammer {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<u32>) {
            for i in 0..200 {
                ctx.set_timer(NodeId(0), SimDuration::from_millis(20 * i), i);
            }
        }
        fn on_timer(&mut self, at: NodeId, key: u64, ctx: &mut Ctx<u32>) {
            ctx.broadcast(at, 10, key as u32);
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {
            self.got += 1;
        }
    }
    let cfg = SimConfig {
        loss_rate: 0.3,
        ..quiet_config()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Spammer { got: 0 }, 5);
    sim.run();
    let got = sim.protocol().got;
    assert!(got < 190, "loss rate had no visible effect: {got}/200");
    assert!(got > 100, "loss far beyond configured rate: {got}/200");
    assert!(sim.ctx().stats().random_losses > 0);
}

#[test]
fn beacons_fill_neighbor_tables() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(3.0),
        ..SimConfig::default()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (18.0, 0.0), (60.0, 60.0)]);
    let mut sim = Simulator::new(cfg, nodes, Idle, 7);
    sim.run();
    let nb0: Vec<u32> = {
        let ctx = sim.ctx_mut();
        let mut ids: Vec<u32> = ctx.neighbors(NodeId(0)).iter().map(|n| n.id.0).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(nb0, vec![1, 2]);
    // The far node heard nobody.
    assert!(sim.ctx_mut().neighbors(NodeId(3)).is_empty());
    assert!(sim.ctx().stats().beacons_sent >= 4 * 5);
}

#[test]
fn neighbor_tables_go_stale_under_mobility() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    // Node 1 races away from node 0 at 30 m/s; after it leaves range its
    // entry must eventually expire from node 0's table.
    let trace = diknn_mobility::WaypointTrace::at_constant_speed(
        &[Point::new(10.0, 0.0), Point::new(300.0, 0.0)],
        30.0,
    );
    let nodes: Vec<SharedMobility> = vec![
        Arc::new(StaticMobility::new(Point::new(0.0, 0.0))),
        Arc::new(trace),
    ];
    let cfg = SimConfig {
        field: Rect::new(0.0, 0.0, 300.0, 300.0),
        time_limit: SimDuration::from_secs_f64(10.0),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cfg, nodes, Idle, 11);
    sim.run();
    assert!(
        sim.ctx_mut().neighbors(NodeId(0)).is_empty(),
        "stale neighbor never expired"
    );
}

#[test]
fn energy_is_charged_for_tx_and_rx() {
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (12.0, 0.0)]);
    let proto = Recorder {
        start_broadcasts: vec![(NodeId(0), 1)],
        ..Recorder::default()
    };
    let mut sim = Simulator::new(quiet_config(), nodes, proto, 1);
    sim.run();
    let e0 = *sim.ctx().energy(NodeId(0));
    let e1 = *sim.ctx().energy(NodeId(1));
    let e2 = *sim.ctx().energy(NodeId(2));
    assert!(e0.tx_protocol_j > 0.0);
    assert_eq!(e0.rx_protocol_j, 0.0);
    assert!(e1.rx_protocol_j > 0.0);
    assert!(e2.rx_protocol_j > 0.0);
    // 26 bytes at 250 kbps = 0.832 ms; tx at 52.2 mW.
    let expected_tx = 0.0522 * (26.0 * 8.0 / 250_000.0);
    assert!((e0.tx_protocol_j - expected_tx).abs() < 1e-9);
    assert!(
        (sim.ctx().total_protocol_energy_j()
            - (e0.protocol_j() + e1.protocol_j() + e2.protocol_j()))
        .abs()
            < 1e-12
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    fn run_once(seed: u64) -> (u64, u64, u64, f64) {
        struct Chatty;
        impl Protocol for Chatty {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<u32>) {
                for i in 0..ctx.node_count() {
                    ctx.set_timer(
                        NodeId(i as u32),
                        SimDuration::from_millis(100 * (i as u64 + 1)),
                        0,
                    );
                }
            }
            fn on_timer(&mut self, at: NodeId, _key: u64, ctx: &mut Ctx<u32>) {
                ctx.broadcast(at, 25, at.0);
                if ctx.now() < SimTime::from_secs_f64(8.0) {
                    ctx.set_timer(at, SimDuration::from_millis(700), 0);
                }
            }
            fn on_message(&mut self, _: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {}
        }
        let field = Rect::new(0.0, 0.0, 115.0, 115.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut placement_rng = SmallRng::seed_from_u64(seed.wrapping_add(1));
        let pts = diknn_mobility::placement::uniform(field, 40, &mut placement_rng);
        let nodes: Vec<SharedMobility> = pts
            .into_iter()
            .map(|p| {
                Arc::new(RandomWaypoint::new(
                    p,
                    &RwpConfig::new(field, 10.0, 20.0),
                    &mut rng,
                )) as SharedMobility
            })
            .collect();
        let cfg = SimConfig {
            time_limit: SimDuration::from_secs_f64(10.0),
            loss_rate: 0.05,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(cfg, nodes, Chatty, seed);
        sim.run();
        let s = *sim.ctx().stats();
        (
            s.tx_frames,
            s.rx_deliveries,
            s.collisions,
            sim.ctx().total_energy_j(),
        )
    }
    let a = run_once(42);
    let b = run_once(42);
    let c = run_once(43);
    assert_eq!(a, b, "same seed must give identical runs");
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn stop_halts_the_run() {
    struct Stopper;
    impl Protocol for Stopper {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<()>) {
            ctx.set_timer(NodeId(0), SimDuration::from_secs_f64(1.0), 0);
            ctx.set_timer(NodeId(0), SimDuration::from_secs_f64(50.0), 1);
        }
        fn on_timer(&mut self, _: NodeId, key: u64, ctx: &mut Ctx<()>) {
            assert_eq!(key, 0, "run should have stopped before the second timer");
            ctx.stop();
        }
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let nodes = static_nodes(&[(0.0, 0.0)]);
    let mut sim = Simulator::new(quiet_config(), nodes, Stopper, 1);
    let end = sim.run();
    assert!((end.as_secs_f64() - 1.0).abs() < 1e-9);
}

#[test]
fn warm_neighbor_tables_gives_immediate_neighbors() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(quiet_config(), nodes, Idle, 1);
    sim.warm_neighbor_tables();
    let nb = sim.ctx_mut().neighbors(NodeId(0));
    assert_eq!(nb.len(), 1);
    assert_eq!(nb[0].id, NodeId(1));
}

#[test]
fn oracle_neighbors_track_ground_truth() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let cfg = SimConfig {
        oracle_neighbors: true,
        ..quiet_config()
    };
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (100.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Idle, 1);
    let nb = sim.ctx_mut().neighbors(NodeId(0));
    assert_eq!(nb.len(), 1);
    assert_eq!(nb[0].id, NodeId(1));
    assert_eq!(nb[0].position, Point::new(10.0, 0.0));
}
