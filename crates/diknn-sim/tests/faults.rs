//! Behavioural tests of the fault-injection subsystem: crashes, recovery,
//! bursty loss, jamming zones, and energy-budget deaths.

use std::sync::Arc;

use diknn_geom::Point;
use diknn_mobility::StaticMobility;
use diknn_sim::{
    faults, CrashSpec, Ctx, FaultPlan, FaultRegion, GilbertElliott, JamZone, LinkLossModel, NodeId,
    Protocol, SharedMobility, SimConfig, SimDuration, Simulator, TraceConfig, TraceKind,
};

fn static_nodes(points: &[(f64, f64)]) -> Vec<SharedMobility> {
    points
        .iter()
        .map(|&(x, y)| Arc::new(StaticMobility::new(Point::new(x, y))) as SharedMobility)
        .collect()
}

fn quiet_config() -> SimConfig {
    SimConfig {
        beacon_interval: SimDuration::ZERO,
        ..SimConfig::default()
    }
}

/// Node 0 broadcasts a numbered frame every 100 ms; counts per-node
/// receptions.
struct Ticker {
    sender: NodeId,
    got: Vec<u32>,
}

impl Ticker {
    fn new(sender: NodeId, n: usize) -> Self {
        Ticker {
            sender,
            got: vec![0; n],
        }
    }
}

impl Protocol for Ticker {
    type Msg = u32;
    fn on_start(&mut self, ctx: &mut Ctx<u32>) {
        for i in 0..100 {
            ctx.set_timer(self.sender, SimDuration::from_millis(100 * i), i);
        }
    }
    fn on_timer(&mut self, at: NodeId, key: u64, ctx: &mut Ctx<u32>) {
        ctx.broadcast(at, 10, key as u32);
    }
    fn on_message(&mut self, at: NodeId, _: NodeId, _: &u32, _: &mut Ctx<u32>) {
        self.got[at.index()] += 1;
    }
}

#[test]
fn crashed_sender_goes_silent_and_timers_are_suppressed() {
    let mut cfg = quiet_config();
    cfg.time_limit = SimDuration::from_secs_f64(12.0);
    cfg.trace = TraceConfig::enabled();
    let crash_at = SimDuration::from_secs_f64(5.0);
    cfg.faults.crashes = vec![CrashSpec {
        node: 0,
        at: crash_at,
        recover_after: None,
    }];
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 2), 3);
    sim.run();
    let got = sim.protocol().got[1];
    // ~50 of the 100 ticks happen before the crash; none after.
    assert!((40..=55).contains(&got), "receiver saw {got} frames");
    let stats = *sim.ctx().stats();
    assert_eq!(stats.nodes_crashed, 1);
    assert!(stats.timers_suppressed >= 45, "{stats:?}");
    assert!(!sim.ctx().is_alive(NodeId(0)));
    assert_eq!(sim.ctx().alive_count(), 1);
    // The event trace proves radio silence after the crash instant.
    let trace = sim.ctx().trace();
    assert!(trace.dropped_events() == 0, "trace ring overflowed");
    let mut tx_starts = 0;
    for e in trace.events() {
        if !matches!(e.kind, TraceKind::TxStart { .. }) {
            continue;
        }
        tx_starts += 1;
        if e.node == NodeId(0) {
            assert!(
                e.time.since(diknn_sim::SimTime::ZERO) <= crash_at,
                "dead node transmitted at {}",
                e.time
            );
        }
    }
    assert!(tx_starts > 0, "trace recorded no transmissions");
}

#[test]
fn crashed_receiver_hears_nothing_while_down() {
    let mut cfg = quiet_config();
    cfg.time_limit = SimDuration::from_secs_f64(12.0);
    // Receiver down between 2 s and 6 s.
    cfg.faults.crashes = vec![CrashSpec {
        node: 1,
        at: SimDuration::from_secs_f64(2.0),
        recover_after: Some(SimDuration::from_secs_f64(4.0)),
    }];
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 2), 3);
    sim.run();
    let got = sim.protocol().got[1];
    // 100 ticks over 10 s; roughly 40 fall inside the 4 s outage.
    assert!((50..=65).contains(&got), "receiver saw {got} frames");
    let stats = *sim.ctx().stats();
    assert_eq!(stats.nodes_crashed, 1);
    assert_eq!(stats.nodes_recovered, 1);
    assert!(sim.ctx().is_alive(NodeId(1)));
}

#[test]
fn recovered_node_resumes_beaconing() {
    struct Idle;
    impl Protocol for Idle {
        type Msg = ();
        fn on_message(&mut self, _: NodeId, _: NodeId, _: &(), _: &mut Ctx<()>) {}
    }
    let mut cfg = SimConfig {
        time_limit: SimDuration::from_secs_f64(10.0),
        ..SimConfig::default()
    };
    cfg.faults.crashes = vec![CrashSpec {
        node: 1,
        at: SimDuration::from_secs_f64(2.0),
        recover_after: Some(SimDuration::from_secs_f64(3.0)),
    }];
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Idle, 7);
    sim.run();
    // Node 0's table must know node 1 again at the end of the run: the
    // rebooted node re-advertised itself.
    let nb = sim.ctx_mut().neighbors(NodeId(0));
    assert_eq!(nb.len(), 1, "rebooted neighbour never re-learned");
    assert_eq!(nb[0].id, NodeId(1));
}

#[test]
fn gilbert_elliott_losses_track_the_chain_mean() {
    let ge = GilbertElliott {
        p_gb: 0.1,
        p_bg: 0.3,
        good_loss: 0.0,
        bad_loss: 1.0,
    };
    let mut cfg = quiet_config();
    cfg.time_limit = SimDuration::from_secs_f64(12.0);
    cfg.faults.link_loss = LinkLossModel::GilbertElliott(ge);
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 2), 9);
    sim.run();
    let got = sim.protocol().got[1] as f64;
    let stats = *sim.ctx().stats();
    assert!(stats.burst_losses > 0, "{stats:?}");
    assert_eq!(stats.random_losses, 0, "uniform loss must be replaced");
    // Stationary loss is 25%; allow wide slack on 100 samples.
    let rate = 1.0 - got / 100.0;
    assert!(
        (0.08..=0.45).contains(&rate),
        "observed loss {rate} far from stationary 0.25"
    );
}

#[test]
fn jam_zone_blocks_inside_its_window_only() {
    // Receiver inside the zone; full-loss jamming from 3 s to 7 s.
    let mut cfg = quiet_config();
    cfg.time_limit = SimDuration::from_secs_f64(12.0);
    cfg.faults.jam_zones = vec![JamZone {
        region: FaultRegion::Circle {
            center: Point::new(10.0, 0.0),
            radius: 3.0,
        },
        from: SimDuration::from_secs_f64(3.0),
        until: SimDuration::from_secs_f64(7.0),
        loss: 1.0,
    }];
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
    let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 3), 5);
    sim.run();
    let jammed = sim.protocol().got[1];
    let clear = sim.protocol().got[2];
    let stats = *sim.ctx().stats();
    // ~40 of 100 ticks fall in the window; the node outside the region
    // hears everything.
    assert!((55..=65).contains(&jammed), "jammed node got {jammed}");
    assert_eq!(clear, 100, "node outside the zone was affected");
    assert!(stats.frames_jammed >= 35, "{stats:?}");
}

#[test]
fn energy_budget_kills_the_chattiest_node_permanently() {
    // Tiny budget: the sender pays tx energy fastest and must die first;
    // a scheduled "recovery" for it must not resurrect it.
    let mut cfg = quiet_config();
    cfg.time_limit = SimDuration::from_secs_f64(12.0);
    cfg.faults.energy_budget_j = Some(2e-4);
    let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0)]);
    let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 2), 5);
    sim.run();
    let stats = *sim.ctx().stats();
    assert!(stats.energy_deaths >= 1, "{stats:?}");
    assert!(!sim.ctx().is_alive(NodeId(0)));
    assert_eq!(stats.nodes_crashed, 0, "energy deaths are counted apart");
    let got = sim.protocol().got[1];
    assert!(got < 100, "sender should have died mid-run, got {got}");
    // The budget stopped the meter close to the threshold.
    assert!(sim.ctx().energy(NodeId(0)).total_j() >= 2e-4);
}

#[test]
fn random_crashes_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut cfg = quiet_config();
        cfg.time_limit = SimDuration::from_secs_f64(12.0);
        cfg.faults = FaultPlan::random_crashes(0.5, 1.0, 8.0);
        let nodes = static_nodes(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 10.0),
            (10.0, 10.0),
            (5.0, 5.0),
            (15.0, 5.0),
        ]);
        let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 6), seed);
        sim.run();
        let alive: Vec<bool> = (0..6).map(|i| sim.ctx().is_alive(NodeId(i))).collect();
        (*sim.ctx().stats(), sim.protocol().got.clone(), alive)
    };
    let a = run(21);
    let b = run(21);
    assert_eq!(
        a, b,
        "same seed must crash the same nodes at the same times"
    );
    assert_eq!(a.0.nodes_crashed, 3, "{:?}", a.0);
    let c = run(22);
    assert_ne!(a.2, c.2, "different seeds should pick different victims");
}

#[test]
fn inert_plan_changes_nothing() {
    // A run with the default (inert) plan must be bit-identical to one
    // where the faults field was never touched — the fault hooks must not
    // consume RNG draws on the fault-free path.
    let run = |cfg: SimConfig| {
        let nodes = static_nodes(&[(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)]);
        let mut sim = Simulator::new(cfg, nodes, Ticker::new(NodeId(0), 3), 13);
        sim.run();
        (*sim.ctx().stats(), sim.ctx().total_energy_j())
    };
    let mut cfg = quiet_config();
    cfg.loss_rate = 0.1;
    cfg.time_limit = SimDuration::from_secs_f64(12.0);
    let baseline = run(cfg.clone());
    cfg.faults = FaultPlan::default();
    assert_eq!(baseline, run(cfg));
}

#[test]
fn fault_plan_validation_is_enforced_at_construction() {
    let bad = faults::FaultPlan {
        energy_budget_j: Some(-1.0),
        ..FaultPlan::default()
    };
    let cfg = SimConfig {
        faults: bad,
        ..quiet_config()
    };
    let err = cfg.validate().unwrap_err();
    assert!(err.to_string().contains("energy budget"), "{err}");
}
