//! A deterministic discrete-event wireless sensor network simulator.
//!
//! This crate is the substrate standing in for ns-2 in the DIKNN
//! reproduction (see DESIGN.md). It provides:
//!
//! * [`Simulator`] / [`Protocol`] / [`Ctx`] — the event engine and the
//!   protocol programming model. One protocol instance drives all nodes and
//!   receives `on_message` / `on_timer` / `on_send_failed` callbacks.
//! * A CSMA/CA-style MAC ([`config::MacMode`]) with carrier sense, binary
//!   exponential backoff, a collision model that destroys overlapping
//!   receptions (including hidden-terminal cases), optional uniform packet
//!   loss, and link-layer retries for unicast frames.
//! * Periodic location beacons feeding per-node [`neighbors::NeighborTable`]s
//!   — the "table enrolling IDs and locations of neighbor nodes" of §3.1.
//!   Tables are *stale under mobility*, which is the effect the paper's
//!   evaluation stresses.
//! * Per-node [`energy::EnergyMeter`]s: energy = power × airtime, split
//!   between beacon and protocol traffic.
//!
//! The whole run is deterministic: integer-nanosecond clock, sequence-number
//! tie-breaks, and a single seeded RNG.
//!
//! # Example
//!
//! A two-node ping-pong:
//!
//! ```
//! use diknn_sim::{Ctx, NodeId, Protocol, SimConfig, Simulator, SharedMobility};
//! use diknn_mobility::StaticMobility;
//! use diknn_geom::Point;
//! use std::sync::Arc;
//!
//! struct Ping { pongs: u32 }
//!
//! impl Protocol for Ping {
//!     type Msg = &'static str;
//!     fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
//!         ctx.unicast(NodeId(0), NodeId(1), 10, "ping");
//!     }
//!     fn on_message(&mut self, at: NodeId, from: NodeId, msg: &Self::Msg,
//!                   ctx: &mut Ctx<Self::Msg>) {
//!         if *msg == "ping" {
//!             ctx.unicast(at, from, 10, "pong");
//!         } else {
//!             self.pongs += 1;
//!         }
//!     }
//! }
//!
//! let nodes: Vec<SharedMobility> = vec![
//!     Arc::new(StaticMobility::new(Point::new(0.0, 0.0))),
//!     Arc::new(StaticMobility::new(Point::new(10.0, 0.0))),
//! ];
//! let mut sim = Simulator::new(SimConfig::default(), nodes, Ping { pongs: 0 }, 42);
//! sim.run();
//! assert_eq!(sim.protocol().pongs, 1);
//! ```
// Shared strict-lint header (checked by `cargo xtask lint`): the
// simulation stack must stay safe Rust, and determinism rules are enforced
// by clippy `disallowed-types`/`disallowed-methods` plus `cargo xtask lint`.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod config;
pub mod energy;
mod engine;
pub mod faults;
pub mod grid;
mod ids;
pub mod lifecycle;
pub mod load;
pub mod neighbors;
pub mod queue;
pub mod shard;
pub mod soa;
mod stats;
pub mod time;
pub mod trace;

pub use config::{ConfigError, MacMode, NeighborIndex, SimConfig};
pub use engine::{Ctx, Destination, Protocol, SharedMobility, Simulator, SNAP_VERSION};
pub use faults::{
    ChurnPlan, CrashSpec, FaultPlan, FaultRegion, GilbertElliott, JamZone, LinkLossModel,
    RandomCrashes,
};
pub use grid::SpatialGrid;
pub use ids::{NodeId, TimerId};
pub use lifecycle::NodePhase;
pub use load::LoadSignal;
pub use neighbors::Neighbor;
pub use queue::{EventQueue, FramePool, Handle};
pub use shard::{AudibleWorld, InlineExecutor, ShardExecutor, ShardMap, ShardResult, WorkItem};
pub use soa::{FlowLedger, NodeSoA};
pub use stats::{PerfCounters, SimStats};
pub use time::{SimDuration, SimTime};
pub use trace::{DropReason, EventTrace, ProtoEvent, TraceConfig, TraceEvent, TraceKind};
