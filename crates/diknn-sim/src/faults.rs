//! Fault injection: a seeded, deterministic plan of things going wrong.
//!
//! The paper's whole argument (§3–§5) is that a single itinerary token
//! survives a hostile environment. The uniform `loss_rate` of
//! [`crate::SimConfig`] cannot express the failures real deployments see:
//! node crashes and battery deaths, *bursty* correlated link loss (802.11
//! fading is not i.i.d.), and spatially correlated interference. A
//! [`FaultPlan`] describes those failure processes declaratively; the
//! engine executes them.
//!
//! Determinism: everything random about a plan (which nodes crash under
//! [`RandomCrashes`], when; Gilbert–Elliott state transitions; jam-zone
//! coin flips) is drawn either from a generator derived from the run seed
//! or from the run's single event-ordered RNG. Same seed + same plan ⇒
//! bit-identical runs — this is covered by the determinism regression
//! tests in `diknn-workloads`.

use crate::config::ConfigError;
use crate::time::SimDuration;
use diknn_geom::{Point, Rect};

/// A scheduled fail-stop crash of one specific node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashSpec {
    /// Index of the node to crash (must be `< node_count`).
    pub node: u32,
    /// Crash time.
    pub at: SimDuration,
    /// If set, the node reboots this long after the crash and resumes
    /// beaconing/receiving. Its in-memory protocol state is modelled as
    /// flash-backed (not wiped); neighbour tables of *other* nodes will
    /// have aged it out and re-learn it from its next beacon.
    pub recover_after: Option<SimDuration>,
}

/// Random fail-stop crashes: a fraction of the population crashes at
/// uniform times inside a window. Node choice and times are drawn from a
/// generator derived from the run seed, so the same `(seed, plan)` always
/// kills the same nodes at the same times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCrashes {
    /// Fraction of all nodes to crash, in `[0, 1]`.
    pub fraction: f64,
    /// Crash times are uniform in `[from, until]`.
    pub from: SimDuration,
    pub until: SimDuration,
    /// Optional reboot delay (as in [`CrashSpec::recover_after`]).
    pub recover_after: Option<SimDuration>,
}

/// Parameters of the two-state Gilbert–Elliott bursty loss model.
///
/// Each receiver carries a Good/Bad Markov chain stepped once per received
/// frame copy (the classic packet-level formulation): from Good the chain
/// moves to Bad with probability `p_gb`, from Bad back to Good with
/// `p_bg`; a reception is then lost with `good_loss` or `bad_loss`
/// depending on the state. Mean burst length is `1/p_bg` frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(Good → Bad) per received frame.
    pub p_gb: f64,
    /// P(Bad → Good) per received frame.
    pub p_bg: f64,
    /// Loss probability while in the Good state (residual fading).
    pub good_loss: f64,
    /// Loss probability while in the Bad state (deep fade / interference).
    pub bad_loss: f64,
}

impl GilbertElliott {
    /// A plausible default: rare entry into bursts (2%), mean burst of
    /// five frames, near-clean good state, 80% loss inside a burst.
    pub fn typical() -> Self {
        GilbertElliott {
            p_gb: 0.02,
            p_bg: 0.2,
            good_loss: 0.01,
            bad_loss: 0.8,
        }
    }

    /// Scale burst severity: `severity` in `[0, 1]` interpolates from
    /// no loss at all to an aggressive bursty channel (10% burst entry,
    /// mean burst of ten frames, 95% in-burst loss).
    pub fn with_severity(severity: f64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        GilbertElliott {
            p_gb: 0.1 * s,
            p_bg: (1.0 - 0.9 * s).max(0.1),
            good_loss: 0.02 * s,
            bad_loss: 0.95 * s,
        }
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg <= 0.0 {
            return 0.0;
        }
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run average loss rate implied by the chain.
    pub fn mean_loss(&self) -> f64 {
        let b = self.stationary_bad();
        b * self.bad_loss + (1.0 - b) * self.good_loss
    }

    fn validate(&self) -> Result<(), ConfigError> {
        for (name, p) in [
            ("p_gb", self.p_gb),
            ("p_bg", self.p_bg),
            ("good_loss", self.good_loss),
            ("bad_loss", self.bad_loss),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::Fault(format!(
                    "Gilbert–Elliott {name} must be in [0, 1], got {p}"
                )));
            }
        }
        Ok(())
    }
}

/// Link-loss process applied to otherwise-successful receptions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LinkLossModel {
    /// The pre-existing uniform i.i.d. loss: every reception is dropped
    /// with `SimConfig::loss_rate`, independently.
    #[default]
    Uniform,
    /// Bursty two-state loss; **replaces** the uniform `loss_rate` (the
    /// chain's `good_loss`/`bad_loss` are the whole loss process).
    GilbertElliott(GilbertElliott),
}

/// Spatial region of a jamming zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRegion {
    Rect(Rect),
    Circle { center: Point, radius: f64 },
}

impl FaultRegion {
    pub fn contains(&self, p: Point) -> bool {
        match *self {
            FaultRegion::Rect(r) => r.contains(p),
            FaultRegion::Circle { center, radius } => center.dist_sq(p) <= radius * radius,
        }
    }

    /// Axis-aligned bounding rectangle; lets the engine pre-filter zone
    /// membership through the spatial grid before the exact
    /// [`FaultRegion::contains`] check.
    pub fn bounding_rect(&self) -> Rect {
        match *self {
            FaultRegion::Rect(r) => r,
            FaultRegion::Circle { center, radius } => Rect::new(
                center.x - radius,
                center.y - radius,
                center.x + radius,
                center.y + radius,
            ),
        }
    }
}

/// A jamming zone: receivers inside `region` during `[from, until]` lose
/// receptions with probability `loss` (on top of collisions, before the
/// link-loss model). Models a localised interferer or a jammed channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JamZone {
    pub region: FaultRegion,
    pub from: SimDuration,
    pub until: SimDuration,
    /// Reception loss probability inside the zone, in `[0, 1]`.
    pub loss: f64,
}

/// Continuous node churn: a fraction of the population cycles between
/// being up and being away on exponentially distributed dwell times.
///
/// Churn generalises the fail-stop crash model of [`RandomCrashes`] into a
/// renewal process suited to *resident* (open-ended) runs: a churning node
/// leaves, stays away for a while, rejoins, and repeats until the window
/// closes. Departures are clipped to `[from, until]`; a rejoin scheduled
/// past `until` still happens, so the network always heals after the churn
/// window. Node choice and all dwell times are drawn from a generator
/// derived from the run seed — same `(seed, plan)` ⇒ same churn schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Fraction of all nodes that participate in churn, in `[0, 1]`.
    pub fraction: f64,
    /// Mean up-time between departures, seconds (exponential).
    pub mean_up_s: f64,
    /// Mean away-time before rejoining, seconds (exponential).
    pub mean_down_s: f64,
    /// Departures occur only inside `[from, until]`.
    pub from: SimDuration,
    pub until: SimDuration,
    /// When true, a rejoining node comes back amnesiac: its neighbour
    /// table is wiped and must be re-learned from beacons (the "rejoin
    /// with state loss" model). When false, rejoin behaves like the
    /// flash-backed reboot of [`CrashSpec::recover_after`].
    pub state_loss: bool,
}

impl ChurnPlan {
    fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.fraction) {
            return Err(ConfigError::Fault(format!(
                "churn fraction must be in [0, 1], got {}",
                self.fraction
            )));
        }
        for (name, v) in [
            ("mean_up_s", self.mean_up_s),
            ("mean_down_s", self.mean_down_s),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ConfigError::Fault(format!(
                    "churn {name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.until < self.from {
            return Err(ConfigError::Fault(
                "churn window ends before it starts".into(),
            ));
        }
        Ok(())
    }
}

/// The full fault-injection plan of a run. The default plan is inert:
/// no crashes, uniform link loss, no jamming, unlimited energy, no churn.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled fail-stop crashes of specific nodes.
    pub crashes: Vec<CrashSpec>,
    /// Seed-derived random crashes of a population fraction.
    pub random_crashes: Option<RandomCrashes>,
    /// Link-loss process (uniform `loss_rate` vs Gilbert–Elliott).
    pub link_loss: LinkLossModel,
    /// Spatio-temporal jamming zones.
    pub jam_zones: Vec<JamZone>,
    /// If set, a node dies permanently once its total radio energy
    /// (beacons included) crosses this many joules.
    pub energy_budget_j: Option<f64>,
    /// Continuous leave/rejoin churn for resident runs.
    pub churn: Option<ChurnPlan>,
}

impl FaultPlan {
    /// True when the plan injects nothing (the engine fast-paths this).
    pub fn is_inert(&self) -> bool {
        self.crashes.is_empty()
            && self.random_crashes.is_none()
            && self.link_loss == LinkLossModel::Uniform
            && self.jam_zones.is_empty()
            && self.energy_budget_j.is_none()
            && self.churn.is_none()
    }

    /// A plan that only crashes a random `fraction` of nodes inside
    /// `[from, until]` seconds (no recovery).
    pub fn random_crashes(fraction: f64, from: f64, until: f64) -> Self {
        FaultPlan {
            random_crashes: Some(RandomCrashes {
                fraction,
                from: SimDuration::from_secs_f64(from),
                until: SimDuration::from_secs_f64(until),
                recover_after: None,
            }),
            ..FaultPlan::default()
        }
    }

    /// A plan with only leave/rejoin churn: `fraction` of nodes cycle on
    /// the given mean up/down dwell times (seconds) inside `[from, until]`
    /// seconds, rejoining amnesiac (state loss on).
    pub fn churning(
        fraction: f64,
        mean_up_s: f64,
        mean_down_s: f64,
        from: f64,
        until: f64,
    ) -> Self {
        FaultPlan {
            churn: Some(ChurnPlan {
                fraction,
                mean_up_s,
                mean_down_s,
                from: SimDuration::from_secs_f64(from),
                until: SimDuration::from_secs_f64(until),
                state_loss: true,
            }),
            ..FaultPlan::default()
        }
    }

    /// A plan with only Gilbert–Elliott bursty loss of the given severity.
    pub fn bursty(severity: f64) -> Self {
        FaultPlan {
            link_loss: LinkLossModel::GilbertElliott(GilbertElliott::with_severity(severity)),
            ..FaultPlan::default()
        }
    }

    /// Validate plan parameters (fractions and probabilities in range,
    /// windows ordered, budget positive).
    pub fn validate(&self) -> Result<(), ConfigError> {
        for c in &self.crashes {
            if let Some(r) = c.recover_after {
                if r == SimDuration::ZERO {
                    return Err(ConfigError::Fault(format!(
                        "node {} has a zero recovery delay",
                        c.node
                    )));
                }
            }
        }
        if let Some(rc) = &self.random_crashes {
            if !(0.0..=1.0).contains(&rc.fraction) {
                return Err(ConfigError::Fault(format!(
                    "random crash fraction must be in [0, 1], got {}",
                    rc.fraction
                )));
            }
            if rc.until < rc.from {
                return Err(ConfigError::Fault(
                    "random crash window ends before it starts".into(),
                ));
            }
        }
        if let LinkLossModel::GilbertElliott(ge) = &self.link_loss {
            ge.validate()?;
        }
        for (i, z) in self.jam_zones.iter().enumerate() {
            if !(0.0..=1.0).contains(&z.loss) {
                return Err(ConfigError::Fault(format!(
                    "jam zone {i} loss must be in [0, 1], got {}",
                    z.loss
                )));
            }
            if z.until < z.from {
                return Err(ConfigError::Fault(format!(
                    "jam zone {i} window ends before it starts"
                )));
            }
            if let FaultRegion::Circle { radius, .. } = z.region {
                if radius <= 0.0 {
                    return Err(ConfigError::Fault(format!(
                        "jam zone {i} has a non-positive radius"
                    )));
                }
            }
        }
        if let Some(b) = self.energy_budget_j {
            if b <= 0.0 || b.is_nan() {
                return Err(ConfigError::Fault(format!(
                    "energy budget must be positive, got {b}"
                )));
            }
        }
        if let Some(ch) = &self.churn {
            ch.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_inert());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_are_not_inert() {
        assert!(!FaultPlan::random_crashes(0.2, 0.0, 10.0).is_inert());
        assert!(!FaultPlan::bursty(0.5).is_inert());
        assert!(!FaultPlan::churning(0.2, 20.0, 5.0, 0.0, 100.0).is_inert());
        assert!(FaultPlan::random_crashes(0.2, 0.0, 10.0).validate().is_ok());
        assert!(FaultPlan::bursty(0.5).validate().is_ok());
        assert!(FaultPlan::churning(0.2, 20.0, 5.0, 0.0, 100.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn churn_validation_rejects_bad_parameters() {
        assert!(FaultPlan::churning(1.5, 20.0, 5.0, 0.0, 100.0)
            .validate()
            .is_err());
        assert!(FaultPlan::churning(0.2, 0.0, 5.0, 0.0, 100.0)
            .validate()
            .is_err());
        assert!(FaultPlan::churning(0.2, 20.0, -1.0, 0.0, 100.0)
            .validate()
            .is_err());
        assert!(FaultPlan::churning(0.2, 20.0, 5.0, 50.0, 10.0)
            .validate()
            .is_err());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let p = FaultPlan::random_crashes(1.5, 0.0, 10.0);
        assert!(p.validate().is_err());
        let p = FaultPlan {
            jam_zones: vec![JamZone {
                region: FaultRegion::Circle {
                    center: Point::ORIGIN,
                    radius: -1.0,
                },
                from: SimDuration::ZERO,
                until: SimDuration::from_secs_f64(5.0),
                loss: 0.9,
            }],
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPlan {
            energy_budget_j: Some(0.0),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
        let mut ge = GilbertElliott::typical();
        ge.bad_loss = 1.2;
        let p = FaultPlan {
            link_loss: LinkLossModel::GilbertElliott(ge),
            ..FaultPlan::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn gilbert_elliott_stationary_math() {
        let ge = GilbertElliott {
            p_gb: 0.1,
            p_bg: 0.3,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        assert!((ge.stationary_bad() - 0.25).abs() < 1e-12);
        assert!((ge.mean_loss() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn severity_scales_mean_loss_monotonically() {
        let lo = GilbertElliott::with_severity(0.2).mean_loss();
        let hi = GilbertElliott::with_severity(0.9).mean_loss();
        assert!(hi > lo, "severity must increase mean loss: {lo} vs {hi}");
        assert!(GilbertElliott::with_severity(0.0).mean_loss() < 1e-9);
    }

    #[test]
    fn regions_contain_points() {
        let r = FaultRegion::Rect(Rect::new(0.0, 0.0, 10.0, 10.0));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(15.0, 5.0)));
        let c = FaultRegion::Circle {
            center: Point::new(0.0, 0.0),
            radius: 2.0,
        };
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(!c.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn bounding_rect_encloses_region() {
        let r = FaultRegion::Rect(Rect::new(1.0, 2.0, 3.0, 4.0));
        assert_eq!(r.bounding_rect(), Rect::new(1.0, 2.0, 3.0, 4.0));
        let c = FaultRegion::Circle {
            center: Point::new(10.0, 10.0),
            radius: 3.0,
        };
        assert_eq!(c.bounding_rect(), Rect::new(7.0, 7.0, 13.0, 13.0));
    }
}
