//! Per-node energy accounting.
//!
//! The paper reports "amount of energy (in Joule) consumed in a simulation
//! run". Energy here is power × airtime, accumulated separately for
//! transmission and reception and separately for beacon traffic versus
//! protocol traffic, so experiments can report query-processing energy
//! (what the protocols differ in) without the constant beacon floor that all
//! protocols share.

use crate::time::SimDuration;

/// Traffic category for energy attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Periodic neighbourhood beacons (identical across protocols).
    Beacon,
    /// Everything the protocol under test sends.
    Protocol,
}

/// Energy meter of one node, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyMeter {
    pub tx_protocol_j: f64,
    pub rx_protocol_j: f64,
    pub tx_beacon_j: f64,
    pub rx_beacon_j: f64,
}

diknn_snap::snap_struct!(EnergyMeter {
    tx_protocol_j,
    rx_protocol_j,
    tx_beacon_j,
    rx_beacon_j
});

impl EnergyMeter {
    /// Charge transmit energy; returns the joules charged so callers can
    /// attribute the same amount elsewhere (per-query ledgers) without
    /// re-deriving the power × airtime formula.
    pub fn charge_tx(&mut self, power_w: f64, airtime: SimDuration, class: TrafficClass) -> f64 {
        let j = power_w * airtime.as_secs_f64();
        match class {
            TrafficClass::Beacon => self.tx_beacon_j += j,
            TrafficClass::Protocol => self.tx_protocol_j += j,
        }
        j
    }

    /// Charge receive energy; returns the joules charged (see `charge_tx`).
    pub fn charge_rx(&mut self, power_w: f64, airtime: SimDuration, class: TrafficClass) -> f64 {
        let j = power_w * airtime.as_secs_f64();
        match class {
            TrafficClass::Beacon => self.rx_beacon_j += j,
            TrafficClass::Protocol => self.rx_protocol_j += j,
        }
        j
    }

    /// Query-processing energy: what the evaluation compares.
    #[inline]
    pub fn protocol_j(&self) -> f64 {
        self.tx_protocol_j + self.rx_protocol_j
    }

    /// All radio energy including beacons.
    #[inline]
    pub fn total_j(&self) -> f64 {
        self.protocol_j() + self.tx_beacon_j + self.rx_beacon_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_class() {
        let mut m = EnergyMeter::default();
        m.charge_tx(0.05, SimDuration::from_millis(100), TrafficClass::Protocol);
        m.charge_rx(0.06, SimDuration::from_millis(100), TrafficClass::Protocol);
        m.charge_tx(0.05, SimDuration::from_millis(10), TrafficClass::Beacon);
        assert!((m.tx_protocol_j - 0.005).abs() < 1e-12);
        assert!((m.rx_protocol_j - 0.006).abs() < 1e-12);
        assert!((m.tx_beacon_j - 0.0005).abs() < 1e-12);
        assert!((m.protocol_j() - 0.011).abs() < 1e-12);
        assert!((m.total_j() - 0.0115).abs() < 1e-12);
    }
}
